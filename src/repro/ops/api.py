"""The operator HTTP API daemon (stdlib only, JSON in / JSON out).

:class:`OpsApiServer` wraps one :class:`~repro.ops.manager.ClusterOps`
in a :class:`http.server.ThreadingHTTPServer` and exposes the versioned
management surface::

    GET  /v1/cluster                   membership, epoch, liveness, ops
    GET  /v1/nodes                     every node's liveness summary
    GET  /v1/nodes/<id>                one node (liveness + daemon STATUS)
    GET  /v1/flows/<teid>              bearer lookup by tunnel id
    GET  /v1/metrics                   Prometheus text exposition
    GET  /v1/audit                     charging/CRC differential audit
    POST /v1/nodes/<id>/drain          graceful removal (make-before-break)
    POST /v1/nodes/<id>/join           grow onto a fresh daemon (id = next)
    POST /v1/nodes/<id>/kill           SIGKILL, detection left to heartbeats
    POST /v1/nodes/<id>/fence          force-kill a SUSPECT + immediate §7
    POST /v1/nodes/<id>/suspend        SIGSTOP (grey-failure maker)
    POST /v1/nodes/<id>/resume         SIGCONT
    POST /v1/nodes/<id>/repair         §7 repair for a DEAD node
    POST /v1/updates                   seeded §4.5 churn batch
    POST /v1/traffic                   seeded differential traffic batch
    POST /v1/poll                      heartbeat round(s) + auto-fence sweep
    GET  /v1/replication               replica group status + endpoints
    GET  /v1/replication/ops           this replica's committed op log
    POST /v1/replication/fail-leader   depose the leader (failover drill)
    POST /v1/shutdown                  stop the cluster, report leaks

When the cluster was launched with ``replicas`` > 0, each API server
binds to one replica id: mutating verbs on a follower's server answer
``307`` with a ``Location`` header naming the leader's endpoint, and
mutations on the leader replicate through the group's log before they
execute.

Errors come back as ``{"error": ...}`` with the status the typed
exception carries (404 unknown node/flow, 409 wrong state, 400 bad
request).  Bodies are JSON with sorted keys, so responses are
byte-stable for a given cluster state.  The server is threaded; the
manager's lock serialises the actual mutations.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.exposition import CONTENT_TYPE
from repro.ops.manager import (
    BadRequestError,
    ClusterOps,
    LeaderRedirectError,
    OpsError,
)

#: API version prefix every route lives under.
API_PREFIX = "/v1"

_NODE_VERBS = {
    "drain", "join", "kill", "fence", "suspend", "resume", "repair",
}

_GET_ROUTES: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"^/v1/cluster$"), "cluster"),
    (re.compile(r"^/v1/nodes$"), "nodes"),
    (re.compile(r"^/v1/nodes/(\d+)$"), "node"),
    (re.compile(r"^/v1/flows/(\d+)$"), "flow"),
    (re.compile(r"^/v1/metrics$"), "metrics"),
    (re.compile(r"^/v1/audit$"), "audit"),
    (re.compile(r"^/v1/replication$"), "replication"),
    (re.compile(r"^/v1/replication/ops$"), "replication_ops"),
]

_POST_ROUTES: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"^/v1/nodes/(\d+)/([a-z]+)$"), "verb"),
    (re.compile(r"^/v1/updates$"), "updates"),
    (re.compile(r"^/v1/traffic$"), "traffic"),
    (re.compile(r"^/v1/poll$"), "poll"),
    (re.compile(r"^/v1/replication/fail-leader$"), "fail_leader"),
    (re.compile(r"^/v1/shutdown$"), "shutdown"),
]


def _json_bytes(doc: object) -> bytes:
    return (json.dumps(doc, sort_keys=True, indent=1) + "\n").encode("utf-8")


class _OpsHandler(BaseHTTPRequestHandler):
    """One request; the bound ``ops`` attribute is set per-server."""

    server_version = "repro-ops/1"
    protocol_version = "HTTP/1.1"
    ops: ClusterOps  # injected by OpsApiServer
    replica: Optional[int] = None  # replica id this server speaks for
    on_shutdown: Optional[Callable[[], None]] = None

    # -- plumbing ------------------------------------------------------

    def log_message(self, *_args) -> None:  # tests want silence
        pass

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc: object) -> None:
        self._send(status, _json_bytes(doc))

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _send_redirect(self, exc: LeaderRedirectError) -> None:
        """307 with a ``Location`` pointing at the leader's endpoint."""
        location = None
        if exc.location is not None:
            host, port = exc.location
            location = f"http://{host}:{port}{self.path}"
        body = _json_bytes({
            "error": str(exc),
            "leader": exc.leader,
            "location": location,
        })
        self.send_response(exc.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if location is not None:
            self.send_header("Location", location)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not JSON: {exc}")
        if not isinstance(doc, dict):
            raise BadRequestError("request body must be a JSON object")
        return doc

    # -- dispatch ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._route_get()
        except LeaderRedirectError as exc:
            self._send_redirect(exc)
        except OpsError as exc:
            self._send_error(exc.status, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._route_post()
        except LeaderRedirectError as exc:
            self._send_redirect(exc)
        except OpsError as exc:
            self._send_error(exc.status, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(500, f"{type(exc).__name__}: {exc}")

    def _apply(self, verb: str, params: Dict[str, object]) -> object:
        """One mutating verb — through the replicated log when enabled."""
        if self.ops.replication is not None:
            return self.ops.submit_via(self.replica, verb, params)
        return self.ops.execute_verb(verb, params)

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0]
        for pattern, name in _GET_ROUTES:
            match = pattern.match(path)
            if not match:
                continue
            if name == "cluster":
                return self._send_json(200, self.ops.cluster())
            if name == "nodes":
                return self._send_json(200, self.ops.nodes())
            if name == "node":
                return self._send_json(
                    200, self.ops.node(int(match.group(1)))
                )
            if name == "flow":
                return self._send_json(
                    200, self.ops.flow(int(match.group(1)))
                )
            if name == "metrics":
                return self._send(
                    200, self.ops.metrics_text().encode("utf-8"),
                    content_type=CONTENT_TYPE,
                )
            if name == "audit":
                return self._send_json(200, self.ops.audit())
            if name == "replication":
                return self._send_json(
                    200, self.ops.replication_status(self.replica)
                )
            if name == "replication_ops":
                return self._send_json(
                    200, self.ops.committed_ops(self.replica)
                )
        self._send_error(404, f"no such endpoint: GET {path}")

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0]
        for pattern, name in _POST_ROUTES:
            match = pattern.match(path)
            if not match:
                continue
            if name == "verb":
                node_id = int(match.group(1))
                verb = match.group(2)
                if verb not in _NODE_VERBS:
                    return self._send_error(
                        404, f"no such node verb: {verb}"
                    )
                result = self._apply(verb, {"node": node_id})
                return self._send_json(200, result)
            body = self._read_body()
            if name == "updates":
                return self._send_json(200, self._apply("churn", {
                    "connects": int(body.get("connects", 0)),
                    "rehomes": int(body.get("rehomes", 0)),
                    "disconnects": int(body.get("disconnects", 0)),
                }))
            if name == "traffic":
                return self._send_json(200, self._apply("traffic", {
                    "packets": int(body.get("packets", 200)),
                }))
            if name == "poll":
                return self._send_json(200, self._apply("poll", {
                    "rounds": int(body.get("rounds", 1)),
                }))
            if name == "fail_leader":
                return self._send_json(200, self.ops.fail_leader())
            if name == "shutdown":
                result = self.ops.close()
                self._send_json(200, result)
                if self.on_shutdown is not None:
                    self.on_shutdown()
                return None
        self._send_error(404, f"no such endpoint: POST {path}")


class OpsApiServer:
    """The long-lived API daemon: one ClusterOps behind HTTP.

    Args:
        ops: the management facade to serve.
        host: bind address (loopback by default — this is an operator
            surface, not a public one).
        port: TCP port; ``0`` picks an ephemeral port, read it back
            from :attr:`port` after construction.
        stop_on_shutdown: when true, ``POST /v1/shutdown`` also stops
            the HTTP server itself after responding (the CLI daemon
            mode uses this so ``repro ctl shutdown`` terminates the
            whole process cleanly).
    """

    def __init__(
        self,
        ops: ClusterOps,
        host: str = "127.0.0.1",
        port: int = 0,
        stop_on_shutdown: bool = False,
        replica: Optional[int] = None,
    ) -> None:
        self.ops = ops
        self.replica = replica
        handler = type(
            "BoundOpsHandler", (_OpsHandler,),
            {"ops": ops, "replica": replica},
        )
        if stop_on_shutdown:
            # staticmethod: a bare function stored on the class would be
            # bound as a method and receive the handler as an argument.
            handler.on_shutdown = staticmethod(
                lambda: threading.Thread(
                    target=self.shutdown, daemon=True
                ).start()
            )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.host = self.httpd.server_address[0]
        self.port = int(self.httpd.server_address[1])
        self._thread: Optional[threading.Thread] = None
        if replica is not None and ops.replication is not None:
            ops.register_endpoint(replica, self.host, self.port)

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking)."""
        self.httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> "OpsApiServer":
        """Serve from a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving (idempotent); joins the background thread."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "OpsApiServer":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.shutdown()
