"""The operator control plane: REST API daemon, client and fencing.

Three layers, each usable on its own:

* :class:`ClusterOps` (:mod:`repro.ops.manager`) — the management
  facade owning one live deployment (daemon processes, socket
  controller, shadow gateway) with typed errors and a lock that
  serialises concurrent mutation;
* :class:`OpsApiServer` (:mod:`repro.ops.api`) — the stdlib HTTP
  daemon exposing it as a versioned JSON API (``/v1/...``) plus a
  Prometheus ``/v1/metrics`` page;
* :class:`OpsClient` (:mod:`repro.ops.client`) — the HTTP client the
  ``repro ctl`` CLI, the fence drill and the CI smoke job speak.

Start one from the command line with ``repro serve-api`` and drive it
with ``repro ctl`` — see ``docs/operator.md`` for the walkthrough.
"""

from repro.ops.api import API_PREFIX, OpsApiServer
from repro.ops.client import OpsApiError, OpsClient
from repro.ops.manager import (
    BadRequestError,
    ClusterOps,
    ConflictError,
    LeaderRedirectError,
    NotFoundError,
    OpsError,
    OpsReplication,
)

__all__ = [
    "API_PREFIX",
    "OpsApiServer",
    "OpsApiError",
    "OpsClient",
    "BadRequestError",
    "ClusterOps",
    "ConflictError",
    "LeaderRedirectError",
    "NotFoundError",
    "OpsError",
    "OpsReplication",
]
