"""ClusterOps: the management facade the operator API serves.

One :class:`ClusterOps` owns a full live deployment — the daemon child
processes (:class:`~repro.runtime.launcher.LocalRuntime`), the
controller driving them over sockets
(:class:`~repro.runtime.controller.RuntimeController`) and the
in-process shadow :class:`~repro.epc.gateway.EpcGateway` the
differential audit compares against.  Every public method is one
management operation with a JSON-ready return, and every error is typed
so the HTTP layer can map it to a status code without string matching:

* :class:`NotFoundError` (→ 404) — the named node/flow does not exist;
* :class:`ConflictError` (→ 409) — the operation is valid but refused
  in the cluster's current state (fencing an ALIVE node, draining a
  dead one, re-killing a corpse);
* :class:`BadRequestError` (→ 400) — the request itself is malformed.

All methods serialise through one re-entrant lock: the HTTP server is
threaded, and both the socket protocol (strict request/response per
connection) and the shadow gateway (plain Python objects) would corrupt
under interleaved mutation.  Concurrent API calls therefore execute in
*some* sequential order — the test suite asserts exactly that.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.architectures import Architecture
from repro.core import serialize
from repro.epc.fastpath import OUTER_SIZE
from repro.epc.gateway import EpcGateway
from repro.epc.packets import parse_ip
from repro.epc.traffic import FlowGenerator
from repro.obs.exposition import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.runtime.controller import OpResult, RuntimeController
from repro.runtime.launcher import (
    DEMO_GATEWAY_IP,
    LocalRuntime,
    _compare_frames,
    _shadow_route,
)
from repro.runtime.liveness import NodeState
from repro.runtime.protocol import OP_INSERT, OP_REMOVE, UpdateOp
from repro.runtime.replication import ReplicaGroup, ReplicaGuard


class OpsError(Exception):
    """Base of the management errors; carries an HTTP status."""

    status = 500


class BadRequestError(OpsError):
    """The request is malformed (→ 400)."""

    status = 400


class NotFoundError(OpsError):
    """The named node or flow does not exist (→ 404)."""

    status = 404


class ConflictError(OpsError):
    """Valid operation, wrong cluster state (→ 409)."""

    status = 409


class LeaderRedirectError(OpsError):
    """The addressed replica is not the leader (→ 307 + Location).

    Mutating verbs on a replicated control plane must go through the
    current leaseholder; a follower answers with the leader's identity
    and — when that replica has registered an API endpoint — a URL the
    client can retry against, HTTP-redirect style.
    """

    status = 307

    def __init__(self, leader: int, location: Optional[tuple]) -> None:
        where = (
            f"http://{location[0]}:{location[1]}" if location
            else "an unregistered endpoint"
        )
        super().__init__(f"not the leader; replica {leader} leads at {where}")
        self.leader = leader
        self.location = location


class OpsReplication:
    """Replication state for a :class:`ClusterOps`: group + op log.

    ``group`` is the in-process, manual-clock replica group the ops
    facade replicates mutating verbs through (deterministic — no
    wall-clock elections); ``endpoints`` maps replica id to the HTTP
    ``(host, port)`` an :class:`~repro.ops.api.OpsApiServer` bound for
    it; ``oplog`` records each committed verb's outcome by log index,
    and each replica's read view is truncated at *that replica's*
    commit index — a follower never shows an op it has not committed.
    """

    def __init__(self, group: ReplicaGroup) -> None:
        self.group = group
        self.endpoints: Dict[int, tuple] = {}
        self.oplog: Dict[int, Dict[str, object]] = {}


class ClusterOps:
    """Lock-serialised management wrapper around one live cluster.

    Build one with :meth:`launch` (spawns everything) or construct
    directly from pre-built pieces (the tests do, to reach into the
    internals).  ``close()`` — or use as a context manager — shuts the
    cluster down and accounts for every child process.
    """

    def __init__(
        self,
        runtime: LocalRuntime,
        controller: RuntimeController,
        gateway: EpcGateway,
        generator: FlowGenerator,
        live_flows: List,
        seed: int = 7,
        replication: Optional[OpsReplication] = None,
    ) -> None:
        self.runtime = runtime
        self.controller = controller
        self.gateway = gateway
        self.generator = generator
        self.live_flows = live_flows
        self.seed = seed
        self.replication = replication
        self._lock = threading.RLock()
        self._traffic_round = 0
        self._churn_round = 0
        # Per-node, per-TEID bytes charged so far (from shadow routing):
        # a killed/fenced node's slice dies with it, and the audit must
        # subtract it from the shadow's global ledger (§7 fate sharing).
        self._charges_by_node: Dict[int, Dict[int, int]] = {}
        # Charges gone for good: a drained daemon shuts down with its
        # counters (its node id may be reused by a later join, so the
        # slice is folded in here at drain time, not derived from ids).
        self._lost_charges: Dict[int, int] = {}
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def launch(
        cls,
        num_nodes: int = 4,
        seed: int = 7,
        flows: int = 2000,
        miss_threshold: int = 3,
        fence_after: Optional[int] = None,
        ping_timeout: float = 0.5,
        replicas: int = 0,
    ) -> "ClusterOps":
        """Spawn daemons, build and bootstrap the shadow, wire it all up.

        With ``replicas`` > 0, the facade also runs an in-process
        replica group (manual clock — elections are deterministic):
        mutating verbs replicate through its log before executing, and
        the controller's liveness/fencing verbs are guarded by the
        group's lease so only the current leader may fence.
        """
        replication: Optional[OpsReplication] = None
        guard = None
        if replicas:
            group = ReplicaGroup(num=replicas, seed=seed)
            group.elect()
            replication = OpsReplication(group)
            guard = ReplicaGuard(group)
        runtime = LocalRuntime(num_nodes).start()
        try:
            gateway = EpcGateway(
                Architecture.SCALEBRICKS,
                num_nodes,
                parse_ip(DEMO_GATEWAY_IP),
                registry=MetricsRegistry(),
            )
            generator = FlowGenerator(seed)
            live_flows = generator.populate(gateway, flows)
            gateway.start()
            controller = RuntimeController(
                runtime.addresses,
                miss_threshold=miss_threshold,
                ping_timeout=ping_timeout,
                fence_after=fence_after,
                guard=guard,
            )
            controller.killer = runtime.kill
            controller.connect()
            controller.bootstrap_from_gateway(gateway)
        except BaseException:
            runtime.stop()
            raise
        return cls(runtime, controller, gateway, generator, live_flows,
                   seed=seed, replication=replication)

    def close(self) -> Dict[str, object]:
        """Shut every daemon down; returns the leak accounting."""
        with self._lock:
            if self._closed:
                return {"acked": [], "leaked_processes": 0, "closed": True}
            self._closed = True
            acked = self.controller.shutdown_all()
            self.runtime.stop()
            leaked = self.runtime.leaked()
            return {
                "acked": acked,
                "leaked_processes": len(leaked),
                "leaked_nodes": leaked,
                "closed": True,
            }

    def __enter__(self) -> "ClusterOps":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- error translation ---------------------------------------------

    def _node_or_404(self, node_id: int) -> int:
        if node_id not in self.controller.monitor.tracked() and not (
            0 <= node_id < self.controller.num_nodes
        ):
            raise NotFoundError(f"node {node_id} does not exist")
        return node_id

    def _run(self, fn) -> OpResult:
        """Run a controller verb, translating ValueError to 409."""
        try:
            return fn()
        except ValueError as exc:
            raise ConflictError(str(exc)) from exc

    # -- read side -----------------------------------------------------

    def cluster(self) -> Dict[str, object]:
        """The ``GET /v1/cluster`` document."""
        with self._lock:
            snapshot = self.controller.snapshot()
            snapshot["seed"] = self.seed
            snapshot["live_flows"] = len(self.live_flows)
            snapshot["architecture"] = "scalebricks"
            if self.replication is not None:
                group = self.replication.group
                snapshot["replication"] = {
                    "leader": group.leader(),
                    "term": max(
                        r.term for r in group.replicas.values()
                    ),
                    "replicas": group.num,
                }
            return snapshot

    def nodes(self) -> List[Dict[str, object]]:
        """The ``GET /v1/nodes`` listing (every node, even dead ones)."""
        with self._lock:
            monitor = self.controller.monitor
            down = self.controller.down
            out = []
            for node_id in range(self.controller.num_nodes):
                tracked = node_id in monitor.tracked()
                entry: Dict[str, object] = {
                    "node": node_id,
                    "address": list(self.controller.addresses[node_id]),
                    "state": (
                        monitor.state(node_id).value if tracked else "dead"
                    ),
                    "misses": monitor.misses(node_id) if tracked else 0,
                    "repaired": node_id in down,
                }
                out.append(entry)
            return out

    def node(self, node_id: int) -> Dict[str, object]:
        """The ``GET /v1/nodes/<id>`` document (liveness + daemon STATUS)."""
        with self._lock:
            self._node_or_404(node_id)
            monitor = self.controller.monitor
            tracked = node_id in monitor.tracked()
            doc: Dict[str, object] = {
                "node": node_id,
                "address": list(self.controller.addresses[node_id]),
                "state": monitor.state(node_id).value if tracked else "dead",
                "misses": monitor.misses(node_id) if tracked else 0,
                "repaired": node_id in self.controller.down,
            }
            if node_id not in self.controller.down and (
                not tracked or monitor.state(node_id) is not NodeState.DEAD
            ):
                try:
                    doc["status"] = self.controller.status_node(node_id)
                except (OSError, ValueError):
                    doc["status"] = None
            else:
                doc["status"] = None
            return doc

    def flow(self, teid: int) -> Dict[str, object]:
        """The ``GET /v1/flows/<teid>`` document."""
        with self._lock:
            record = self.gateway.controller.record_for_teid(teid)
            if record is None:
                raise NotFoundError(f"no flow with teid {teid}")
            doc: Dict[str, object] = {
                "teid": record.teid,
                "key": record.key,
                "handling_node": record.handling_node,
                "base_station_ip": record.base_station_ip,
            }
            shadow_bytes = int(
                self.gateway.stats.bytes_charged.get(record.teid, 0)
            )
            doc["shadow_bytes_charged"] = shadow_bytes
            return doc

    def metrics_text(self) -> str:
        """Prometheus exposition of controller + shadow registries."""
        with self._lock:
            return prometheus_text(
                [self.controller.registry, self.gateway.registry]
            )

    def recent_ops(self) -> List[Dict[str, object]]:
        """Completed management commands, oldest first."""
        return self.controller.commands.recent()

    # -- replicated control plane --------------------------------------

    def register_endpoint(self, replica: int, host: str, port: int) -> None:
        """Record the HTTP endpoint an API server bound for a replica."""
        rep = self.replication
        if rep is None:
            raise ConflictError("replication is not enabled")
        if not 0 <= replica < rep.group.num:
            raise NotFoundError(f"no replica {replica}")
        with self._lock:
            rep.endpoints[replica] = (str(host), int(port))

    def replication_status(
        self, replica: Optional[int] = None
    ) -> Dict[str, object]:
        """The ``GET /v1/replication`` document (group + endpoints)."""
        rep = self.replication
        if rep is None:
            return {"enabled": False}
        with self._lock:
            doc = rep.group.status()
            doc["enabled"] = True
            doc["endpoints"] = {
                str(rid): list(addr) for rid, addr in rep.endpoints.items()
            }
            doc["bound_replica"] = replica
            if replica is not None:
                doc["commit_index_here"] = (
                    rep.group.replicas[replica].commit_index
                )
            return doc

    def committed_ops(
        self, replica: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Replicated verbs visible from one replica's commit index.

        A follower only reports ops it has itself committed — the
        read-your-committed-writes guarantee the failover tests lean
        on: once a mutation is acked, *every* replica eventually shows
        it, and no replica ever shows an uncommitted one.
        """
        rep = self.replication
        if rep is None:
            return []
        with self._lock:
            group = rep.group
            if replica is None:
                replica = group.leader()
                if replica is None:
                    return []
            commit = group.replicas[replica].commit_index
            return [
                rep.oplog[index]
                for index in sorted(rep.oplog)
                if index <= commit
            ]

    def fail_leader(self) -> Dict[str, object]:
        """Depose the current leader (crash → re-elect → restart).

        The deterministic failover verb: the old leader loses its
        lease, a follower wins the next term, and the old process
        rejoins as a follower and catches up.
        """
        rep = self.replication
        if rep is None:
            raise ConflictError("replication is not enabled")
        with self._lock:
            info = rep.group.depose()
            return {"verb": "fail_leader", **info}

    def execute_verb(self, verb: str, params: Dict) -> Dict[str, object]:
        """Dispatch one named mutating verb (the replicated log's body)."""
        if verb == "drain":
            return self.drain(int(params["node"]))
        if verb == "join":
            node = params.get("node")
            return self.join(None if node is None else int(node))
        if verb == "kill":
            return self.kill(int(params["node"]))
        if verb == "fence":
            return self.fence(int(params["node"]))
        if verb == "repair":
            return self.repair(int(params["node"]))
        if verb == "suspend":
            return self.suspend(int(params["node"]))
        if verb == "resume":
            return self.resume(int(params["node"]))
        if verb == "churn":
            return self.churn(
                connects=int(params.get("connects", 0)),
                rehomes=int(params.get("rehomes", 0)),
                disconnects=int(params.get("disconnects", 0)),
            )
        if verb == "traffic":
            return self.traffic(packets=int(params.get("packets", 200)))
        if verb == "poll":
            return self.poll(rounds=int(params.get("rounds", 1)))
        raise BadRequestError(f"unknown verb {verb!r}")

    def submit_via(
        self, replica: Optional[int], verb: str, params: Dict
    ) -> Dict[str, object]:
        """Run a mutating verb through the replicated log.

        The addressed ``replica`` must hold the lease — a follower
        raises :class:`LeaderRedirectError` (→ 307 + the leader's
        endpoint) without touching the cluster.  On the leader the
        verb is committed to the log first, then executed; the outcome
        (success or typed failure) is recorded in the op log under its
        log index so every replica's committed view converges on it.
        """
        rep = self.replication
        if rep is None:
            return self.execute_verb(verb, params)
        with self._lock:
            group = rep.group
            leader = group.leader()
            if leader is None:
                leader = group.elect()
            if replica is not None and leader != replica:
                raise LeaderRedirectError(
                    leader, rep.endpoints.get(leader)
                )
            payload = {k: v for k, v in params.items() if v is not None}
            meta = group.submit(verb, payload)
            # Majority commit acked the entry; push the commit index to
            # every live follower too, so a committed op is immediately
            # readable from any replica's API endpoint.
            group.run_until(lambda: all(
                group.replicas[i].commit_index >= meta["index"]
                for i in group.live()
            ))
            record: Dict[str, object] = {
                "index": meta["index"],
                "term": meta["term"],
                "cid": meta["cid"],
                "verb": verb,
                "params": payload,
            }
            try:
                result = self.execute_verb(verb, params)
            except OpsError as exc:
                record["error"] = str(exc)
                record["status"] = exc.status
                rep.oplog[meta["index"]] = record
                raise
            record["result"] = result
            rep.oplog[meta["index"]] = record
            out = dict(result)
            out["replication"] = {
                "index": meta["index"], "term": meta["term"],
            }
            return out

    # -- mutating verbs ------------------------------------------------

    def drain(self, node_id: int) -> Dict[str, object]:
        """Gracefully remove a node (highest-numbered only)."""
        with self._lock:
            self._node_or_404(node_id)
            result = self._run(
                lambda: self.controller.drain_node(self.gateway, node_id)
            )
            # The leaver's charging counters shut down with it; fold its
            # slice into the lost ledger before a join reuses the id.
            for teid, total in self._charges_by_node.pop(
                result.node, {}
            ).items():
                self._lost_charges[teid] = (
                    self._lost_charges.get(teid, 0) + total
                )
            return result.to_dict()

    def join(self, node_id: Optional[int] = None) -> Dict[str, object]:
        """Spawn one more daemon and grow the cluster onto it.

        ``node_id``, when given, must equal the id the newcomer will
        receive (the current node count) — anything else is a 409, so
        ``POST /v1/nodes/<id>/join`` can never grow the wrong cluster.
        """
        with self._lock:
            expected = self.controller.num_nodes
            if node_id is not None and node_id != expected:
                raise ConflictError(
                    f"next join creates node {expected}, not {node_id}"
                )
            address = self.runtime.add_node()
            result = self._run(
                lambda: self.controller.join_node(self.gateway, address)
            )
            return result.to_dict()

    def kill(self, node_id: int) -> Dict[str, object]:
        """SIGKILL a daemon (no repair — detection is the point)."""
        with self._lock:
            self._node_or_404(node_id)
            result = self._run(lambda: self.controller.kill_node(node_id))
            return result.to_dict()

    def fence(self, node_id: int) -> Dict[str, object]:
        """Force-kill a SUSPECT daemon and repair immediately."""
        with self._lock:
            self._node_or_404(node_id)
            result = self._run(
                lambda: self.controller.fence_node(node_id, self.gateway)
            )
            return result.to_dict()

    def repair(self, node_id: int) -> Dict[str, object]:
        """Run §7 failure repair for a node already declared DEAD."""
        with self._lock:
            self._node_or_404(node_id)
            if self.controller.monitor.state(node_id) is not NodeState.DEAD:
                raise ConflictError(
                    f"node {node_id} is not DEAD; repair follows detection"
                )
            result = self._run(
                lambda: self.controller.handle_node_failure(
                    node_id, self.gateway
                )
            )
            return result.to_dict()

    def suspend(self, node_id: int) -> Dict[str, object]:
        """SIGSTOP a daemon — the grey-failure (SUSPECT) maker."""
        with self._lock:
            self._node_or_404(node_id)
            if node_id in self.controller.down:
                raise ConflictError(f"node {node_id} is already down")
            self.runtime.suspend(node_id)
            return {
                "verb": "suspend", "node": node_id, "accepted": True,
                "epoch": self.controller.epoch, "affected_flows": 0,
                "detail": {},
            }

    def resume(self, node_id: int) -> Dict[str, object]:
        """SIGCONT a suspended daemon (the grey failure clears)."""
        with self._lock:
            self._node_or_404(node_id)
            if node_id in self.controller.down:
                raise ConflictError(f"node {node_id} is already down")
            self.runtime.resume(node_id)
            return {
                "verb": "resume", "node": node_id, "accepted": True,
                "epoch": self.controller.epoch, "affected_flows": 0,
                "detail": {},
            }

    # -- liveness / policy ---------------------------------------------

    def poll(self, rounds: int = 1) -> Dict[str, object]:
        """Heartbeat rounds plus the auto-fence policy sweep.

        After each round, any node past the monitor's ``fence_after``
        threshold is fenced (force-kill + §7 repair) — the policy knob
        the operator API exposes at launch.
        """
        if rounds < 1:
            raise BadRequestError("rounds must be positive")
        with self._lock:
            newly_dead: List[int] = []
            fenced: List[int] = []
            for _ in range(rounds):
                newly_dead.extend(self.controller.poll_liveness())
                for candidate in self.controller.monitor.fence_candidates():
                    self.controller.fence_node(candidate, self.gateway)
                    fenced.append(candidate)
            return {
                "rounds": rounds,
                "newly_dead": newly_dead,
                "fenced": fenced,
                "states": {
                    str(n): self.controller.monitor.state(n).value
                    for n in self.controller.monitor.tracked()
                },
            }

    # -- differential traffic / churn / audit --------------------------

    def traffic(self, packets: int = 200) -> Dict[str, object]:
        """One seeded differential traffic batch through both worlds.

        Frames are generated from the live flow population, routed
        through the socket cluster and the shadow gateway with pinned
        per-frame ingress, and compared frame by frame.  The per-node
        charge ledger feeds the §7 audit later.
        """
        if packets < 1:
            raise BadRequestError("packets must be positive")
        with self._lock:
            if not self.live_flows:
                raise ConflictError("no live flows to generate traffic from")
            self._traffic_round += 1
            rng = np.random.default_rng(
                self.seed * 65537 + 1000 + self._traffic_round
            )
            frames = self.generator.packet_stream(self.live_flows, packets)
            live = [
                n for n in range(self.controller.num_nodes)
                if n not in self.controller.down
            ]
            ingress = [int(live[i]) for i in rng.integers(
                len(live), size=len(frames)
            )]
            shadow = _shadow_route(self.gateway, frames, ingress)
            wire = self.controller.route_frames(frames, ingress)
            for result, out in shadow:
                if out is None:
                    continue
                node = result.handled_by
                teid = int(result.value)
                ledger = self._charges_by_node.setdefault(node, {})
                ledger[teid] = ledger.get(teid, 0) + len(out) - OUTER_SIZE
            summary = _compare_frames(shadow, wire)
            summary["round"] = self._traffic_round
            return summary

    def churn(
        self, connects: int = 0, rehomes: int = 0, disconnects: int = 0
    ) -> Dict[str, object]:
        """A seeded §4.5 update batch (``POST /v1/updates``).

        Connects admit fresh bearers, rehomes move existing ones to a
        random live node, disconnects tear bearers down — mirrored into
        the shadow first, then pushed over the wire through the owner
        protocol, exactly like the harness's update storm.
        """
        total = connects + rehomes + disconnects
        if total < 1:
            raise BadRequestError(
                "need at least one connect/rehome/disconnect"
            )
        with self._lock:
            self._churn_round += 1
            rng = np.random.default_rng(
                self.seed * 65537 + 2000 + self._churn_round
            )
            live = [
                n for n in range(self.controller.num_nodes)
                if n not in self.controller.down
            ]
            ops: List[UpdateOp] = []
            for _ in range(connects):
                flow = self.generator.flows(1)[0]
                record = self.gateway.connect(
                    flow,
                    self.generator.base_station_for(flow),
                    self.generator.region_for(flow),
                )
                ops.append(UpdateOp(
                    OP_INSERT, record.key, record.handling_node,
                    record.teid, record.base_station_ip,
                ))
                self.live_flows.append(flow)
            done_rehomes = 0
            for _ in range(rehomes):
                if not self.live_flows:
                    break
                flow = self.live_flows[
                    int(rng.integers(len(self.live_flows)))
                ]
                target = int(live[int(rng.integers(len(live)))])
                record = self.gateway.controller.record_for_key(flow.key())
                assert record is not None
                if record.handling_node == target:
                    continue
                moved = self.gateway.rehome_flow(flow, target)
                ops.append(UpdateOp(
                    OP_INSERT, moved.key, target, moved.teid,
                    moved.base_station_ip,
                ))
                done_rehomes += 1
            done_disconnects = 0
            for _ in range(disconnects):
                if len(self.live_flows) <= 1:
                    break
                index = int(rng.integers(len(self.live_flows)))
                flow = self.live_flows.pop(index)
                assert self.gateway.disconnect(flow)
                ops.append(UpdateOp(OP_REMOVE, flow.key()))
                done_disconnects += 1
            totals = self.controller.push_updates(ops)
            totals["connects"] = connects
            totals["rehomes"] = done_rehomes
            totals["disconnects"] = done_disconnects
            totals["live_flows"] = len(self.live_flows)
            return totals

    def audit(self) -> Dict[str, object]:
        """The global differential: charging dicts and GPT replica CRCs.

        Charges a dead node took to its grave are subtracted from the
        shadow's ledger (fate sharing, §7) before comparing against the
        wire's per-daemon totals.
        """
        with self._lock:
            lost: Dict[int, int] = dict(self._lost_charges)
            for node_id in self.controller.down:
                for teid, total in self._charges_by_node.get(
                    node_id, {}
                ).items():
                    lost[teid] = lost.get(teid, 0) + total
            statuses = self.controller.status_all()
            wire_charges: Dict[int, int] = {}
            for status in statuses.values():
                for teid, total in status["charges"].items():
                    teid = int(teid)
                    wire_charges[teid] = (
                        wire_charges.get(teid, 0) + int(total)
                    )
            shadow_charges = {
                int(teid): int(total)
                for teid, total in self.gateway.stats.bytes_charged.items()
                if int(total)
            }
            for teid, total in lost.items():
                remaining = shadow_charges.get(teid, 0) - total
                if remaining:
                    shadow_charges[teid] = remaining
                else:
                    shadow_charges.pop(teid, None)
            wire_charges = {t: v for t, v in wire_charges.items() if v}
            cluster = self.gateway.cluster
            assert cluster is not None
            replicas_equal = True
            for node_id, status in statuses.items():
                shadow_crc = serialize.fingerprint(
                    cluster.nodes[node_id].gpt.setsep
                )
                if int(status["gpt_crc"]) != shadow_crc:
                    replicas_equal = False
            return {
                "charging_identical": wire_charges == shadow_charges,
                "charged_teids": len(wire_charges),
                "gpt_replicas_identical": replicas_equal,
                "epoch": self.controller.epoch,
                "live_nodes": sorted(statuses),
            }
