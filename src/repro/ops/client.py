"""HTTP client for the operator API (what ``repro ctl`` speaks).

:class:`OpsClient` is a thin, dependency-free wrapper over
:class:`http.client.HTTPConnection` — one method per endpoint, JSON in,
decoded JSON out.  Error responses raise :class:`OpsApiError` carrying
the HTTP status and the server's ``error`` message, so callers branch
on ``exc.status`` (404 vs 409) instead of parsing strings.

The client deliberately knows nothing about the cluster beyond the
URL scheme: it is the proof that the API surface is sufficient to
operate a deployment — the CLI, the chaos fence drill and the CI
smoke job all drive the cluster exclusively through it.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Dict, List, Optional


class OpsApiError(Exception):
    """An error response from the operator API."""

    def __init__(self, status: int, message: str,
                 location: Optional[str] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: the ``Location`` header of a 307, when the server sent one.
        self.location = location


class OpsClient:
    """Talks to one :class:`~repro.ops.api.OpsApiServer`.

    Against a replicated control plane the client follows leader
    redirects: a follower answering ``307`` with a ``Location`` header
    gets the request re-issued against the leader's endpoint (up to
    ``max_redirects`` hops).  Set ``follow_redirects=False`` to see the
    raw 307 as an :class:`OpsApiError` instead — the failover tests do,
    to assert the redirect semantics themselves.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787,
        timeout: float = 60.0,
        follow_redirects: bool = True,
        max_redirects: int = 4,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.follow_redirects = follow_redirects
        self.max_redirects = max_redirects
        #: redirect hops the most recent request took (test telemetry).
        self.last_redirects = 0

    # -- plumbing ------------------------------------------------------

    def _one_request(
        self, host: str, port: int, method: str, path: str,
        body: Optional[dict],
    ):
        conn = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if "application/json" in content_type:
                doc = json.loads(raw.decode("utf-8"))
            else:
                doc = raw.decode("utf-8")
            return response.status, response.getheader("Location"), doc, raw
        finally:
            conn.close()

    def _request(
        self, method: str, path: str, body: Optional[dict] = None,
    ):
        host, port = self.host, self.port
        self.last_redirects = 0
        for _hop in range(self.max_redirects + 1):
            status, location, doc, raw = self._one_request(
                host, port, method, path, body
            )
            if status in (307, 308):
                message = (
                    doc.get("error", "redirected")
                    if isinstance(doc, dict) else str(doc)
                )
                if not self.follow_redirects or not location:
                    raise OpsApiError(status, message, location=location)
                parsed = urllib.parse.urlsplit(location)
                host = parsed.hostname or host
                port = parsed.port or port
                path = parsed.path or path
                self.last_redirects += 1
                continue
            if status >= 400:
                message = (
                    doc.get("error", raw.decode("utf-8"))
                    if isinstance(doc, dict) else str(doc)
                )
                raise OpsApiError(status, message)
            return doc
        raise OpsApiError(
            508, f"gave up after {self.max_redirects} leader redirects"
        )

    def _get(self, path: str):
        return self._request("GET", path)

    def _post(self, path: str, body: Optional[dict] = None):
        return self._request("POST", path, body=body)

    # -- read side -----------------------------------------------------

    def cluster(self) -> Dict[str, object]:
        """``GET /v1/cluster``."""
        return self._get("/v1/cluster")

    def nodes(self) -> List[Dict[str, object]]:
        """``GET /v1/nodes``."""
        return self._get("/v1/nodes")

    def node(self, node_id: int) -> Dict[str, object]:
        """``GET /v1/nodes/<id>``."""
        return self._get(f"/v1/nodes/{node_id}")

    def flow(self, teid: int) -> Dict[str, object]:
        """``GET /v1/flows/<teid>``."""
        return self._get(f"/v1/flows/{teid}")

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the raw Prometheus text page."""
        return self._get("/v1/metrics")

    def audit(self) -> Dict[str, object]:
        """``GET /v1/audit``."""
        return self._get("/v1/audit")

    # -- node verbs ----------------------------------------------------

    def drain(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/drain``."""
        return self._post(f"/v1/nodes/{node_id}/drain")

    def join(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/join`` (id must be the next node id)."""
        return self._post(f"/v1/nodes/{node_id}/join")

    def kill(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/kill``."""
        return self._post(f"/v1/nodes/{node_id}/kill")

    def fence(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/fence``."""
        return self._post(f"/v1/nodes/{node_id}/fence")

    def suspend(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/suspend``."""
        return self._post(f"/v1/nodes/{node_id}/suspend")

    def resume(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/resume``."""
        return self._post(f"/v1/nodes/{node_id}/resume")

    def repair(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/repair``."""
        return self._post(f"/v1/nodes/{node_id}/repair")

    # -- cluster verbs -------------------------------------------------

    def updates(
        self, connects: int = 0, rehomes: int = 0, disconnects: int = 0,
    ) -> Dict[str, object]:
        """``POST /v1/updates`` — a seeded §4.5 churn batch."""
        return self._post("/v1/updates", {
            "connects": connects, "rehomes": rehomes,
            "disconnects": disconnects,
        })

    def traffic(self, packets: int = 200) -> Dict[str, object]:
        """``POST /v1/traffic`` — a differential traffic batch."""
        return self._post("/v1/traffic", {"packets": packets})

    def poll(self, rounds: int = 1) -> Dict[str, object]:
        """``POST /v1/poll`` — heartbeat round(s) + auto-fence sweep."""
        return self._post("/v1/poll", {"rounds": rounds})

    # -- replication ---------------------------------------------------

    def replication(self) -> Dict[str, object]:
        """``GET /v1/replication`` — group status, leader, endpoints."""
        return self._get("/v1/replication")

    def committed_ops(self) -> List[Dict[str, object]]:
        """``GET /v1/replication/ops`` — this replica's committed ops."""
        return self._get("/v1/replication/ops")

    def fail_leader(self) -> Dict[str, object]:
        """``POST /v1/replication/fail-leader`` — deterministic failover."""
        return self._post("/v1/replication/fail-leader")

    def shutdown(self) -> Dict[str, object]:
        """``POST /v1/shutdown`` — stop the cluster, report leaks."""
        return self._post("/v1/shutdown")
