"""HTTP client for the operator API (what ``repro ctl`` speaks).

:class:`OpsClient` is a thin, dependency-free wrapper over
:class:`http.client.HTTPConnection` — one method per endpoint, JSON in,
decoded JSON out.  Error responses raise :class:`OpsApiError` carrying
the HTTP status and the server's ``error`` message, so callers branch
on ``exc.status`` (404 vs 409) instead of parsing strings.

The client deliberately knows nothing about the cluster beyond the
URL scheme: it is the proof that the API surface is sufficient to
operate a deployment — the CLI, the chaos fence drill and the CI
smoke job all drive the cluster exclusively through it.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional


class OpsApiError(Exception):
    """An error response from the operator API."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class OpsClient:
    """Talks to one :class:`~repro.ops.api.OpsApiServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None,
    ):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if "application/json" in content_type:
                doc = json.loads(raw.decode("utf-8"))
            else:
                doc = raw.decode("utf-8")
            if response.status >= 400:
                message = (
                    doc.get("error", raw.decode("utf-8"))
                    if isinstance(doc, dict) else str(doc)
                )
                raise OpsApiError(response.status, message)
            return doc
        finally:
            conn.close()

    def _get(self, path: str):
        return self._request("GET", path)

    def _post(self, path: str, body: Optional[dict] = None):
        return self._request("POST", path, body=body)

    # -- read side -----------------------------------------------------

    def cluster(self) -> Dict[str, object]:
        """``GET /v1/cluster``."""
        return self._get("/v1/cluster")

    def nodes(self) -> List[Dict[str, object]]:
        """``GET /v1/nodes``."""
        return self._get("/v1/nodes")

    def node(self, node_id: int) -> Dict[str, object]:
        """``GET /v1/nodes/<id>``."""
        return self._get(f"/v1/nodes/{node_id}")

    def flow(self, teid: int) -> Dict[str, object]:
        """``GET /v1/flows/<teid>``."""
        return self._get(f"/v1/flows/{teid}")

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the raw Prometheus text page."""
        return self._get("/v1/metrics")

    def audit(self) -> Dict[str, object]:
        """``GET /v1/audit``."""
        return self._get("/v1/audit")

    # -- node verbs ----------------------------------------------------

    def drain(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/drain``."""
        return self._post(f"/v1/nodes/{node_id}/drain")

    def join(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/join`` (id must be the next node id)."""
        return self._post(f"/v1/nodes/{node_id}/join")

    def kill(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/kill``."""
        return self._post(f"/v1/nodes/{node_id}/kill")

    def fence(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/fence``."""
        return self._post(f"/v1/nodes/{node_id}/fence")

    def suspend(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/suspend``."""
        return self._post(f"/v1/nodes/{node_id}/suspend")

    def resume(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/resume``."""
        return self._post(f"/v1/nodes/{node_id}/resume")

    def repair(self, node_id: int) -> Dict[str, object]:
        """``POST /v1/nodes/<id>/repair``."""
        return self._post(f"/v1/nodes/{node_id}/repair")

    # -- cluster verbs -------------------------------------------------

    def updates(
        self, connects: int = 0, rehomes: int = 0, disconnects: int = 0,
    ) -> Dict[str, object]:
        """``POST /v1/updates`` — a seeded §4.5 churn batch."""
        return self._post("/v1/updates", {
            "connects": connects, "rehomes": rehomes,
            "disconnects": disconnects,
        })

    def traffic(self, packets: int = 200) -> Dict[str, object]:
        """``POST /v1/traffic`` — a differential traffic batch."""
        return self._post("/v1/traffic", {"packets": packets})

    def poll(self, rounds: int = 1) -> Dict[str, object]:
        """``POST /v1/poll`` — heartbeat round(s) + auto-fence sweep."""
        return self._post("/v1/poll", {"rounds": rounds})

    def shutdown(self) -> Dict[str, object]:
        """``POST /v1/shutdown`` — stop the cluster, report leaks."""
        return self._post("/v1/shutdown")
