"""Deterministic fault injection and differential oracle checking.

ScaleBricks' correctness claims live exactly where testing is hardest:
node failure (§7), FIB update churn (§4.5) and the one-sided-error
windows a stale SetSep replica produces (§3.4).  This package turns those
scenarios into a repeatable harness:

* :class:`FaultPlan` / :class:`FaultInjector` — a seeded schedule of
  discrete fault events (node crash & rejoin, fabric partition,
  transit drop/duplication/reorder, lost/duplicated/delayed GPT deltas,
  replayed FIB updates, malformed packets, bearer churn and re-homing)
  applied to a live :class:`~repro.epc.gateway.EpcGateway` through the
  hooks the production objects expose;
* :class:`DifferentialOracle` — shadows every mutation into a plain-dict
  reference FIB and a single-node reference gateway, and after each
  injected event asserts the cluster-visible invariants: known keys
  route to their owner (one-sided under declared staleness), unknown
  keys are never delivered, the per-packet handoff count stays within
  the architecture's bound, GTP-U re-encapsulation is byte-identical to
  the reference, and per-bearer charging never diverges.

Everything is deterministic in its seed — a failing episode reproduces
from ``(seed, episode)`` alone (see ``docs/chaos.md``).  The episode
driver lives in :mod:`repro.sim.soak`; the CLI front end is
``repro chaos``.
"""

from repro.chaos.drills import run_failover_drill, run_fence_drill
from repro.chaos.faults import (
    CONTROLLER_FAULT_KINDS,
    DEFAULT_FAULT_KINDS,
    LINK_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from repro.chaos.oracle import (
    DifferentialOracle,
    Expectation,
    OracleViolation,
    ReferenceGateway,
)
from repro.chaos.transport import (
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    TransportFaultBudgets,
)

__all__ = [
    "CONTROLLER_FAULT_KINDS",
    "DEFAULT_FAULT_KINDS",
    "LINK_FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "DifferentialOracle",
    "Expectation",
    "OracleViolation",
    "ReferenceGateway",
    "DELAY",
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "TransportFaultBudgets",
    "run_failover_drill",
    "run_fence_drill",
]
