"""Transport-layer fault injection for the multi-process runtime.

The in-process chaos harness intercepts delta ships through
``UpdateEngine.delta_interceptor``; the socket runtime needs the same
verdicts at its transport boundary.  :class:`TransportFaultBudgets` is a
deterministic, serialisable plan: per message kind, *budgets* of how many
of the next sends to drop, delay or duplicate.  The controller arms a
daemon's budgets over the wire (``MSG_FAULT``) and the daemon consults
them each time it is about to ship a delta, FIB batch or forwarded
frame — no randomness, no wall clock, so fault runs replay exactly.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Verdicts, shared vocabulary with :mod:`repro.cluster.update`.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"

_VERDICTS = (DROP, DELAY, DUPLICATE)


class TransportFaultBudgets:
    """Countdown budgets of transport faults, by message kind.

    A budget of ``{"delta": 3}`` under ``drop`` makes the next three
    delta ships vanish; once every budget hits zero the transport is
    transparent again.  Consultation order is drop, then delay, then
    duplicate — a send matching several budgets consumes only the first.
    """

    def __init__(self) -> None:
        self.drop: Dict[str, int] = {}
        self.delay: Dict[str, int] = {}
        self.duplicate: Dict[str, int] = {}
        #: Faults actually applied so far, ``{verdict: {kind: count}}``.
        self.applied: Dict[str, Dict[str, int]] = {
            DROP: {}, DELAY: {}, DUPLICATE: {},
        }

    def _table(self, verdict: str) -> Dict[str, int]:
        if verdict == DROP:
            return self.drop
        if verdict == DELAY:
            return self.delay
        if verdict == DUPLICATE:
            return self.duplicate
        raise ValueError(f"unknown verdict {verdict!r}")

    def arm(self, verdict: str, kind: str, count: int) -> None:
        """Add ``count`` pending faults of ``verdict`` for ``kind`` sends."""
        if count < 0:
            raise ValueError("fault budget must be non-negative")
        table = self._table(verdict)
        table[kind] = table.get(kind, 0) + count

    def verdict(self, kind: str) -> str:
        """Consume one budget for a ``kind`` send; default DELIVER."""
        for name in _VERDICTS:
            table = self._table(name)
            remaining = table.get(kind, 0)
            if remaining > 0:
                table[kind] = remaining - 1
                counts = self.applied[name]
                counts[kind] = counts.get(kind, 0) + 1
                return name
        return DELIVER

    def pending(self) -> int:
        """Faults still armed across every verdict and kind."""
        return sum(
            count
            for table in (self.drop, self.delay, self.duplicate)
            for count in table.values()
        )

    def to_dict(self) -> Dict[str, Dict[str, int]]:
        """JSON-ready form (the ``MSG_FAULT`` payload)."""
        return {
            "drop": dict(self.drop),
            "delay": dict(self.delay),
            "duplicate": dict(self.duplicate),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Mapping[str, int]]
    ) -> "TransportFaultBudgets":
        """Parse budgets shipped over the wire."""
        budgets = cls()
        for verdict in _VERDICTS:
            for kind, count in dict(data.get(verdict, {})).items():
                budgets.arm(verdict, str(kind), int(count))
        return budgets

    def __repr__(self) -> str:
        return (
            f"TransportFaultBudgets(drop={self.drop}, delay={self.delay}, "
            f"duplicate={self.duplicate})"
        )
