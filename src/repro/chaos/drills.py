"""Operator-driven chaos drills, exercised through the REST API only.

The harness drills (:func:`repro.runtime.launcher.run_demo`) reach
straight into the controller.  The drills here are stricter: they drive
the cluster exclusively through :class:`~repro.ops.client.OpsClient`,
the same surface a human operator (or the CI smoke job) has — if a
drill passes, the API alone was sufficient to detect, fence and repair
a grey failure without breaking the differential.

:func:`run_fence_drill` is the §7 grey-failure scenario:

1. launch an API-managed cluster with the auto-fence policy armed
   (``fence_after=1``),
2. run differential traffic and §4.5 churn with everything healthy,
3. SIGSTOP one daemon — alive but unresponsive, the state fencing
   exists for,
4. one heartbeat poll marks it SUSPECT and the policy fences it
   (force-kill + §7 repair + membership broadcast),
5. more traffic over the survivors, then the global audit.

The report's ``ok`` is true only with zero divergences, byte-identical
frames, identical charging (minus the victim's fate-shared slice) and
CRC-identical GPT replicas — the exact gates the harness uses.
"""

from __future__ import annotations

from typing import Dict, Optional


def run_fence_drill(
    num_nodes: int = 4,
    seed: int = 7,
    flows: int = 800,
    packets: int = 800,
    churn: int = 120,
    victim: Optional[int] = None,
    fence_after: int = 1,
) -> Dict[str, object]:
    """The grey-failure fence drill, driven through the operator API.

    Args:
        num_nodes: daemons to spawn.
        seed: master seed (same seed ⇒ same drill).
        flows: initial bearer population.
        packets: differential frames, split across the two phases.
        churn: §4.5 update operations while everything is healthy.
        victim: daemon to freeze (default: ``num_nodes // 2``).
        fence_after: auto-fence threshold in consecutive misses.

    Returns:
        A JSON-ready report with the phase summaries, the fence
        outcome, the final audit and the overall ``ok`` verdict.
    """
    # Imported here, not at module top: repro.ops pulls in the runtime,
    # which pulls this package back in (daemon-side transport faults).
    from repro.ops.api import OpsApiServer
    from repro.ops.client import OpsClient
    from repro.ops.manager import ClusterOps

    if victim is None:
        victim = num_nodes // 2
    if not 0 <= victim < num_nodes:
        raise ValueError("victim out of range")
    ops = ClusterOps.launch(
        num_nodes=num_nodes, seed=seed, flows=flows,
        fence_after=fence_after, ping_timeout=0.5,
    )
    server = OpsApiServer(ops).start_background()
    client = OpsClient(server.host, server.port)
    report: Dict[str, object] = {
        "drill": "fence",
        "nodes": num_nodes,
        "seed": seed,
        "victim": victim,
        "fence_after": fence_after,
    }
    try:
        first = packets // 2
        report["phase1"] = client.traffic(first)
        report["churn"] = client.updates(
            connects=churn // 4, rehomes=churn // 2,
            disconnects=churn // 4,
        )
        client.suspend(victim)
        poll = client.poll()
        report["poll"] = poll
        report["fenced"] = victim in poll["fenced"]
        report["phase2"] = client.traffic(packets - first)
        report["audit"] = client.audit()
        report["cluster"] = {
            key: client.cluster()[key]
            for key in ("nodes", "epoch", "down", "states")
        }
        metrics = client.metrics()
        report["metrics_nonempty"] = bool(metrics.strip())
        report["ok"] = bool(
            report["fenced"]
            and report["phase1"]["divergences"] == 0
            and report["phase2"]["divergences"] == 0
            and report["phase1"]["byte_identical"]
            and report["phase2"]["byte_identical"]
            and report["audit"]["charging_identical"]
            and report["audit"]["gpt_replicas_identical"]
            and report["metrics_nonempty"]
        )
    finally:
        shutdown = client.shutdown()
        report["leaked_processes"] = shutdown["leaked_processes"]
        server.shutdown()
    report["ok"] = bool(report.get("ok") and report["leaked_processes"] == 0)
    return report
