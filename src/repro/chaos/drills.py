"""Operator-driven chaos drills, exercised through the REST API only.

The harness drills (:func:`repro.runtime.launcher.run_demo`) reach
straight into the controller.  The drills here are stricter: they drive
the cluster exclusively through :class:`~repro.ops.client.OpsClient`,
the same surface a human operator (or the CI smoke job) has — if a
drill passes, the API alone was sufficient to detect, fence and repair
a grey failure without breaking the differential.

:func:`run_failover_drill` is the control-plane §7 scenario: a
replicated (3-controller) cluster loses its leader mid-operation; the
drill proves the lease fails over, mutations on the old endpoint
redirect (307) to the new leader, the committed op log is readable from
every replica, and the data-plane differential never diverges.

:func:`run_fence_drill` is the §7 grey-failure scenario:

1. launch an API-managed cluster with the auto-fence policy armed
   (``fence_after=1``),
2. run differential traffic and §4.5 churn with everything healthy,
3. SIGSTOP one daemon — alive but unresponsive, the state fencing
   exists for,
4. one heartbeat poll marks it SUSPECT and the policy fences it
   (force-kill + §7 repair + membership broadcast),
5. more traffic over the survivors, then the global audit.

The report's ``ok`` is true only with zero divergences, byte-identical
frames, identical charging (minus the victim's fate-shared slice) and
CRC-identical GPT replicas — the exact gates the harness uses.
"""

from __future__ import annotations

from typing import Dict, Optional


def run_fence_drill(
    num_nodes: int = 4,
    seed: int = 7,
    flows: int = 800,
    packets: int = 800,
    churn: int = 120,
    victim: Optional[int] = None,
    fence_after: int = 1,
) -> Dict[str, object]:
    """The grey-failure fence drill, driven through the operator API.

    Args:
        num_nodes: daemons to spawn.
        seed: master seed (same seed ⇒ same drill).
        flows: initial bearer population.
        packets: differential frames, split across the two phases.
        churn: §4.5 update operations while everything is healthy.
        victim: daemon to freeze (default: ``num_nodes // 2``).
        fence_after: auto-fence threshold in consecutive misses.

    Returns:
        A JSON-ready report with the phase summaries, the fence
        outcome, the final audit and the overall ``ok`` verdict.
    """
    # Imported here, not at module top: repro.ops pulls in the runtime,
    # which pulls this package back in (daemon-side transport faults).
    from repro.ops.api import OpsApiServer
    from repro.ops.client import OpsClient
    from repro.ops.manager import ClusterOps

    if victim is None:
        victim = num_nodes // 2
    if not 0 <= victim < num_nodes:
        raise ValueError("victim out of range")
    ops = ClusterOps.launch(
        num_nodes=num_nodes, seed=seed, flows=flows,
        fence_after=fence_after, ping_timeout=0.5,
    )
    server = OpsApiServer(ops).start_background()
    client = OpsClient(server.host, server.port)
    report: Dict[str, object] = {
        "drill": "fence",
        "nodes": num_nodes,
        "seed": seed,
        "victim": victim,
        "fence_after": fence_after,
    }
    try:
        first = packets // 2
        report["phase1"] = client.traffic(first)
        report["churn"] = client.updates(
            connects=churn // 4, rehomes=churn // 2,
            disconnects=churn // 4,
        )
        client.suspend(victim)
        poll = client.poll()
        report["poll"] = poll
        report["fenced"] = victim in poll["fenced"]
        report["phase2"] = client.traffic(packets - first)
        report["audit"] = client.audit()
        report["cluster"] = {
            key: client.cluster()[key]
            for key in ("nodes", "epoch", "down", "states")
        }
        metrics = client.metrics()
        report["metrics_nonempty"] = bool(metrics.strip())
        report["ok"] = bool(
            report["fenced"]
            and report["phase1"]["divergences"] == 0
            and report["phase2"]["divergences"] == 0
            and report["phase1"]["byte_identical"]
            and report["phase2"]["byte_identical"]
            and report["audit"]["charging_identical"]
            and report["audit"]["gpt_replicas_identical"]
            and report["metrics_nonempty"]
        )
    finally:
        shutdown = client.shutdown()
        report["leaked_processes"] = shutdown["leaked_processes"]
        server.shutdown()
    report["ok"] = bool(report.get("ok") and report["leaked_processes"] == 0)
    return report


def run_failover_drill(
    num_nodes: int = 4,
    seed: int = 7,
    flows: int = 800,
    packets: int = 800,
    churn: int = 120,
    replicas: int = 3,
) -> Dict[str, object]:
    """The control-plane failover drill, driven through the operator API.

    1. launch a replicated cluster (``replicas`` controller replicas,
       one API server bound per replica),
    2. differential traffic + §4.5 churn through the leader's endpoint,
    3. depose the leader (``POST /v1/replication/fail-leader``),
    4. issue churn against the *old leader's* endpoint and require the
       307 leader redirect to land it on the successor,
    5. more traffic, the global audit, and the replication invariants:
       exactly one leader, a higher term, and every committed op
       readable from every replica's endpoint.
    """
    # Imported here, not at module top: repro.ops pulls in the runtime,
    # which pulls this package back in (daemon-side transport faults).
    from repro.ops.api import OpsApiServer
    from repro.ops.client import OpsApiError, OpsClient
    from repro.ops.manager import ClusterOps

    if replicas < 3:
        raise ValueError("a failover drill needs at least 3 replicas")
    ops = ClusterOps.launch(
        num_nodes=num_nodes, seed=seed, flows=flows, replicas=replicas,
    )
    servers = [
        OpsApiServer(ops, replica=r).start_background()
        for r in range(replicas)
    ]
    clients = [OpsClient(s.host, s.port) for s in servers]
    report: Dict[str, object] = {
        "drill": "failover",
        "nodes": num_nodes,
        "seed": seed,
        "replicas": replicas,
    }
    try:
        assert ops.replication is not None
        old_leader = ops.replication.group.leader()
        assert old_leader is not None
        leader_client = clients[old_leader]
        first = packets // 2
        report["phase1"] = leader_client.traffic(first)
        report["churn1"] = leader_client.updates(
            connects=churn // 4, rehomes=churn // 2,
            disconnects=churn // 4,
        )
        report["failover"] = leader_client.fail_leader()
        new_leader = report["failover"]["new_leader"]
        report["term_advanced"] = bool(
            report["failover"]["new_term"] > report["failover"]["old_term"]
        )
        # The old leader's endpoint must now answer mutations with a
        # 307 naming the successor...
        raw = OpsClient(
            servers[old_leader].host, servers[old_leader].port,
            follow_redirects=False,
        )
        try:
            raw.updates(connects=1)
            report["redirected"] = False
        except OpsApiError as exc:
            report["redirected"] = bool(
                exc.status == 307 and exc.location is not None
                and f":{servers[new_leader].port}" in exc.location
            )
        # ...and a redirect-following client lands the same mutation.
        report["churn2"] = clients[old_leader].updates(
            connects=churn // 8, rehomes=churn // 8,
        )
        report["churn2_redirects"] = clients[old_leader].last_redirects
        report["phase2"] = clients[new_leader].traffic(packets - first)
        report["audit"] = clients[new_leader].audit()
        status = clients[new_leader].replication()
        report["replication"] = {
            "leader": status["leader"],
            "term": status["term"],
        }
        leaders = [
            m["node"] for m in status["members"] if m["role"] == "leader"
        ]
        committed_views = [c.committed_ops() for c in clients]
        verbs = [[o["verb"] for o in view] for view in committed_views]
        report["single_leader"] = leaders == [status["leader"]]
        report["ops_visible_everywhere"] = bool(
            all(v == verbs[0] for v in verbs[1:]) and len(verbs[0]) >= 4
        )
        report["ok"] = bool(
            report["term_advanced"]
            and report["redirected"]
            and report["churn2_redirects"] >= 1
            and report["single_leader"]
            and report["ops_visible_everywhere"]
            and report["phase1"]["divergences"] == 0
            and report["phase2"]["divergences"] == 0
            and report["phase1"]["byte_identical"]
            and report["phase2"]["byte_identical"]
            and report["audit"]["charging_identical"]
            and report["audit"]["gpt_replicas_identical"]
        )
    finally:
        shutdown = clients[0].shutdown()
        report["leaked_processes"] = shutdown["leaked_processes"]
        for server in servers:
            server.shutdown()
    report["ok"] = bool(report.get("ok") and report["leaked_processes"] == 0)
    return report
