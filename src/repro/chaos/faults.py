"""Seeded fault plans and the injector that applies them.

A :class:`FaultPlan` is a deterministic schedule of discrete fault events
drawn from a seed; the :class:`FaultInjector` applies one event per step
to a live gateway through the hooks the production objects expose —
``SwitchFabric.fault_hook`` (transit drop/duplication/reorder and
partitions), ``UpdateEngine.delta_interceptor`` (lost/duplicated/delayed
GPT deltas), ``EpcGateway.down_nodes`` plus
:class:`~repro.cluster.failover.FailoverManager` (crash & rejoin), and
the packet codecs (malformed/truncated frames).

Between events the injector drives a burst of differential traffic; the
:class:`~repro.chaos.oracle.DifferentialOracle` asserts the cluster-
visible invariants after every one.

Modelling assumptions (see ``docs/chaos.md``): the control plane
(RIB updates and delta broadcasts) is carried out-of-band and is only
lossy when a delta fault says so; a crash is a liveness event (state
survives in memory); a partition severs only data-plane transits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.chaos.oracle import DifferentialOracle
from repro.cluster import fabric as fabric_mod
from repro.cluster import update as update_mod
from repro.cluster.architectures import Architecture
from repro.cluster.failover import FailoverManager
from repro.epc.gateway import EpcGateway
from repro.epc.packets import (
    EthernetHeader,
    Ipv4Header,
    UdpHeader,
    build_downstream_frame,
)
from repro.epc.traffic import FlowGenerator
from repro.epc.tunnels import GtpTunnelEndpoint


class FaultKind(enum.Enum):
    """The fault model: every adversarial event the harness can inject."""

    #: Mark a node dead (liveness only); its flows stop forwarding unless
    #: the event also re-homes them onto survivors (§7 recovery).
    NODE_CRASH = "node_crash"
    #: Bring a crashed node back, state intact.
    NODE_REJOIN = "node_rejoin"
    #: Sever a node's switch-fabric links: transits to/from it are lost
    #: in flight (data plane only).
    PARTITION = "partition"
    #: Reconnect a partitioned node.
    PARTITION_HEAL = "partition_heal"
    #: Drop the next k fabric transits.
    FABRIC_DROP = "fabric_drop"
    #: Duplicate the next k fabric transits (at-least-once delivery).
    FABRIC_DUPLICATE = "fabric_duplicate"
    #: Reorder (delay) the next k fabric transits.
    FABRIC_REORDER = "fabric_reorder"
    #: Lose one peer's copy of a GPT delta during a re-home: that replica
    #: serves stale one-sided answers until the repair rebroadcast.
    DELTA_LOST = "delta_lost"
    #: Hold every peer's delta back; flush after the traffic burst.
    DELTA_DELAYED = "delta_delayed"
    #: Apply each peer's delta twice (idempotence under at-least-once).
    DELTA_DUPLICATED = "delta_duplicated"
    #: Replay an identical FIB update end to end (duplicate message).
    UPDATE_REPLAY = "update_replay"
    #: Offer truncated/corrupted downstream frames.
    PACKET_MALFORMED = "packet_malformed"
    #: Offer truncated/corrupted upstream GTP-U packets.
    TUNNEL_CORRUPT = "tunnel_corrupt"
    #: Bearer churn: connect new flows, disconnect existing ones.
    FLOW_CHURN = "flow_churn"
    #: Move a live bearer to another handling node (§7 mobility).
    FLOW_REHOME = "flow_rehome"
    #: SIGKILL-analogue on the controller leader: crash it mid-term,
    #: require a majority successor, restart the corpse as an observer.
    LEADER_CRASH = "leader_crash"
    #: Partition one controller follower; the leaseholder must keep
    #: serving on the remaining majority, and the healed follower must
    #: converge on the same committed log.
    FOLLOWER_PARTITION = "follower_partition"
    #: Isolate the leader so its lease expires: it must step down on
    #: its own clock while a new leader rises on the majority side —
    #: never two leaseholders at once.
    LEASE_STALL = "lease_stall"
    #: Sever one fabric link (the fabric picks its own victim: a spine
    #: trunk on the fat-tree, which must reroute; a node pair on the
    #: crossbar, which loses that direction until healed).
    LINK_DOWN = "link_down"
    #: Slow one fabric link down (lossless; latency only).
    LINK_DEGRADED = "link_degraded"
    #: Restore every failed and degraded link.
    LINK_HEAL = "link_heal"


#: Kinds a default plan draws from (paired heal/rejoin events are
#: scheduled automatically and never drawn directly).
DEFAULT_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.NODE_CRASH,
    FaultKind.PARTITION,
    FaultKind.FABRIC_DROP,
    FaultKind.FABRIC_DUPLICATE,
    FaultKind.FABRIC_REORDER,
    FaultKind.DELTA_LOST,
    FaultKind.DELTA_DELAYED,
    FaultKind.DELTA_DUPLICATED,
    FaultKind.UPDATE_REPLAY,
    FaultKind.PACKET_MALFORMED,
    FaultKind.TUNNEL_CORRUPT,
    FaultKind.FLOW_CHURN,
    FaultKind.FLOW_REHOME,
)

#: Control-plane faults: only applicable when the injector is given a
#: replicated controller group.  Kept out of DEFAULT_FAULT_KINDS so
#: existing plans (and their byte-compared reports) are untouched; pass
#: ``kinds=DEFAULT_FAULT_KINDS + CONTROLLER_FAULT_KINDS`` to mix them in.
CONTROLLER_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.LEADER_CRASH,
    FaultKind.FOLLOWER_PARTITION,
    FaultKind.LEASE_STALL,
)

#: Link-level faults against the fabric topology itself.  Kept out of
#: DEFAULT_FAULT_KINDS for the same reason as the controller kinds; pass
#: ``kinds=DEFAULT_FAULT_KINDS + LINK_FAULT_KINDS`` (the CLI's
#: ``--link-faults``) to mix them in.  ``LINK_HEAL`` is scheduled
#: automatically as the paired heal, never drawn directly.
LINK_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.LINK_DOWN,
    FaultKind.LINK_DEGRADED,
)

#: Kinds that only make sense with a GPT to desynchronise.
_GPT_ONLY = {
    FaultKind.DELTA_LOST,
    FaultKind.DELTA_DELAYED,
    FaultKind.DELTA_DUPLICATED,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    step: int
    kind: FaultKind
    params: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events for one episode."""

    seed: int
    events: Tuple[FaultEvent, ...]

    @property
    def steps(self) -> int:
        """Number of plan steps (one event per step)."""
        return len(self.events)

    def kinds_used(self) -> List[str]:
        """Sorted distinct fault kinds this plan schedules."""
        return sorted({event.kind.value for event in self.events})

    @classmethod
    def generate(
        cls,
        seed: int,
        steps: int,
        architecture: Architecture = Architecture.SCALEBRICKS,
        kinds: Optional[Sequence[FaultKind]] = None,
    ) -> "FaultPlan":
        """Draw a schedule of ``steps`` events, deterministic in ``seed``.

        Crash and partition events automatically get their paired
        rejoin/heal two steps later (or at plan end), and down windows
        never overlap, so a default plan always returns to a fully
        healthy cluster — which is what lets the soak runner demand
        *zero* violations at its strict final audit.
        """
        if steps < 1:
            raise ValueError("a plan needs at least one step")
        pool = list(kinds if kinds is not None else DEFAULT_FAULT_KINDS)
        if not architecture.uses_gpt:
            pool = [k for k in pool if k not in _GPT_ONLY]
        if not pool:
            raise ValueError("no applicable fault kinds")
        rng = np.random.default_rng(seed)
        schedule: List[Optional[FaultEvent]] = [None] * steps
        window_until = -1
        for step in range(steps):
            if schedule[step] is not None:
                continue
            kind = pool[int(rng.integers(len(pool)))]
            if kind in (FaultKind.NODE_CRASH, FaultKind.PARTITION,
                        FaultKind.LINK_DOWN, FaultKind.LINK_DEGRADED):
                heal_step = step + 2
                if step <= window_until or heal_step >= steps \
                        or schedule[heal_step] is not None:
                    kind = FaultKind.FLOW_REHOME
                else:
                    window_until = heal_step
                    if kind is FaultKind.NODE_CRASH:
                        heal = FaultKind.NODE_REJOIN
                    elif kind is FaultKind.PARTITION:
                        heal = FaultKind.PARTITION_HEAL
                    else:
                        heal = FaultKind.LINK_HEAL
                    schedule[heal_step] = FaultEvent(step=heal_step, kind=heal)
            params: Dict[str, int] = {}
            if kind in (FaultKind.FABRIC_DROP, FaultKind.FABRIC_DUPLICATE,
                        FaultKind.FABRIC_REORDER):
                params["count"] = int(rng.integers(1, 4))
            if kind is FaultKind.NODE_CRASH:
                params["recover"] = int(rng.integers(2))
            if kind is FaultKind.LINK_DEGRADED:
                params["factor"] = int(rng.integers(2, 6))
            if kind is FaultKind.FLOW_CHURN:
                params["connects"] = int(rng.integers(2, 5))
                params["disconnects"] = int(rng.integers(1, 3))
            if kind is FaultKind.PACKET_MALFORMED \
                    or kind is FaultKind.TUNNEL_CORRUPT:
                params["count"] = int(rng.integers(2, 5))
            schedule[step] = FaultEvent(step=step, kind=kind, params=params)
        return cls(seed=seed, events=tuple(schedule))


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live gateway, step by step.

    Args:
        gateway: a started :class:`~repro.epc.gateway.EpcGateway`.
        oracle: the differential oracle mirroring this gateway.
        flowgen: the generator that populated the gateway — reused so
            churn-created flows stay unique.
        seed: drives every random choice the injector makes (victims,
            ingress nodes, corruption offsets); independent of the plan
            seed so the same plan can be replayed over different traffic.
        replicas: an optional replicated controller group
            (:class:`~repro.runtime.replication.ReplicaGroup`); enables
            the ``CONTROLLER_FAULT_KINDS`` handlers, which drive crash /
            partition / lease-stall scenarios through it and record any
            leadership-invariant breach (zero or two leaders, diverged
            committed logs) as an oracle violation.
    """

    def __init__(
        self,
        gateway: EpcGateway,
        oracle: DifferentialOracle,
        flowgen: FlowGenerator,
        seed: int,
        replicas=None,
    ) -> None:
        if gateway.cluster is None or gateway.updates is None:
            raise RuntimeError("gateway must be started before injection")
        self.gateway = gateway
        self.oracle = oracle
        self.flowgen = flowgen
        self.cluster = gateway.cluster
        self.engine = gateway.updates
        self.failover = FailoverManager(self.cluster)
        self.replicas = replicas
        self.rng = np.random.default_rng(seed)
        self.applied: Dict[str, int] = {}
        self.outcomes: Dict[str, int] = {}
        self.partitioned: Set[int] = set()
        self._drop_budget = 0
        self._dup_budget = 0
        self._delay_budget = 0
        self._pending_repairs: List[int] = []  # keys awaiting rebroadcast
        self._flush_pending = False
        self.cluster.fabric.fault_hook = self._fabric_hook
        self._m_faults = gateway.registry.counter(
            "chaos.faults_injected", "fault events applied to the cluster"
        )

    # ------------------------------------------------------------------
    # Fabric hook
    # ------------------------------------------------------------------

    def _fabric_hook(self, src: int, dst: int, size: int) -> str:
        if src in self.partitioned or dst in self.partitioned:
            return fabric_mod.DROP
        if self._drop_budget > 0:
            self._drop_budget -= 1
            return fabric_mod.DROP
        if self._dup_budget > 0:
            self._dup_budget -= 1
            return fabric_mod.DUPLICATE
        if self._delay_budget > 0:
            self._delay_budget -= 1
            return fabric_mod.DELAY
        return fabric_mod.DELIVER

    def disarm_fabric_budgets(self) -> None:
        """Clear per-transit budgets (partitions persist until healed)."""
        self._drop_budget = 0
        self._dup_budget = 0
        self._delay_budget = 0

    # ------------------------------------------------------------------
    # Victim / topology selection
    # ------------------------------------------------------------------

    def live_nodes(self) -> List[int]:
        """Nodes that are neither crashed nor partitioned."""
        return [
            n for n in range(len(self.cluster.nodes))
            if self.failover.is_up(n) and n not in self.partitioned
        ]

    def pick_ingress(self) -> int:
        """A seeded ingress among fully reachable nodes."""
        live = self.live_nodes()
        return int(live[int(self.rng.integers(len(live)))])

    def _pick_flow(self, on_live_node: bool = True):
        """A seeded victim bearer (optionally restricted to live owners)."""
        flows = self.oracle.reference.flows
        keys = sorted(
            key for key, ref in flows.items()
            if not on_live_node
            or (ref.node not in self.oracle.down
                and ref.node not in self.partitioned)
        )
        if not keys:
            return None
        return flows[keys[int(self.rng.integers(len(keys)))]]

    def _pick_target(self, exclude: int) -> Optional[int]:
        candidates = [n for n in self.live_nodes() if n != exclude]
        if not candidates:
            return None
        return int(candidates[int(self.rng.integers(len(candidates)))])

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        """Repair any previous staleness window, then inject one event."""
        self.repair()
        handler = getattr(self, f"_apply_{event.kind.value}")
        handler(event)
        self.applied[event.kind.value] = (
            self.applied.get(event.kind.value, 0) + 1
        )
        self._m_faults.inc()

    def repair(self) -> None:
        """Close open staleness windows (delayed flush + rebroadcasts)."""
        if self._flush_pending:
            self.engine.flush_delayed_deltas()
            self._flush_pending = False
        for key in self._pending_repairs:
            ref = self.oracle.reference.flows.get(key)
            if ref is not None:
                # Identity re-insert: same mapping, fresh group
                # rebroadcast — exactly the §4.5 repair path.
                self.engine.insert_flow(key, ref.node, ref.teid)
        self._pending_repairs = []
        for key in sorted(self.oracle.stale_keys):
            self.oracle.note_repaired(key)

    def finish(self) -> None:
        """Return the cluster to full health for the strict final audit."""
        self.repair()
        for node in sorted(self.partitioned):
            self._heal(node)
        for node in sorted(set(self.failover.down)):
            self._rejoin(node)
        self._heal_links()
        self.disarm_fabric_budgets()

    # -- individual fault handlers -------------------------------------

    def _apply_node_crash(self, event: FaultEvent) -> None:
        live = self.live_nodes()
        if len(live) < 2:
            return
        victim = int(live[int(self.rng.integers(len(live)))])
        self.failover.fail_node(victim)
        self.gateway.down_nodes.add(victim)
        self.oracle.note_fail(victim)
        if event.params.get("recover"):
            # §7 recovery: re-home the dead node's bearers onto the
            # survivors; controller record, FIB entry (+ GPT delta) and
            # DPE context move together.
            victims = sorted(
                key for key, ref in self.oracle.reference.flows.items()
                if ref.node == victim
            )
            survivors = [n for n in self.live_nodes() if n != victim]
            for i, key in enumerate(victims):
                target = survivors[i % len(survivors)]
                ref = self.oracle.reference.flows[key]
                self.gateway.rehome_flow(ref.flow, target)
                self.oracle.note_rehome(key, target)

    def _apply_node_rejoin(self, event: FaultEvent) -> None:
        for node in sorted(set(self.failover.down)):
            self._rejoin(node)

    def _rejoin(self, node: int) -> None:
        self.failover.restore_node(node)
        self.gateway.down_nodes.discard(node)
        self.oracle.note_restore(node)

    def _apply_partition(self, event: FaultEvent) -> None:
        live = self.live_nodes()
        if len(live) < 2:
            return
        victim = int(live[int(self.rng.integers(len(live)))])
        self.partitioned.add(victim)
        self.oracle.note_partition(victim)

    def _apply_partition_heal(self, event: FaultEvent) -> None:
        for node in sorted(self.partitioned):
            self._heal(node)

    def _heal(self, node: int) -> None:
        self.partitioned.discard(node)
        self.oracle.note_heal(node)

    def _apply_link_down(self, event: FaultEvent) -> None:
        link = self.cluster.fabric.pick_fault_link(self.rng)
        if link is None:
            return
        self.cluster.fabric.fail_link(link)
        self.oracle.note_link_down(link)

    def _apply_link_degraded(self, event: FaultEvent) -> None:
        # Lossless: latency only, so the oracle's delivery invariants
        # are unchanged and no note is needed.
        link = self.cluster.fabric.pick_fault_link(self.rng)
        if link is None:
            return
        self.cluster.fabric.degrade_link(
            link, factor=float(event.params.get("factor", 4))
        )

    def _apply_link_heal(self, event: FaultEvent) -> None:
        self._heal_links()

    def _heal_links(self) -> None:
        self.cluster.fabric.heal_links()
        self.oracle.note_links_healed()

    def _apply_fabric_drop(self, event: FaultEvent) -> None:
        self._drop_budget += event.params.get("count", 1)

    def _apply_fabric_duplicate(self, event: FaultEvent) -> None:
        self._dup_budget += event.params.get("count", 1)

    def _apply_fabric_reorder(self, event: FaultEvent) -> None:
        self._delay_budget += event.params.get("count", 1)

    def _rehome_with_interceptor(self, interceptor, stale: bool) -> None:
        ref = self._pick_flow()
        if ref is None:
            return
        target = self._pick_target(ref.node)
        if target is None:
            return
        self.engine.delta_interceptor = interceptor
        try:
            self.gateway.rehome_flow(ref.flow, target)
        finally:
            self.engine.delta_interceptor = None
        self.oracle.note_rehome(ref.key, target)
        if stale:
            self.oracle.note_stale(ref.key)
            self._pending_repairs.append(ref.key)

    def _apply_delta_lost(self, event: FaultEvent) -> None:
        peers = [n for n in self.live_nodes()]
        if len(peers) < 2:
            return
        stale_peer = int(peers[int(self.rng.integers(len(peers)))])

        def interceptor(owner: int, peer: int) -> str:
            if peer == stale_peer:
                return update_mod.DROP
            return update_mod.DELIVER

        self._rehome_with_interceptor(interceptor, stale=True)

    def _apply_delta_delayed(self, event: FaultEvent) -> None:
        def interceptor(owner: int, peer: int) -> str:
            return update_mod.DELAY

        self._rehome_with_interceptor(interceptor, stale=True)
        self._flush_pending = True

    def _apply_delta_duplicated(self, event: FaultEvent) -> None:
        def interceptor(owner: int, peer: int) -> str:
            return update_mod.DUPLICATE

        self._rehome_with_interceptor(interceptor, stale=False)

    def _apply_update_replay(self, event: FaultEvent) -> None:
        ref = self._pick_flow()
        if ref is None:
            return
        # The same update arrives twice (at-least-once control channel):
        # the second application must be a no-op at every layer.
        self.engine.insert_flow(ref.key, ref.node, ref.teid)
        self.engine.insert_flow(ref.key, ref.node, ref.teid)

    def _apply_packet_malformed(self, event: FaultEvent) -> None:
        for _ in range(event.params.get("count", 2)):
            frame = self._corrupt_downstream_frame()
            self._note_outcome(
                self.oracle.offer_downstream(event.step, frame,
                                             self.pick_ingress())
            )

    def _apply_tunnel_corrupt(self, event: FaultEvent) -> None:
        for _ in range(event.params.get("count", 2)):
            packet = self._corrupt_upstream_packet()
            if packet is not None:
                self._note_outcome(
                    self.oracle.offer_upstream(event.step, packet)
                )

    def _apply_flow_churn(self, event: FaultEvent) -> None:
        for _ in range(event.params.get("connects", 2)):
            flow = self.flowgen.flows(1)[0]
            record = self.gateway.connect(
                flow,
                self.flowgen.base_station_for(flow),
                self.flowgen.region_for(flow),
            )
            self.oracle.note_connect(record)
        for _ in range(event.params.get("disconnects", 1)):
            ref = self._pick_flow()
            if ref is None:
                break
            self.gateway.disconnect(ref.flow)
            self.oracle.note_disconnect(ref.key)

    def _apply_flow_rehome(self, event: FaultEvent) -> None:
        ref = self._pick_flow()
        if ref is None:
            return
        target = self._pick_target(ref.node)
        if target is None:
            return
        self.gateway.rehome_flow(ref.flow, target)
        self.oracle.note_rehome(ref.key, target)

    # -- controller (replicated control plane) faults ------------------

    def _leadership_violation(self, step: int, detail: str) -> None:
        from repro.chaos.oracle import OracleViolation

        self.oracle.violations.append(OracleViolation(
            step=step, invariant="leadership", key=-1, detail=detail,
        ))

    def _check_leadership(self, step: int, floor_term: int = 0) -> None:
        """Assert exactly one live leader and agreeing committed logs."""
        group = self.replicas
        assert group is not None
        leaders = group.leaders()
        if len(leaders) != 1:
            self._leadership_violation(
                step, f"expected exactly one leader, saw {leaders}"
            )
            return
        term = group.replicas[leaders[0]].term
        if term < floor_term:
            self._leadership_violation(
                step,
                f"leader term {term} did not advance past {floor_term}",
            )
        if not group.logs_identical():
            self._leadership_violation(
                step, "live replicas disagree on the committed prefix"
            )

    def _apply_leader_crash(self, event: FaultEvent) -> None:
        """SIGKILL the leader mid-term; a successor must win and the
        restarted corpse must converge on the successor's log."""
        group = self.replicas
        if group is None:
            return
        old = group.leader()
        if old is None:
            old = group.elect()
        old_term = group.replicas[old].term
        info = group.depose()
        self._check_leadership(event.step, floor_term=old_term + 1)
        if info["new_leader"] == old:
            self._leadership_violation(
                event.step,
                f"crashed leader {old} won again without a grace period",
            )

    def _apply_follower_partition(self, event: FaultEvent) -> None:
        """Isolate one follower; the lease must survive on the majority
        and the healed follower must catch up to the same log."""
        group = self.replicas
        if group is None:
            return
        leader = group.leader()
        if leader is None:
            leader = group.elect()
        followers = [i for i in group.live() if i != leader]
        if not followers:
            return
        victim = int(followers[int(self.rng.integers(len(followers)))])
        term_before = group.replicas[leader].term
        group.partition(victim)
        if len(group.live()) < group.replicas[leader].quorum:
            # Partitioning this follower broke the majority; the lease
            # is *supposed* to lapse then, so there is nothing to hold.
            group.heal(victim)
            return
        group.advance(group.lease_duration * 2)
        if group.leader() != leader or (
            group.replicas[leader].term != term_before
        ):
            self._leadership_violation(
                event.step,
                f"leader {leader} lost its lease to a single follower "
                "partition despite holding a majority",
            )
        group.heal(victim)
        group.run_until(
            lambda: group.replicas[victim].commit_index
            >= group.replicas[leader].commit_index
        )
        self._check_leadership(event.step, floor_term=term_before)

    def _apply_lease_stall(self, event: FaultEvent) -> None:
        """Cut the leader off: its lease must lapse (step-down on its
        own clock) while the majority elects a successor — the two-
        leaseholder window the lease arithmetic forbids."""
        from repro.runtime.replication import Role

        group = self.replicas
        if group is None:
            return
        old = group.leader()
        if old is None:
            old = group.elect()
        old_term = group.replicas[old].term
        group.partition(old)
        new = group.elect()
        group.run_until(
            lambda: group.replicas[old].role is not Role.LEADER
        )
        if new == old:
            self._leadership_violation(
                event.step, f"partitioned leader {old} re-elected itself"
            )
        group.heal(old)
        group.run_until(
            lambda: group.replicas[old].leader_id == new
            and group.replicas[old].commit_index
            >= group.replicas[new].commit_index
        )
        self._check_leadership(event.step, floor_term=old_term + 1)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def _payload(self, step: int, index: int) -> bytes:
        return f"ep-s{step:02d}-p{index:03d}".encode().ljust(18, b".")

    def _valid_frame(self, ref, step: int, index: int) -> bytes:
        return build_downstream_frame(
            src_mac=b"\x02\x00\x00\x00\x00\x01",
            dst_mac=b"\x02\x00\x00\x00\x00\x02",
            flow=ref.flow,
            payload=self._payload(step, index),
        )

    def _corrupt_downstream_frame(self) -> bytes:
        """A deterministic malformed frame (several corruption modes)."""
        ref = self._pick_flow(on_live_node=False) or self._pick_flow()
        base = self._valid_frame(ref, 0, 0) if ref is not None else b"\x00" * 40
        mode = int(self.rng.integers(4))
        if mode == 0:
            # Truncated inside the Ethernet/IP/L4 headers.
            cut = int(self.rng.integers(0, EthernetHeader.SIZE
                                        + Ipv4Header.SIZE + 4))
            return base[:cut]
        if mode == 1:
            # Flip one IP-header byte: the checksum must catch it.
            raw = bytearray(base)
            offset = EthernetHeader.SIZE + int(self.rng.integers(0, 10))
            raw[offset] ^= 0xFF
            return bytes(raw)
        if mode == 2:
            # Wrong IP version nibble.
            raw = bytearray(base)
            raw[EthernetHeader.SIZE] = (5 << 4) | 5
            return bytes(raw)
        # Garbage tail only — too short for any parse.
        return bytes(self.rng.integers(0, 256, size=7, dtype=np.uint8))

    def _valid_upstream_packet(self, ref, step: int, index: int) -> bytes:
        payload = self._payload(step, index)
        udp = UdpHeader(
            sport=ref.flow.dport, dport=ref.flow.sport,
            length=UdpHeader.SIZE + len(payload),
        )
        inner_ip = Ipv4Header(
            src=ref.flow.dst_ip,  # the UE answers
            dst=ref.flow.src_ip,
            protocol=ref.flow.protocol,
            total_length=Ipv4Header.SIZE + UdpHeader.SIZE + len(payload),
        )
        inner = inner_ip.pack() + udp.pack() + payload
        endpoint = GtpTunnelEndpoint(
            local_ip=ref.base_station_ip, peer_ip=self.gateway.gateway_ip
        )
        return endpoint.encapsulate(ref.teid, inner)

    def _corrupt_upstream_packet(self) -> Optional[bytes]:
        ref = self._pick_flow(on_live_node=False)
        if ref is None:
            return None
        base = self._valid_upstream_packet(ref, 0, 0)
        mode = int(self.rng.integers(3))
        if mode == 0:
            # Truncated mid-GTP-U header.
            cut = int(self.rng.integers(
                Ipv4Header.SIZE, Ipv4Header.SIZE + UdpHeader.SIZE + 8
            ))
            return base[:cut]
        if mode == 1:
            # Unknown TEID (far outside the allocator's range).
            endpoint = GtpTunnelEndpoint(
                local_ip=ref.base_station_ip,
                peer_ip=self.gateway.gateway_ip,
            )
            inner = base[Ipv4Header.SIZE + UdpHeader.SIZE + 8:]
            return endpoint.encapsulate(0x7FFF_FFF0, inner)
        # Corrupted inner IP header (checksum mismatch -> malformed).
        raw = bytearray(base)
        raw[Ipv4Header.SIZE + UdpHeader.SIZE + 8 + 4] ^= 0xFF
        return bytes(raw)

    def _note_outcome(self, kind: str) -> None:
        self.outcomes[kind] = self.outcomes.get(kind, 0) + 1

    def burst(self, step: int, packets: int,
              upstream_every: int = 4, unknown_every: int = 7) -> None:
        """Offer a differential traffic burst: mostly valid downstream,
        with periodic upstream packets and unknown-flow frames mixed in.
        """
        for index in range(packets):
            if unknown_every and index % unknown_every == unknown_every - 1:
                flow = self.flowgen.flows(1)[0]  # never connected
                frame = build_downstream_frame(
                    src_mac=b"\x02\x00\x00\x00\x00\x01",
                    dst_mac=b"\x02\x00\x00\x00\x00\x02",
                    flow=flow,
                    payload=self._payload(step, index),
                )
                self._note_outcome(
                    self.oracle.offer_downstream(step, frame,
                                                 self.pick_ingress())
                )
                continue
            ref = self._pick_flow(on_live_node=False)
            if ref is None:
                return
            if upstream_every and index % upstream_every == upstream_every - 1:
                self._note_outcome(
                    self.oracle.offer_upstream(
                        step, self._valid_upstream_packet(ref, step, index)
                    )
                )
            else:
                self._note_outcome(
                    self.oracle.offer_downstream(
                        step, self._valid_frame(ref, step, index),
                        self.pick_ingress(),
                    )
                )
