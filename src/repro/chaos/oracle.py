"""Differential oracle: a reference model the chaos cluster must match.

The oracle keeps the simplest data structures that can answer "what
should the cluster have done?": a plain ``dict`` reference FIB and a
single-node reference gateway (:class:`ReferenceGateway`) that parses,
policies and re-encapsulates packets with the same codecs but none of the
distributed machinery.  After every injected fault the oracle routes
probes and replays traffic through both sides and records any divergence
as an :class:`OracleViolation`.

Invariants checked (paper §3.4, §4.5, §7):

* **ownership** — a known key delivered anywhere is delivered at its
  authoritative handling node with its authoritative value;
* **one-sided error** — while a replica is declared stale a known key
  may be *dropped* (misrouted to a node whose exact FIB rejects it) but
  never delivered with the wrong value;
* **rejection** — keys absent from the reference FIB are never accepted;
* **handoff bound** — internal fabric transits per packet never exceed
  the architecture's bound (1 for ScaleBricks/full duplication, 2 for
  hash partitioning/VLB);
* **byte fidelity** — the GTP-U encapsulated output (and upstream
  decapsulated output) is byte-identical to the reference gateway's;
* **charging** — the per-TEID byte accounting matches the reference
  exactly at episode end;
* **bookkeeping** — the RIB holds exactly the reference FIB's mappings.

Determinism contract: the oracle draws nothing from wall clock or global
randomness; all probe selection is done by its caller's seeded generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.architectures import Architecture
from repro.cluster.fabric import FabricLoss
from repro.epc.gateway import EpcGateway
from repro.epc.packets import extract_flow, parse_frame
from repro.epc.tunnels import GtpTunnelEndpoint

#: Expected-outcome kinds a reference evaluation can produce.
DELIVERED = "delivered"
MALFORMED = "malformed"
BAD_TUNNEL = "bad_tunnel"
UNKNOWN = "unknown"
NODE_DOWN = "node_down"
TRANSIT_LOSS = "transit_loss"
STALE = "stale"

#: Architecture -> maximum internal fabric transits per packet.
MAX_INTERNAL_HOPS: Dict[Architecture, int] = {
    Architecture.SCALEBRICKS: 1,
    Architecture.FULL_DUPLICATION: 1,
    Architecture.HASH_PARTITION: 2,
    Architecture.ROUTEBRICKS_VLB: 2,
}


@dataclass(frozen=True)
class ReferenceFlow:
    """The oracle's authoritative record of one bearer."""

    key: int
    teid: int
    node: int
    base_station_ip: int
    flow: object  # FlowTuple (kept opaque to avoid import cycles)


@dataclass(frozen=True)
class Expectation:
    """What the reference model says must happen to one packet."""

    kind: str
    node: int = -1
    teid: int = 0
    payload: Optional[bytes] = None
    charge: int = 0


@dataclass(frozen=True)
class OracleViolation:
    """One observed divergence between cluster and reference."""

    step: int
    invariant: str
    key: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (deterministic field order)."""
        return {
            "step": self.step,
            "invariant": self.invariant,
            "key": self.key,
            "detail": self.detail,
        }


class ReferenceGateway:
    """A single-node reference gateway: dict FIB, no fabric, no cluster.

    It shares the byte-level codecs with the real data plane (the point:
    encapsulation must be *byte-identical*) but routes by direct dict
    lookup, so any disagreement is attributable to the distributed side.
    """

    def __init__(self, gateway_ip: int) -> None:
        self.gateway_ip = gateway_ip
        self.flows: Dict[int, ReferenceFlow] = {}
        self.acl_blocked_sources: Set[int] = set()

    # -- reference FIB mutations (mirrored from the cluster) -----------

    def insert(self, flow: ReferenceFlow) -> None:
        """Add or overwrite the authoritative record for a bearer."""
        self.flows[flow.key] = flow

    def remove(self, key: int) -> Optional[ReferenceFlow]:
        """Drop a bearer's record; returns it if present."""
        return self.flows.pop(key, None)

    def rehome(self, key: int, node: int) -> ReferenceFlow:
        """Re-pin a bearer to another handling node."""
        old = self.flows[key]
        moved = ReferenceFlow(
            key=old.key,
            teid=old.teid,
            node=node,
            base_station_ip=old.base_station_ip,
            flow=old.flow,
        )
        self.flows[key] = moved
        return moved

    def __len__(self) -> int:
        return len(self.flows)

    # -- packet evaluation ---------------------------------------------

    def expect_downstream(self, frame: bytes) -> Expectation:
        """Reference verdict for one downstream frame (topology-blind)."""
        try:
            _eth, l3 = parse_frame(frame)
            flow, ip_header, _l4 = extract_flow(l3)
        except ValueError:
            return Expectation(kind=MALFORMED)
        if flow.src_ip in self.acl_blocked_sources:
            return Expectation(kind="acl")
        record = self.flows.get(flow.key())
        if record is None:
            return Expectation(kind=UNKNOWN)
        inner = ip_header.decrement_ttl().pack() + l3[ip_header.SIZE:]
        endpoint = GtpTunnelEndpoint(
            local_ip=self.gateway_ip, peer_ip=record.base_station_ip
        )
        return Expectation(
            kind=DELIVERED,
            node=record.node,
            teid=record.teid,
            payload=endpoint.encapsulate(record.teid, inner),
            charge=len(l3),
        )

    def expect_upstream(self, outer_packet: bytes) -> Expectation:
        """Reference verdict for one upstream GTP-U packet."""
        try:
            teid, inner, _outer = GtpTunnelEndpoint.decapsulate(outer_packet)
        except ValueError:
            return Expectation(kind=BAD_TUNNEL)
        record = None
        for candidate in self.flows.values():
            if candidate.teid == teid:
                record = candidate
                break
        if record is None:
            return Expectation(kind=BAD_TUNNEL)
        try:
            flow, ip_header, _rest = extract_flow(inner)
        except ValueError:
            return Expectation(kind=MALFORMED)
        if flow.src_ip in self.acl_blocked_sources:
            return Expectation(kind="acl")
        return Expectation(
            kind=DELIVERED,
            node=record.node,
            teid=teid,
            payload=ip_header.decrement_ttl().pack() + inner[ip_header.SIZE:],
            charge=len(inner),
        )


class DifferentialOracle:
    """Cross-checks a chaos-driven gateway against the reference model.

    Args:
        gateway: the (started) cluster gateway under test.

    The injector reports every mutation (``note_*``) and every topology
    change (``note_fail`` / ``note_partition`` / ...) so the oracle knows
    which divergences are *expected consequences of the injected fault*
    and which are real bugs.  Keys listed in :attr:`stale_keys` are in a
    declared staleness window (a GPT delta was dropped or delayed): for
    those the one-sided-error contract applies instead of strict
    delivery.
    """

    def __init__(self, gateway: EpcGateway) -> None:
        if gateway.cluster is None:
            raise RuntimeError("gateway must be started before the oracle")
        self.gateway = gateway
        self.cluster = gateway.cluster
        self.reference = ReferenceGateway(gateway.gateway_ip)
        self.down: Set[int] = set()
        self.partitioned: Set[int] = set()
        self.broken_links: Set[Tuple] = set()
        self.stale_keys: Set[int] = set()
        self.violations: List[OracleViolation] = []
        self.checks = 0
        self.transit_losses = 0
        self.ref_bytes: Dict[int, int] = {}
        self.max_hops = MAX_INTERNAL_HOPS[gateway.architecture]
        registry = gateway.registry
        self._m_checks = registry.counter(
            "chaos.oracle.checks", "differential assertions evaluated"
        )
        self._m_violations = registry.counter(
            "chaos.oracle.violations", "differential assertions that failed"
        )
        self._m_transit_losses = registry.counter(
            "chaos.transit_losses", "packets lost to injected fabric faults"
        )

    # ------------------------------------------------------------------
    # Mutation mirror
    # ------------------------------------------------------------------

    def note_connect(self, record) -> None:
        """Mirror a bearer establishment into the reference FIB."""
        self.reference.insert(
            ReferenceFlow(
                key=record.key,
                teid=record.teid,
                node=record.handling_node,
                base_station_ip=record.base_station_ip,
                flow=record.flow,
            )
        )

    def note_disconnect(self, key: int) -> None:
        """Mirror a bearer teardown."""
        self.reference.remove(key)
        self.stale_keys.discard(key)

    def note_rehome(self, key: int, node: int) -> None:
        """Mirror a bearer moving to another handling node."""
        self.reference.rehome(key, node)

    def note_fail(self, node: int) -> None:
        """A node crashed (liveness lost, state retained)."""
        self.down.add(node)

    def note_restore(self, node: int) -> None:
        """A crashed node rejoined."""
        self.down.discard(node)

    def note_partition(self, node: int) -> None:
        """A node was cut off from the switch fabric."""
        self.partitioned.add(node)

    def note_heal(self, node: int) -> None:
        """A fabric partition healed."""
        self.partitioned.discard(node)

    def note_link_down(self, link) -> None:
        """A fabric link was severed (transits over it may be lost)."""
        self.broken_links.add(tuple(link))

    def note_links_healed(self) -> None:
        """Every severed fabric link was restored."""
        self.broken_links.clear()

    def note_stale(self, key: int) -> None:
        """A key entered a declared replica-staleness window."""
        self.stale_keys.add(key)

    def note_repaired(self, key: int) -> None:
        """A key's staleness window closed (delta rebroadcast)."""
        self.stale_keys.discard(key)

    # ------------------------------------------------------------------
    # Differential traffic
    # ------------------------------------------------------------------

    def _fault_topology_active(self) -> bool:
        return bool(self.down or self.partitioned or self.broken_links)

    def _violate(self, step: int, invariant: str, key: int, detail: str) -> None:
        self.violations.append(
            OracleViolation(step=step, invariant=invariant, key=key,
                            detail=detail)
        )
        self._m_violations.inc()

    def _check(self) -> None:
        self.checks += 1
        self._m_checks.inc()

    def _expected_touch(self, key: int, ingress: int, owner: int) -> Set[int]:
        """Nodes a delivered packet's path must visit (deterministic archs)."""
        touch = {ingress, owner}
        if self.gateway.architecture is Architecture.HASH_PARTITION:
            touch.add(self.cluster.lookup_node_of(key))
        return touch

    def offer_downstream(
        self, step: int, frame: bytes, ingress: int
    ) -> str:
        """Run one downstream frame through both sides and compare.

        Returns the observed outcome kind (for the caller's accounting).
        """
        expected = self.reference.expect_downstream(frame)
        try:
            result, out = self.gateway.process_downstream(frame, ingress)
        except FabricLoss:
            # Fabric transits are only lossy under an injected fault
            # (partition, an armed drop budget or a severed link), so the
            # loss is always attributable to the plan; the reference
            # charges nothing.
            self.transit_losses += 1
            self._m_transit_losses.inc()
            self._check()
            return TRANSIT_LOSS
        self._check()
        kind = expected.kind

        if kind == MALFORMED:
            if not (result.dropped and result.reason == "malformed"):
                self._violate(step, "rejection", 0,
                              f"malformed frame not rejected: {result.reason}")
            return MALFORMED

        if kind == "acl":
            if not (result.dropped and result.reason == "acl"):
                self._violate(step, "rejection", result.key,
                              f"ACL-blocked frame not rejected: {result.reason}")
            return kind

        key = result.key
        if kind == UNKNOWN:
            if not result.dropped:
                self._violate(step, "rejection", key,
                              "unknown key was delivered")
            return UNKNOWN

        # Known key: overlay the fault topology on the service expectation.
        assert kind == DELIVERED
        touch = self._expected_touch(key, ingress, expected.node)
        uncertain_path = (
            self.gateway.architecture is Architecture.ROUTEBRICKS_VLB
            and self._fault_topology_active()
        )
        if touch & self.down and not uncertain_path:
            if not (result.dropped and result.reason == "node_down"):
                self._violate(
                    step, "liveness", key,
                    f"path through dead node not reported: {result.reason}",
                )
            return NODE_DOWN

        if result.internal_hops > self.max_hops:
            self._violate(
                step, "handoff_bound", key,
                f"{result.internal_hops} hops > bound {self.max_hops}",
            )
        if result.dropped:
            ok = (
                key in self.stale_keys
                or uncertain_path
                or result.reason == "node_down"  # VLB detour / collateral
            )
            if not ok:
                self._violate(step, "ownership", key,
                              f"known key dropped: {result.reason}")
            return STALE if key in self.stale_keys else result.reason

        # Delivered: must match the reference byte for byte.
        if result.handled_by != expected.node:
            self._violate(
                step, "ownership", key,
                f"delivered at node {result.handled_by}, "
                f"owner is {expected.node}",
            )
        if result.value != expected.teid:
            self._violate(step, "ownership", key,
                          f"value {result.value} != TEID {expected.teid}")
        if out != expected.payload:
            self._violate(step, "byte_fidelity", key,
                          "GTP-U encapsulation differs from reference")
        self.ref_bytes[expected.teid] = (
            self.ref_bytes.get(expected.teid, 0) + expected.charge
        )
        return DELIVERED

    def offer_upstream(self, step: int, outer_packet: bytes) -> str:
        """Run one upstream GTP-U packet through both sides and compare."""
        expected = self.reference.expect_upstream(outer_packet)
        out = self.gateway.process_upstream(outer_packet)
        self._check()
        if expected.kind != DELIVERED:
            if out is not None:
                self._violate(step, "rejection", 0,
                              f"bad upstream packet accepted ({expected.kind})")
            return expected.kind
        if expected.node in self.down:
            if out is not None:
                self._violate(step, "liveness", expected.teid,
                              "upstream served by a dead node")
            return NODE_DOWN
        if out is None:
            self._violate(step, "ownership", expected.teid,
                          "valid upstream packet rejected")
            return "dropped"
        if out != expected.payload:
            self._violate(step, "byte_fidelity", expected.teid,
                          "upstream decapsulation differs from reference")
        self.ref_bytes[expected.teid] = (
            self.ref_bytes.get(expected.teid, 0) + expected.charge
        )
        return DELIVERED

    # ------------------------------------------------------------------
    # Probing / audits
    # ------------------------------------------------------------------

    def _probe(self, step: int, key: int, ingress: int,
               record: ReferenceFlow) -> None:
        """Route one known key and assert the routing invariants."""
        try:
            result = self.cluster.route(key, ingress)
        except FabricLoss:
            self.transit_losses += 1
            self._m_transit_losses.inc()
            self._check()
            if not self.partitioned and not self.broken_links:
                self._violate(step, "liveness", key,
                              "transit lost with no partition or broken "
                              "link declared")
            return
        self._check()
        touch = self._expected_touch(key, ingress, record.node)
        uncertain_path = (
            self.gateway.architecture is Architecture.ROUTEBRICKS_VLB
            and self._fault_topology_active()
        )
        if result.internal_hops > self.max_hops:
            self._violate(
                step, "handoff_bound", key,
                f"{result.internal_hops} hops > bound {self.max_hops}",
            )
        downed = any(node in self.down for node in result.path)
        if downed or (touch & self.down and not uncertain_path):
            # The raw cluster is liveness-unaware; the gateway layer
            # would have dropped this path.  Nothing more to assert.
            return
        if result.dropped:
            if key not in self.stale_keys and not uncertain_path:
                self._violate(step, "ownership", key,
                              f"known key dropped: {result.reason}")
            return
        if result.handled_by != record.node or result.value != record.teid:
            self._violate(
                step, "ownership", key,
                f"routed to ({result.handled_by}, {result.value}), "
                f"expected ({record.node}, {record.teid})",
            )

    def audit(self, step: int, rng, sample: int = 32,
              unknown_probes: int = 8) -> None:
        """Probe a seeded sample of the key space plus structural checks.

        Args:
            step: plan step (for violation attribution).
            rng: the caller's seeded ``numpy`` generator.
            sample: known keys to probe.
            unknown_probes: absent keys that must be rejected.
        """
        keys = sorted(self.reference.flows)
        live_ingress = [
            n for n in range(len(self.cluster.nodes))
            if n not in self.down and n not in self.partitioned
        ]
        if not live_ingress:
            return
        if keys:
            picks = rng.choice(
                len(keys), size=min(sample, len(keys)), replace=False
            )
            for index in sorted(int(i) for i in picks):
                key = keys[index]
                ingress = int(live_ingress[
                    int(rng.integers(len(live_ingress)))
                ])
                self._probe(step, key, ingress, self.reference.flows[key])

        for _ in range(unknown_probes):
            key = int(rng.integers(1, 2**62))
            if key in self.reference.flows:
                continue
            ingress = int(live_ingress[int(rng.integers(len(live_ingress)))])
            try:
                result = self.cluster.route(key, ingress)
            except FabricLoss:
                self.transit_losses += 1
                self._m_transit_losses.inc()
                continue
            self._check()
            if not result.dropped:
                self._violate(step, "rejection", key,
                              "unknown key was delivered")

        # Structural: the RIB is exactly the reference FIB.
        self._check()
        if len(self.cluster.rib) != len(self.reference.flows):
            self._violate(
                step, "bookkeeping", 0,
                f"RIB holds {len(self.cluster.rib)} entries, "
                f"reference holds {len(self.reference.flows)}",
            )

    def final_audit(self, step: int) -> None:
        """Strict end-of-episode check: every key, every byte.

        The caller must have repaired all staleness, healed partitions
        and rejoined crashed nodes first.
        """
        if (self.stale_keys or self.down or self.partitioned
                or self.broken_links):
            raise RuntimeError("final_audit requires a repaired cluster")
        num_nodes = len(self.cluster.nodes)
        for key in sorted(self.reference.flows):
            record = self.reference.flows[key]
            # Ingress away from the owner so the probe exercises the GPT
            # (or lookup-node detour) rather than a local FIB hit.
            self._probe(step, key, ingress=(record.node + 1) % num_nodes,
                        record=record)
        self._check()
        if self.gateway.stats.bytes_charged != self.ref_bytes:
            diff = {
                teid: (
                    self.gateway.stats.bytes_charged.get(teid, 0),
                    self.ref_bytes.get(teid, 0),
                )
                for teid in sorted(
                    set(self.gateway.stats.bytes_charged) | set(self.ref_bytes)
                )
                if self.gateway.stats.bytes_charged.get(teid, 0)
                != self.ref_bytes.get(teid, 0)
            }
            self._violate(step, "charging", 0,
                          f"per-TEID byte accounting diverged: {diff}")
