"""One-shot reproduction summary: ``python -m repro reproduce``.

Runs scaled-down versions of the key experiments in one pass and prints a
paper-vs-measured table — the fast way to sanity-check the reproduction
on a new machine without the full benchmark suite.  Each section mirrors
one of the ``benchmarks/bench_*.py`` harnesses (which remain the
authoritative, asserted versions).
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.core import SetSepParams, build
from repro.core.group import expected_iterations
from repro.core import twolevel
from repro.core.params import BUCKETS_PER_BLOCK, GROUPS_PER_BLOCK
from repro.cluster import Architecture, Cluster, UpdateEngine
from repro.model.cache import XEON_E5_2680, XEON_E5_2697V2
from repro.model.perf import (
    ForwardingModel,
    LatencyModel,
    SetSepLookupModel,
    cuckoo_model,
)
from repro.model.scaling import crossover_node_count, peak_scaling_factor


def _keys(count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(1, 2**62, size=count * 2, dtype=np.uint64))
    return keys[:count]


def _section(title: str) -> None:
    print()
    print(f"--- {title} ---")


def run_reproduction(scale: int = 1) -> List[Tuple[str, bool]]:
    """Run every quick check; returns (name, passed) pairs."""
    checks: List[Tuple[str, bool]] = []
    n = 20_000 * scale

    _section("Table 1: construction and space (16+8, 2-bit values)")
    keys = _keys(n, seed=1)
    values = (keys % np.uint64(4)).astype(np.uint32)
    started = time.perf_counter()
    setsep, stats = build(keys, values, SetSepParams(value_bits=2))
    elapsed = time.perf_counter() - started
    bits = setsep.bits_per_key(n)
    correct = bool(np.array_equal(setsep.lookup_batch(keys), values))
    print(f"  {n:,} keys in {elapsed:.2f}s "
          f"({stats.keys_per_second / 1e3:.0f} Kkeys/s), "
          f"{bits:.2f} bits/key (paper: 3.50), "
          f"fallback {stats.fallback_ratio * 100:.3f}% (paper: 0.00%)")
    checks.append(("bits/key ~ 3.5", abs(bits - 3.5) < 0.2))
    checks.append(("all keys correct", correct))
    checks.append(("fallback ~ 0", stats.fallback_ratio < 0.001))

    _section("Figure 3a: search cost vs bit-array size m (n=16)")
    it_small = expected_iterations(16, 4, trials=40, seed=2)
    it_big = expected_iterations(16, 16, trials=40, seed=2)
    print(f"  m=4: {it_small:.0f} iters; m=16: {it_big:.0f} iters "
          "(paper: ~100x cheaper by m>=12)")
    checks.append(("m sweep collapses cost", it_big * 10 < it_small))

    _section("Figure 5: two-level load balance")
    block_keys = _keys(16 * 1024, seed=3)
    num_blocks = twolevel.num_blocks_for(len(block_keys))
    buckets = twolevel.bucket_ids(block_keys, num_blocks)
    worst = 0
    for b in range(num_blocks):
        lo = b * BUCKETS_PER_BLOCK
        inside = (buckets >= lo) & (buckets < lo + BUCKETS_PER_BLOCK)
        sizes = np.bincount(buckets[inside] - lo, minlength=BUCKETS_PER_BLOCK)
        _, block_max = twolevel.assign_block(
            sizes, np.random.default_rng(b)
        )
        worst = max(worst, block_max)
    direct = twolevel.max_group_load(
        twolevel.direct_group_ids(
            block_keys, num_blocks * GROUPS_PER_BLOCK
        ),
        num_blocks * GROUPS_PER_BLOCK,
    )
    print(f"  two-level worst group {worst} vs direct {direct} "
          "(paper: 21 vs >40 at full scale)")
    checks.append(("two-level <= 21", worst <= 21))
    checks.append(("beats direct hashing", worst < direct))

    _section("Figure 7: lookup-throughput shape (modelled)")
    model = SetSepLookupModel(XEON_E5_2680)
    small_unbatched = model.throughput_mops(500_000, 1)
    small_batched = model.throughput_mops(500_000, 17)
    big_unbatched = model.throughput_mops(64_000_000, 1)
    big_batched = model.throughput_mops(64_000_000, 17)
    print(f"  500K: {small_unbatched:.0f} (b=1) vs {small_batched:.0f} "
          f"(b=17); 64M: {big_unbatched:.0f} vs {big_batched:.0f} Mops")
    checks.append(
        ("batching helps big only",
         small_unbatched > small_batched and big_batched > big_unbatched)
    )
    checks.append(("64M b=17 in paper range", 300 < big_batched < 800))

    _section("Figures 8/10: forwarding gains (modelled)")
    forwarding = ForwardingModel(XEON_E5_2697V2, cuckoo_model())
    gain = forwarding.improvement(32_000_000)
    latency = LatencyModel(
        XEON_E5_2697V2.with_l3(15 * 1024 * 1024), cuckoo_model()
    )
    reduction = 1 - latency.scalebricks_us(1_000_000) / \
        latency.full_duplication_us(1_000_000)
    print(f"  throughput gain at 32M flows: {gain * 100:.1f}% "
          "(paper: up to 22%)")
    print(f"  latency reduction at 1M tunnels: {reduction * 100:.1f}% "
          "(paper: up to 10%)")
    checks.append(("throughput gain positive", gain > 0.05))
    checks.append(("latency reduction in range", 0.02 < reduction < 0.25))

    _section("Figure 11: FIB scaling analytics")
    peak_n, ratio = peak_scaling_factor()
    crossover = crossover_node_count()
    print(f"  peak {ratio:.1f}x at n={peak_n} (paper: 5.7x); "
          f"growth turns negative past n={crossover} (paper: ~32)")
    checks.append(("peak ratio ~ paper", 5.0 < ratio < 7.0))
    checks.append(("crossover ~ 32", 30 <= crossover <= 64))

    _section("§4.5/§6.2: update path")
    cl_keys = _keys(3_000 * scale, seed=4)
    handlers = (cl_keys % np.uint64(4)).astype(np.int64)
    cluster = Cluster.build(
        Architecture.SCALEBRICKS, 4, cl_keys, handlers,
        np.arange(len(cl_keys)),
    )
    engine = UpdateEngine(cluster)
    started = time.perf_counter()
    for i in range(150):
        engine.insert_flow(int(cl_keys[i]), (int(handlers[i]) + 1) % 4, i)
    rate = 150 / (time.perf_counter() - started)
    print(f"  {rate:,.0f} updates/s single-owner (paper: 60K/s in C); "
          f"mean delta {engine.stats.mean_delta_bits:.0f} bits "
          "(paper: tens of bits)")
    checks.append(("delta tens of bits", engine.stats.mean_delta_bits < 300))

    _section("Verdict")
    passed = sum(1 for _, ok in checks if ok)
    for name, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    print(f"  {passed}/{len(checks)} checks passed")
    return checks
