"""BUFFALO-style set separation: one Bloom filter per node (paper §8).

BUFFALO (Yu, Fabrikant, Rexford; CoNEXT'09) scales a switch's forwarding
table by keeping one Bloom filter per outgoing port and sending a packet out
the port whose filter claims the destination.  As the paper notes, this
approach to set separation is inefficient: several filters can answer
positively for one key and the tie must be resolved somehow, updates are
expensive, and the total space exceeds SetSep's.

This implementation reproduces those behaviours so the ablation benchmark
can measure them: multi-positive rate, misroute rate under tie-breaking,
and bits/key at equal error targets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.baselines.bloom import BloomFilter
from repro.core import hashfamily
from repro.core.setsep import Key


class BuffaloSeparator:
    """Key-to-node separation built from per-node Bloom filters.

    Args:
        num_nodes: number of disjoint subsets (cluster nodes / ports).
        bits_per_key: filter budget per stored key; each node's filter is
            sized to its share of keys at this budget.
        expected_items: total keys expected (sizing hint).
    """

    def __init__(
        self,
        num_nodes: int,
        bits_per_key: float = 8.0,
        expected_items: int = 1024,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("need at least two nodes to separate")
        per_node_items = max(1, expected_items // num_nodes)
        self.num_nodes = num_nodes
        self._filters: List[BloomFilter] = [
            BloomFilter(
                num_bits=max(8, int(per_node_items * bits_per_key)),
                expected_items=per_node_items,
            )
            for _ in range(num_nodes)
        ]

    def insert(self, key: Key, node: int) -> None:
        """Register ``key`` as handled by ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError("node id out of range")
        self._filters[node].add(key)

    def insert_batch(
        self, keys: Union[Sequence[Key], np.ndarray], nodes: Sequence[int]
    ) -> None:
        """Bulk insert grouped per node filter."""
        keys_arr = hashfamily.canonical_keys(keys)
        nodes_arr = np.asarray(nodes)
        for node in range(self.num_nodes):
            members = keys_arr[nodes_arr == node]
            if members.size:
                self._filters[node].add_batch(members)

    def candidates(self, key: Key) -> List[int]:
        """All nodes whose filter claims the key (may be none or several)."""
        return [
            node
            for node, filt in enumerate(self._filters)
            if key in filt
        ]

    def lookup(self, key: Key) -> int:
        """Resolve to one node: the lowest-indexed positive filter.

        Falls back to a deterministic hash-based node when no filter
        matches, mirroring ScaleBricks' deliver-somewhere contract so
        misroute rates are comparable.
        """
        positives = self.candidates(key)
        if positives:
            return positives[0]
        arr = hashfamily.canonical_keys([key])
        return int(hashfamily.reduce_range(
            hashfamily.bucket_hash(arr), self.num_nodes
        )[0])

    def lookup_stats(
        self, keys: Union[Sequence[Key], np.ndarray], nodes: Sequence[int]
    ) -> Tuple[float, float]:
        """(multi-positive rate, misroute rate) over known keys.

        A key misroutes when tie-breaking picks a false-positive filter
        with a lower index than the true node's — the failure mode SetSep
        avoids by construction (known keys are always mapped correctly).
        """
        keys_list = list(keys)
        multi = 0
        wrong = 0
        for key, node in zip(keys_list, nodes):
            positives = self.candidates(key)
            if len(positives) > 1:
                multi += 1
            if not positives or positives[0] != node:
                wrong += 1
        n = max(1, len(keys_list))
        return multi / n, wrong / n

    def size_bits(self) -> int:
        """Total bits across all per-node filters."""
        return sum(f.size_bits() for f in self._filters)
