"""Bloom filter substrate (Bloom 1970; paper §8).

A standard Bloom filter with double hashing — the k probe positions derive
from two base hashes as ``G1 + i*G2`` (Kirsch & Mitzenmacher), the same
trick SetSep uses for its hash family.  Used by the BUFFALO baseline and by
the separator ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key


class BloomFilter:
    """Fixed-size Bloom filter over the canonical 64-bit key space.

    Args:
        num_bits: filter size in bits.
        num_hashes: probe count k; if omitted, the optimum
            ``k = (m/n) ln 2`` is derived from ``expected_items``.
        expected_items: sizing hint used only to derive ``num_hashes``.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 0,
        expected_items: int = 0,
    ) -> None:
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if num_hashes < 1:
            if expected_items < 1:
                raise ValueError(
                    "provide num_hashes or expected_items to size k"
                )
            num_hashes = max(1, round(num_bits / expected_items * math.log(2)))
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = np.zeros(num_bits, dtype=bool)
        self._count = 0

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(n, k) probe positions via double hashing."""
        g1, g2 = hashfamily.base_hashes(keys)
        probes = np.arange(self.num_hashes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            h = g1[:, None] + probes[None, :] * g2[:, None]
        return hashfamily.positions(h, self.num_bits)

    def add(self, key: Key) -> None:
        """Insert one key."""
        self.add_batch([key])

    def add_batch(self, keys: Union[Sequence[Key], np.ndarray]) -> None:
        """Insert many keys."""
        keys_arr = hashfamily.canonical_keys(keys)
        if keys_arr.size == 0:
            return
        self._bits[self._positions(keys_arr).ravel()] = True
        self._count += len(keys_arr)

    def __contains__(self, key: Key) -> bool:
        return bool(self.contains_batch([key])[0])

    def contains_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> np.ndarray:
        """Vectorised membership test (no false negatives)."""
        keys_arr = hashfamily.canonical_keys(keys)
        if keys_arr.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(keys_arr)
        return self._bits[pos].all(axis=1)

    def false_positive_rate(self) -> float:
        """Analytic FPR given the current fill."""
        fill = float(self._bits.mean())
        return fill ** self.num_hashes

    def size_bits(self) -> int:
        """Filter size (bits)."""
        return self.num_bits

    @property
    def count(self) -> int:
        """Keys inserted so far."""
        return self._count
