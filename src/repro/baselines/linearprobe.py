"""Linear probing (paper §8's 'simple hashing schemes' comparator).

"Simple hashing schemes such as linear probing start to develop
performance issues once highly loaded (70–90%, depending on the
implementation)."  This table exists to make that sentence measurable: it
tracks probe-length statistics so the ablation can chart the blow-up as
the load factor climbs, against cuckoo's flat two-bucket cost.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key
from repro.hashtables.interface import FibTable, TableFullError, canonical


class LinearProbingTable(FibTable):
    """Open addressing with linear probing and tombstone-free deletes.

    Deletion uses the standard backward-shift technique so probe chains
    stay tight without tombstones.

    Args:
        capacity: maximum entries; the slot array is sized to exactly the
            requested load factor so tests can pin the load.
        max_load: refuse inserts beyond this fraction of slots.
        value_size: bytes charged per value by the size accounting.
    """

    def __init__(
        self,
        capacity: int,
        max_load: float = 0.9,
        value_size: int = 8,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.1 <= max_load <= 0.99:
            raise ValueError("max_load must be in [0.1, 0.99]")
        slots_needed = max(2, int(capacity / max_load) + 1)
        self._num_slots = 1 << (slots_needed - 1).bit_length()
        self._mask = self._num_slots - 1
        self._keys = np.zeros(self._num_slots, dtype=np.uint64)
        self._occupied = np.zeros(self._num_slots, dtype=bool)
        self._values: List[Any] = [None] * self._num_slots
        self._value_size = value_size
        self._max_load = max_load
        self._len = 0
        self.total_probes = 0
        self.total_lookups = 0

    def _home(self, ckey: int) -> int:
        arr = np.asarray([ckey], dtype=np.uint64)
        return int(hashfamily.fib_hash(arr)[0]) & self._mask

    def insert(self, key: Key, value: Any) -> None:
        ckey = canonical(key)
        slot = self._home(ckey)
        for _ in range(self._num_slots):
            if self._occupied[slot]:
                if int(self._keys[slot]) == ckey:
                    self._values[slot] = value
                    return
                slot = (slot + 1) & self._mask
                continue
            if self._len >= self._num_slots * self._max_load:
                raise TableFullError(
                    f"linear probing past max load {self._max_load}"
                )
            self._keys[slot] = ckey
            self._occupied[slot] = True
            self._values[slot] = value
            self._len += 1
            return
        raise TableFullError("linear probing wrapped the whole table")

    def lookup(self, key: Key) -> Optional[Any]:
        ckey = canonical(key)
        slot = self._home(ckey)
        self.total_lookups += 1
        for _ in range(self._num_slots):
            self.total_probes += 1
            if not self._occupied[slot]:
                return None
            if int(self._keys[slot]) == ckey:
                return self._values[slot]
            slot = (slot + 1) & self._mask
        return None

    def delete(self, key: Key) -> bool:
        ckey = canonical(key)
        slot = self._home(ckey)
        for _ in range(self._num_slots):
            if not self._occupied[slot]:
                return False
            if int(self._keys[slot]) == ckey:
                self._backward_shift(slot)
                self._len -= 1
                return True
            slot = (slot + 1) & self._mask
        return False

    def _backward_shift(self, hole: int) -> None:
        """Close the probe chain across the freed slot."""
        self._occupied[hole] = False
        self._keys[hole] = 0
        self._values[hole] = None
        slot = (hole + 1) & self._mask
        while self._occupied[slot]:
            home = self._home(int(self._keys[slot]))
            # Move back iff the hole lies within [home, slot] cyclically.
            if self._cyclic_between(home, hole, slot):
                self._keys[hole] = self._keys[slot]
                self._values[hole] = self._values[slot]
                self._occupied[hole] = True
                self._occupied[slot] = False
                self._keys[slot] = 0
                self._values[slot] = None
                hole = slot
            slot = (slot + 1) & self._mask

    @staticmethod
    def _cyclic_between(home: int, hole: int, slot: int) -> bool:
        if home <= slot:
            return home <= hole <= slot
        return hole >= home or hole <= slot

    def __len__(self) -> int:
        return self._len

    def load_factor(self) -> float:
        """Fraction of slots in use."""
        return self._len / self._num_slots

    def mean_probes(self) -> float:
        """Measured probes per lookup since construction."""
        if not self.total_lookups:
            return 0.0
        return self.total_probes / self.total_lookups

    def size_bytes(self) -> int:
        """Keys + values across the slot array."""
        return self._num_slots * (8 + self._value_size)
