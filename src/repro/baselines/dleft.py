"""d-left hashing (Mitzenmacher & Vöcking; paper §8).

The paper lists d-left among the multiple-choice schemes that "can achieve
occupancies greater than 90%, but must manage collisions and deal with
performance issues from using multiple choices."  d-left splits the table
into d equal sub-tables; each key hashes to one bucket per sub-table and
is placed in the least-loaded candidate, breaking ties toward the leftmost
sub-table — the asymmetry that beats plain d-choice.

Implemented as another exact-FIB comparator with occupancy and probe-count
metrics so the ablation can chart it against cuckoo and rte_hash.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key
from repro.hashtables.interface import FibTable, TableFullError, canonical

#: Sub-tables (the "d" in d-left; 4 is the classic configuration).
SUBTABLES = 4

#: Slots per bucket.
BUCKET_SLOTS = 8


class DLeftHashTable(FibTable):
    """d-left hash table with leftmost tie-breaking.

    Args:
        capacity: expected entries; sized for ~80% occupancy.
        value_size: bytes charged per value by the size accounting.
    """

    def __init__(self, capacity: int, value_size: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        per_subtable = max(
            1, int(capacity / (SUBTABLES * BUCKET_SLOTS * 0.8)) + 1
        )
        self._buckets_per_subtable = 1 << (per_subtable - 1).bit_length()
        slots = SUBTABLES * self._buckets_per_subtable * BUCKET_SLOTS
        self._keys = np.zeros(slots, dtype=np.uint64)
        self._occupied = np.zeros(slots, dtype=bool)
        self._values: List[Any] = [None] * slots
        self._value_size = value_size
        self._len = 0
        self._streams = [
            hashfamily.derive_stream(f"dleft-{d}") for d in range(SUBTABLES)
        ]

    def _bucket_in(self, ckey: int, subtable: int) -> int:
        arr = np.asarray([ckey], dtype=np.uint64)
        h = hashfamily.keyed_hash(arr, self._streams[subtable])
        return int(
            hashfamily.reduce_range(h, self._buckets_per_subtable)[0]
        )

    def _slots_of(self, subtable: int, bucket: int) -> range:
        start = (
            subtable * self._buckets_per_subtable + bucket
        ) * BUCKET_SLOTS
        return range(start, start + BUCKET_SLOTS)

    def _candidates(self, ckey: int) -> List[range]:
        return [
            self._slots_of(d, self._bucket_in(ckey, d))
            for d in range(SUBTABLES)
        ]

    def insert(self, key: Key, value: Any) -> None:
        ckey = canonical(key)
        candidates = self._candidates(ckey)
        # Overwrite when present.
        for slots in candidates:
            for slot in slots:
                if self._occupied[slot] and int(self._keys[slot]) == ckey:
                    self._values[slot] = value
                    return
        # Least-loaded bucket, ties to the left.
        best: Optional[range] = None
        best_load = BUCKET_SLOTS + 1
        for slots in candidates:
            load = int(self._occupied[list(slots)].sum())
            if load < best_load:
                best, best_load = slots, load
        if best is None or best_load >= BUCKET_SLOTS:
            raise TableFullError("all d-left candidate buckets full")
        for slot in best:
            if not self._occupied[slot]:
                self._keys[slot] = ckey
                self._occupied[slot] = True
                self._values[slot] = value
                self._len += 1
                return
        raise TableFullError("slot scan raced bucket load")  # unreachable

    def lookup(self, key: Key) -> Optional[Any]:
        ckey = canonical(key)
        for slots in self._candidates(ckey):
            for slot in slots:
                if self._occupied[slot] and int(self._keys[slot]) == ckey:
                    return self._values[slot]
        return None

    def delete(self, key: Key) -> bool:
        ckey = canonical(key)
        for slots in self._candidates(ckey):
            for slot in slots:
                if self._occupied[slot] and int(self._keys[slot]) == ckey:
                    self._occupied[slot] = False
                    self._keys[slot] = 0
                    self._values[slot] = None
                    self._len -= 1
                    return True
        return False

    def __len__(self) -> int:
        return self._len

    def load_factor(self) -> float:
        """Fraction of slots in use."""
        return self._len / len(self._keys)

    def probes_per_lookup(self) -> int:
        """Buckets examined per lookup — d, always (the §8 'performance
        issues from using multiple choices')."""
        return SUBTABLES

    def size_bytes(self) -> int:
        """Keys + values across all sub-tables."""
        return len(self._keys) * (8 + self._value_size)
