"""CHD-style perfect hashing (compress, hash and displace; paper §8).

Belazzougui, Botelho & Dietzfelbinger's CHD builds a perfect hash by
assigning each key to a small bucket and searching, per bucket in
descending-size order, for a displacement that lands all of the bucket's
keys on unused slots.  The paper cites CHD (and ECT) as the compressed
perfect-hashing relatives of SetSep: ~2.5 bits/key for the index, but the
values still have to be stored in a separate table and lookups are slower.

This implementation provides both the perfect hash (key -> distinct slot)
and a value-table wrapper so the ablation benchmark can compare bits/key
and lookup behaviour against SetSep on the same workload.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key

#: Average keys per CHD bucket (lambda); 4–5 is the usual sweet spot.
KEYS_PER_BUCKET = 4

#: Slot head-room factor (alpha = n/m slots utilisation ~0.95).
SLOT_FACTOR = 1.05

#: Displacement search limit per bucket.
MAX_DISPLACEMENT = 1 << 16


class ChdBuildError(RuntimeError):
    """Raised when no displacement works for some bucket."""


class ChdPerfectHash:
    """Minimal-ish perfect hash over a static key set."""

    def __init__(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        max_seed_attempts: int = 8,
    ) -> None:
        keys_arr = hashfamily.canonical_keys(keys)
        if len(np.unique(keys_arr)) != len(keys_arr):
            raise ValueError("keys must be distinct")
        self.num_keys = len(keys_arr)
        self.num_buckets = max(1, self.num_keys // KEYS_PER_BUCKET)
        self.num_slots = max(
            self.num_keys + 1, int(self.num_keys * SLOT_FACTOR) + 1
        )
        for seed in range(max_seed_attempts):
            if self._try_build(keys_arr, seed):
                self._seed = seed
                return
        raise ChdBuildError(
            f"no displacement assignment found for {self.num_keys} keys"
        )

    def _bucket_of(self, keys: np.ndarray, seed: int) -> np.ndarray:
        stream = hashfamily.derive_stream(f"chd-bucket-{seed}")
        return hashfamily.reduce_range(
            hashfamily.keyed_hash(keys, stream), self.num_buckets
        )

    def _slot_of(self, keys: np.ndarray, displacement: int, seed: int) -> np.ndarray:
        """Slot for each key under a bucket displacement value."""
        stream = hashfamily.derive_stream(f"chd-slot-{seed}")
        g1, g2 = hashfamily.base_hashes(
            hashfamily.keyed_hash(keys, stream)
        )
        with np.errstate(over="ignore"):
            h = g1 + np.uint64(displacement) * g2
        return hashfamily.positions(h, self.num_slots)

    def _base_hashes(self, keys: np.ndarray, seed: int):
        stream = hashfamily.derive_stream(f"chd-slot-{seed}")
        return hashfamily.base_hashes(hashfamily.keyed_hash(keys, stream))

    def _try_build(self, keys: np.ndarray, seed: int) -> bool:
        buckets = self._bucket_of(keys, seed)
        order = np.argsort(np.bincount(buckets, minlength=self.num_buckets))[::-1]
        taken = np.zeros(self.num_slots, dtype=bool)
        displacements = np.zeros(self.num_buckets, dtype=np.uint32)
        g1_all, g2_all = self._base_hashes(keys, seed)

        chunk = 64
        for bucket in order:
            member_mask = buckets == bucket
            if not member_mask.any():
                continue
            g1, g2 = g1_all[member_mask], g2_all[member_mask]
            placed = False
            for start in range(0, MAX_DISPLACEMENT, chunk):
                candidates = np.arange(start, start + chunk, dtype=np.uint64)
                pos = hashfamily.positions_many(g1, g2, candidates, self.num_slots)
                # A column works iff its slots are distinct and all free.
                free = ~taken[pos]
                all_free = free.all(axis=0)
                for col in np.nonzero(all_free)[0]:
                    slots = pos[:, col]
                    if len(np.unique(slots)) == len(slots):
                        taken[slots] = True
                        displacements[bucket] = start + int(col)
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                return False
        self._displacements = displacements
        return True

    def slot(self, key: Key) -> int:
        """Perfect-hash slot of a key (collision-free over the build set)."""
        return int(self.slot_batch([key])[0])

    def slot_batch(self, keys: Union[Sequence[Key], np.ndarray]) -> np.ndarray:
        """Vectorised slot computation."""
        keys_arr = hashfamily.canonical_keys(keys)
        if keys_arr.size == 0:
            return np.zeros(0, dtype=np.int64)
        buckets = self._bucket_of(keys_arr, self._seed)
        displacements = self._displacements[buckets]
        out = np.zeros(len(keys_arr), dtype=np.int64)
        # Displacements vary per key, so evaluate per distinct displacement.
        for d in np.unique(displacements):
            mask = displacements == d
            out[mask] = self._slot_of(keys_arr[mask], int(d), self._seed)
        return out

    def index_bits_per_key(self) -> float:
        """Bits/key for the displacement index at a plain 16-bit encoding.

        Real CHD arithmetic-codes the displacements down to ~2.5 bits/key;
        we report the entropy estimate alongside the raw encoding so the
        comparison brackets both.
        """
        return self.num_buckets * 16 / max(1, self.num_keys)

    def index_entropy_bits_per_key(self) -> float:
        """Empirical entropy of the displacement distribution, per key."""
        counts = np.bincount(self._displacements)
        probs = counts[counts > 0] / self.num_buckets
        entropy = float(-(probs * np.log2(probs)).sum())
        return entropy * self.num_buckets / max(1, self.num_keys)


class ChdValueTable:
    """Key-to-value map: CHD perfect hash + a dense value array.

    This is the "perfect hashing still stores the values" architecture the
    paper contrasts with SetSep: the index is compact, but every slot holds
    a full value and unknown keys read an arbitrary slot.
    """

    def __init__(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        values: Sequence[int],
        value_bits: int,
    ) -> None:
        keys_arr = hashfamily.canonical_keys(keys)
        values_arr = np.asarray(values, dtype=np.uint32)
        if keys_arr.shape != values_arr.shape:
            raise ValueError("keys and values must have equal length")
        self.value_bits = value_bits
        self.phf = ChdPerfectHash(keys_arr)
        self._table = np.zeros(self.phf.num_slots, dtype=np.uint32)
        self._table[self.phf.slot_batch(keys_arr)] = values_arr

    def lookup(self, key: Key) -> int:
        """Value for ``key`` (arbitrary slot's value for unknown keys)."""
        return int(self._table[self.phf.slot(key)])

    def lookup_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> np.ndarray:
        """Vectorised lookup."""
        return self._table[self.phf.slot_batch(keys)]

    def size_bits(self) -> int:
        """Displacement index (16-bit encoding) + value table."""
        index = self.phf.num_buckets * 16
        table = self.phf.num_slots * self.value_bits
        return index + table
