"""Related-work comparators (paper §8).

These are the alternative designs the paper positions SetSep against:

* :class:`repro.baselines.bloom.BloomFilter` — the probabilistic-membership
  substrate.
* :class:`repro.baselines.buffalo.BuffaloSeparator` — BUFFALO's
  one-Bloom-filter-per-port set separation, with its multi-positive
  resolution problem.
* :class:`repro.baselines.bloomier.BloomierFilter` — the Bloomier filter's
  XOR-of-cells key-to-value mapping.
* :class:`repro.baselines.perfecthash.ChdPerfectHash` — compress-hash-and-
  displace perfect hashing (CHD), the closest perfect-hashing relative.

All share SetSep's key space so space/accuracy comparisons are apples to
apples (the ``bench_ablation_separators`` benchmark).
"""

from repro.baselines.bloom import BloomFilter
from repro.baselines.buffalo import BuffaloSeparator
from repro.baselines.bloomier import BloomierFilter, BloomierBuildError
from repro.baselines.perfecthash import ChdPerfectHash, ChdBuildError
from repro.baselines.dleft import DLeftHashTable
from repro.baselines.linearprobe import LinearProbingTable

__all__ = [
    "BloomFilter",
    "BuffaloSeparator",
    "BloomierFilter",
    "BloomierBuildError",
    "ChdPerfectHash",
    "ChdBuildError",
    "DLeftHashTable",
    "LinearProbingTable",
]
