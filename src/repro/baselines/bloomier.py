"""Bloomier filter: static key-to-value maps via XOR-peeling (paper §8).

Chazelle et al.'s Bloomier filter stores, for each key, the XOR of k cells
selected by hashing; construction peels a random k-uniform hypergraph to
find an acyclic assignment order.  Like SetSep it does not store keys and
returns arbitrary values for unknown keys; unlike SetSep it needs ~1.23*k/3
cells per key at k=3 plus a full value per cell, and single-key updates that
change the key set require a rebuild — the scalability gap the paper calls
out.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key

#: Number of cells probed per key (3 gives the classic 1.23 space factor).
PROBES = 3

#: Cell-count slack over the peeling threshold for k=3 hypergraphs.
SPACE_FACTOR = 1.23


class BloomierBuildError(RuntimeError):
    """Raised when peeling fails for every attempted seed."""


class BloomierFilter:
    """Immutable key-to-value map over ``value_bits``-wide values."""

    def __init__(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        values: Sequence[int],
        value_bits: int,
        max_seed_attempts: int = 16,
    ) -> None:
        keys_arr = hashfamily.canonical_keys(keys)
        values_arr = np.asarray(values, dtype=np.uint32)
        if keys_arr.shape != values_arr.shape:
            raise ValueError("keys and values must have equal length")
        if value_bits < 1 or value_bits > 32:
            raise ValueError("value_bits must be in [1, 32]")
        if len(values_arr) and int(values_arr.max()) >= 1 << value_bits:
            raise ValueError("value does not fit in value_bits")
        self.value_bits = value_bits
        self.num_keys = len(keys_arr)
        self.num_cells = max(PROBES + 1, int(len(keys_arr) * SPACE_FACTOR) + 1)

        for seed in range(max_seed_attempts):
            if self._try_build(keys_arr, values_arr, seed):
                self._seed = seed
                return
        raise BloomierBuildError(
            f"peeling failed for {self.num_keys} keys after "
            f"{max_seed_attempts} seeds"
        )

    def _cell_positions(self, keys: np.ndarray, seed: int) -> np.ndarray:
        """(n, PROBES) distinct-ish cell indices per key."""
        stream = hashfamily.derive_stream(f"bloomier-{seed}")
        mixed = hashfamily.keyed_hash(keys, stream)
        g1, g2 = hashfamily.base_hashes(mixed)
        probes = np.arange(PROBES, dtype=np.uint64)
        with np.errstate(over="ignore"):
            h = g1[:, None] + probes[None, :] * g2[:, None]
        return hashfamily.positions(h, self.num_cells)

    def _try_build(
        self, keys: np.ndarray, values: np.ndarray, seed: int
    ) -> bool:
        """Peel the hypergraph; on success fill the cell table."""
        pos = self._cell_positions(keys, seed)
        n = len(keys)

        degree = np.bincount(pos.ravel(), minlength=self.num_cells)
        # XOR-aggregated key index per cell lets us recover the unique
        # incident key of a degree-1 cell without adjacency lists.
        key_xor = np.zeros(self.num_cells, dtype=np.int64)
        for probe in range(PROBES):
            np.bitwise_xor.at(key_xor, pos[:, probe], np.arange(n))

        stack = list(np.nonzero(degree == 1)[0])
        peeled_key = np.full(n, -1, dtype=np.int64)
        peeled_cell = np.full(n, -1, dtype=np.int64)
        removed = np.zeros(n, dtype=bool)
        order = 0
        while stack:
            cell = int(stack.pop())
            if degree[cell] != 1:
                continue
            key_index = int(key_xor[cell])
            if removed[key_index]:
                continue
            removed[key_index] = True
            peeled_key[order] = key_index
            peeled_cell[order] = cell
            order += 1
            for probe in range(PROBES):
                c = int(pos[key_index, probe])
                degree[c] -= 1
                key_xor[c] ^= key_index
                if degree[c] == 1:
                    stack.append(c)
        if order != n:
            return False

        # Assign cells in reverse peeling order: the peeled cell of each key
        # is untouched by all later assignments, so the XOR equation holds.
        cells = np.zeros(self.num_cells, dtype=np.uint32)
        for i in range(n - 1, -1, -1):
            key_index = int(peeled_key[i])
            target = int(values[key_index])
            acc = 0
            for probe in range(PROBES):
                c = int(pos[key_index, probe])
                if c != peeled_cell[i]:
                    acc ^= int(cells[c])
            # A key probing its peeled cell several times XORs it that many
            # times; solve for the cell so the total equals the target.
            repeats = int((pos[key_index] == peeled_cell[i]).sum())
            if repeats % 2 == 0:
                return False  # degenerate; try another seed
            cells[peeled_cell[i]] = np.uint32(acc ^ target)
        self._cells = cells
        self._positions_seed = seed
        return True

    def lookup(self, key: Key) -> int:
        """XOR of the key's cells (arbitrary result for unknown keys)."""
        return int(self.lookup_batch([key])[0])

    def lookup_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> np.ndarray:
        """Vectorised lookup."""
        keys_arr = hashfamily.canonical_keys(keys)
        if keys_arr.size == 0:
            return np.zeros(0, dtype=np.uint32)
        pos = self._cell_positions(keys_arr, self._seed)
        out = np.zeros(len(keys_arr), dtype=np.uint32)
        for probe in range(PROBES):
            out ^= self._cells[pos[:, probe]]
        return out & np.uint32((1 << self.value_bits) - 1)

    def size_bits(self) -> int:
        """Cell table size: num_cells * value_bits."""
        return self.num_cells * self.value_bits

    def bits_per_key(self) -> float:
        """Measured space per key."""
        return self.size_bits() / max(1, self.num_keys)
