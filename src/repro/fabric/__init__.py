"""Fabric backend selection: crossbar vs fat-tree behind one protocol.

The paper's §3.1 interconnect argument assumes an ideal one-hop switch
(exactly one transit between any node pair, internal bandwidth R).  This
package names the surface the cluster actually relies on
(:class:`Fabric`), registers the concrete topologies — the flat crossbar
(:class:`repro.cluster.fabric.SwitchFabric`) and a two-layer leaf/spine
fat-tree with per-link capacities and deterministic ECMP
(:class:`repro.fabric.fattree.FatTreeFabric`, after *Automated Design of
Two-Layer Fat-Tree Networks*, arXiv:1301.6179) — and holds the
process-wide default that the CLI's ``--fabric`` flag and the
``REPRO_FABRIC_BACKEND`` environment variable select.

The registry deliberately mirrors :mod:`repro.core.separator`: a
process-wide default rather than a parameter threaded through every
constructor, explicit ``fabric=`` / ``fabric_backend=`` arguments on
``Cluster.build`` overriding it per call, and lazy backend imports so
crossbar-only workloads never pay for the fat-tree module.
"""

from __future__ import annotations

import os
from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.cluster.fabric import FabricLoss, FabricStats, Link

#: Names of the available fabric backends.
BACKENDS = ("crossbar", "fattree")

#: Environment variable consulted for the initial default backend.
BACKEND_ENV = "REPRO_FABRIC_BACKEND"


@runtime_checkable
class Fabric(Protocol):
    """The surface a fabric backend must provide.

    Extracted from the implicit :class:`~repro.cluster.fabric.SwitchFabric`
    contract the cluster, gateway and chaos harness already rely on:
    per-packet and batched delivery with latency modelling and
    :class:`~repro.cluster.fabric.FabricStats` accounting, the
    ``fault_hook`` transit-verdict surface, VLB indirect selection — plus
    the link-level surface the fat-tree work added: link enumeration and
    fail/degrade/heal for chaos, per-node ingress costs for the
    utilization-aware ingress policy, and a conservation check
    (:meth:`verify_accounting`) for the "no accounting leaks" gate.
    """

    #: Registry name of the backend ("crossbar", "fattree", ...).
    backend: str

    num_nodes: int
    transit_latency_us: float
    stats: FabricStats
    fault_hook: Optional[object]

    def deliver(self, src: int, dst: int, size: int = 64) -> float: ...

    def deliver_batch(
        self, srcs: np.ndarray, dsts: np.ndarray, size: int = 64
    ) -> np.ndarray: ...

    def pick_indirect(self, src: int, dst: int) -> int: ...

    def links(self) -> Tuple[Link, ...]: ...

    def pick_fault_link(
        self, rng: np.random.Generator
    ) -> Optional[Link]: ...

    def fail_link(self, link: Link) -> None: ...

    def degrade_link(self, link: Link, factor: float = 4.0) -> None: ...

    def heal_links(self) -> None: ...

    def has_link_faults(self) -> bool: ...

    def down_links(self) -> Tuple[Link, ...]: ...

    def ingress_costs(self) -> np.ndarray: ...

    def note_ingress(self, node: int) -> None: ...

    def verify_accounting(self) -> bool: ...

    def reset_stats(self) -> None: ...


_default_backend: Optional[str] = None


def _validate(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown fabric backend {backend!r}; "
            f"expected one of {', '.join(BACKENDS)}"
        )
    return backend


def default_backend() -> str:
    """The process-wide default backend (env override, else "crossbar")."""
    global _default_backend
    if _default_backend is None:
        _default_backend = _validate(
            os.environ.get(BACKEND_ENV, "crossbar").strip().lower()
            or "crossbar"
        )
    return _default_backend


def set_default_backend(backend: str) -> None:
    """Select the backend used when callers don't pass one explicitly."""
    global _default_backend
    _default_backend = _validate(backend)


def resolve_backend(backend: Optional[str] = None) -> str:
    """An explicit backend name, or the process default when ``None``."""
    if backend is None:
        return default_backend()
    return _validate(backend)


def backend_of(fabric) -> str:
    """Registry name of a fabric instance's backend."""
    return getattr(fabric, "backend", "crossbar")


def create(
    num_nodes: int,
    backend: Optional[str] = None,
    transit_latency_us: float = 0.6,
    seed: int = 0,
    **backend_options,
) -> Fabric:
    """Build a fabric on the chosen backend (front door for both).

    ``backend_options`` are passed through to the backend constructor —
    the fat-tree accepts ``num_leaves``, ``num_spines``,
    ``oversubscription``, ``window`` and friends; the crossbar accepts
    none.
    """
    backend = resolve_backend(backend)
    if backend == "fattree":
        from repro.fabric.fattree import FatTreeFabric

        return FatTreeFabric(
            num_nodes,
            transit_latency_us=transit_latency_us,
            seed=seed,
            **backend_options,
        )
    from repro.cluster.fabric import SwitchFabric

    if backend_options:
        unexpected = ", ".join(sorted(backend_options))
        raise TypeError(
            f"crossbar fabric accepts no topology options (got {unexpected})"
        )
    return SwitchFabric(
        num_nodes, transit_latency_us=transit_latency_us, seed=seed
    )


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "Fabric",
    "FabricLoss",
    "FabricStats",
    "Link",
    "backend_of",
    "create",
    "default_backend",
    "resolve_backend",
    "set_default_backend",
]
