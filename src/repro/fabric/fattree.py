"""Two-layer leaf/spine fat-tree fabric (arXiv:1301.6179).

The crossbar backend models §3.1's ideal: one switch transit between any
node pair.  Real clusters outgrow a single switch, and the standard
two-layer answer is a fat-tree: nodes attach to leaf switches, leaves
attach to every spine, and equal-cost multipath (ECMP) spreads
inter-leaf flows over the spines.  What the ideal hides — and this
backend models — is *structure*:

* **hop counts** — an intra-leaf transit crosses one switch, an
  inter-leaf transit crosses three (leaf, spine, leaf), so "exactly one
  crossing" becomes a measurable property of the topology rather than an
  assumption;
* **per-link capacity** — every directed link (node↔leaf edges,
  leaf↔spine trunks) has a packets-per-window capacity.  The
  *oversubscription ratio* is the classic fat-tree design parameter:
  attached edge bandwidth per leaf divided by the leaf's total uplink
  bandwidth (1:1 is a full bisection, 4:1 saves three quarters of the
  spine).  Crossings beyond a link's per-window capacity are delivered
  but pay a queueing penalty and are counted as ``capacity_exceeded`` —
  the congestion signal the benchmarks chart;
* **deterministic ECMP** — the spine for an inter-leaf transit is a pure
  hash of ``(src, dst)``, so runs are replayable and a flow's path is
  stable.  When a chaos fault downs a trunk the next hash slot takes
  over (counted as a reroute), which is exactly how switch ECMP tables
  fail over;
* **ingress steering** — :meth:`FatTreeFabric.ingress_costs` exposes
  per-node congestion (edge plus leaf-uplink occupancy) so the cluster's
  utilization-aware ingress policy can steer skewed traffic off hot leaf
  uplinks.

Accounting is conservation-checked: every delivered packet contributes
its hop count to ``switch_hops`` and one crossing per traversed link to
``link_crossings`` (``link_crossings == switch_hops + packets``, since a
path of ``h`` switches spans ``h + 1`` links); :meth:`verify_accounting`
is the chaos drill's "no accounting leaks" gate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.fabric import (
    DELAY,
    DELAY_FACTOR,
    DELIVER,
    DROP,
    DUPLICATE,
    FabricLoss,
    FabricStats,
    FaultHook,
    Link,
)

#: Mixing constants for the deterministic ECMP hash (Fibonacci/Murmur
#: multipliers; any fixed odd constants work, these match the repo's
#: seeded-stream idiom).
_ECMP_MULT_SRC = 0x9E3779B1
_ECMP_MULT_DST = 0x85EBCA77
_ECMP_MASK = 0xFFFFFFFF


class FatTreeFabric:
    """A two-layer leaf/spine fat-tree connecting ``num_nodes`` nodes.

    Args:
        num_nodes: attached node count.
        transit_latency_us: latency of one switch traversal; an
            inter-leaf path costs three of these, plus queueing.
        seed: randomness for VLB indirect-node selection (delivery and
            ECMP are deterministic and never consume it).
        num_leaves: leaf switch count; default ``ceil(sqrt(num_nodes))``
            (at least 2 once there are 2 nodes, so inter-leaf paths
            exist).  Nodes attach to leaves in contiguous blocks.
        num_spines: spine switch count; default half the leaves,
            minimum 2 (so a downed trunk always has an ECMP alternate).
        oversubscription: the leaf uplink design ratio — attached edge
            capacity per leaf over total uplink capacity (1.0 = full
            bisection, 2.0 = 2:1, ...).
        window: packets per accounting window; per-link occupancy (and
            with it queueing and ``capacity_exceeded``) resets every
            ``window`` delivered packets.
        edge_capacity: per-window capacity of one node↔leaf edge link;
            default gives each edge 2x its uniform-traffic share of the
            window.
        queue_penalty_us: latency added per over-capacity link crossing;
            defaults to one switch transit.
    """

    #: Registry name (see :mod:`repro.fabric`).
    backend = "fattree"

    def __init__(
        self,
        num_nodes: int,
        transit_latency_us: float = 0.6,
        seed: int = 0,
        num_leaves: Optional[int] = None,
        num_spines: Optional[int] = None,
        oversubscription: float = 1.0,
        window: int = 512,
        edge_capacity: Optional[int] = None,
        queue_penalty_us: Optional[float] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("fabric needs at least one node")
        if oversubscription <= 0:
            raise ValueError("oversubscription ratio must be positive")
        if window < 1:
            raise ValueError("accounting window must be at least 1 packet")
        self.num_nodes = num_nodes
        self.transit_latency_us = transit_latency_us
        if num_leaves is None:
            num_leaves = math.ceil(math.sqrt(num_nodes))
            if num_nodes >= 2:
                num_leaves = max(2, num_leaves)
        if not 1 <= num_leaves <= num_nodes:
            raise ValueError("need between 1 and num_nodes leaf switches")
        self.nodes_per_leaf = math.ceil(num_nodes / num_leaves)
        # Contiguous attachment can leave trailing leaves empty; drop them
        # so capacity math reflects the leaves that exist.
        self.num_leaves = math.ceil(num_nodes / self.nodes_per_leaf)
        if num_spines is None:
            num_spines = max(2, (self.num_leaves + 1) // 2)
        if num_spines < 1:
            raise ValueError("need at least one spine switch")
        self.num_spines = num_spines
        self.oversubscription = float(oversubscription)
        self.window = int(window)
        if edge_capacity is None:
            edge_capacity = max(4, math.ceil(2 * window / num_nodes))
        if edge_capacity < 1:
            raise ValueError("edge capacity must be at least 1")
        self.edge_capacity = int(edge_capacity)
        # The defining fat-tree relation: a leaf's uplink budget is its
        # attached edge budget divided by the oversubscription ratio,
        # split evenly over the spines.
        self.uplink_capacity = max(1, math.ceil(
            self.nodes_per_leaf * self.edge_capacity
            / (self.num_spines * self.oversubscription)
        ))
        self.queue_penalty_us = (
            transit_latency_us if queue_penalty_us is None
            else float(queue_penalty_us)
        )
        self._leaf_of = np.arange(num_nodes) // self.nodes_per_leaf
        self.stats = FabricStats()
        self._rng = np.random.default_rng(seed)
        #: Same per-transit verdict surface as the crossbar.
        self.fault_hook: Optional[FaultHook] = None
        self._down_links: set = set()
        self._degraded_links: Dict[Link, float] = {}
        self._window_counts: Dict[Link, int] = {}
        self._window_offered = 0
        self._pending_ingress = np.zeros(num_nodes, dtype=np.float64)
        self._pending_leaf = np.zeros(self.num_leaves, dtype=np.float64)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def leaf_of(self, node: int) -> int:
        """The leaf switch ``node`` attaches to."""
        self._check(node)
        return int(self._leaf_of[node])

    def hop_count(self, src: int, dst: int) -> int:
        """Switch traversals between two nodes on the healthy topology."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        return 1 if self._leaf_of[src] == self._leaf_of[dst] else 3

    def ecmp_spine(self, src: int, dst: int) -> int:
        """The deterministic preferred spine for an inter-leaf transit."""
        mixed = (
            (src * _ECMP_MULT_SRC) ^ (dst * _ECMP_MULT_DST)
        ) & _ECMP_MASK
        return int(mixed % self.num_spines)

    def links(self) -> Tuple[Link, ...]:
        """Every directed link, in deterministic order."""
        out: List[Link] = []
        for node in range(self.num_nodes):
            out.append(("up", node))
            out.append(("down", node))
        for leaf in range(self.num_leaves):
            for spine in range(self.num_spines):
                out.append(("uplink", leaf, spine))
                out.append(("downlink", spine, leaf))
        return tuple(out)

    def link_capacity(self, link: Link) -> int:
        """Per-window packet capacity of one directed link."""
        return (
            self.edge_capacity if link[0] in ("up", "down")
            else self.uplink_capacity
        )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def deliver(self, src: int, dst: int, size: int = 64) -> float:
        """Move one packet from ``src`` to ``dst``; returns transit latency.

        Delivery to self is free.  Inter-leaf transits take the
        deterministic ECMP spine; if a chaos fault downed a trunk on that
        path the next spine (in hash order) takes over and the transit is
        counted as a reroute.  Latency is hops x ``transit_latency_us``
        plus a queueing penalty per over-capacity link plus any degraded
        links' slow-down.

        Raises:
            FabricLoss: when an installed :attr:`fault_hook` drops the
                transit, an edge link on the only path is down, or every
                spine path between the two leaves is severed.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        verdict = DELIVER if self.fault_hook is None else self.fault_hook(
            src, dst, size
        )
        if verdict == DROP:
            self.stats.dropped += 1
            raise FabricLoss(src, dst)
        path, hops = self._route(src, dst)
        latency = self._traverse(path, hops, size)
        if verdict == DUPLICATE:
            self._traverse(path, hops, size)
            self.stats.duplicated += 1
            return latency
        if verdict == DELAY:
            self.stats.delayed += 1
            return latency * DELAY_FACTOR
        return latency

    def deliver_batch(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        size: int = 64,
    ) -> np.ndarray:
        """Move many packets; returns per-packet transit latencies.

        Exactly equivalent to calling :meth:`deliver` element-wise —
        queueing makes latency depend on per-window link occupancy, i.e.
        on delivery *order*, so the batch is processed in order rather
        than reduced the way the crossbar's lossless path is.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.shape != dsts.shape:
            raise ValueError("srcs and dsts must have equal length")
        if srcs.size == 0:
            return np.zeros(0, dtype=np.float64)
        if (
            srcs.min() < 0
            or dsts.min() < 0
            or srcs.max() >= self.num_nodes
            or dsts.max() >= self.num_nodes
        ):
            bad = srcs[(srcs < 0) | (srcs >= self.num_nodes)]
            node = int(bad[0]) if bad.size else int(
                dsts[(dsts < 0) | (dsts >= self.num_nodes)][0]
            )
            raise ValueError(f"node {node} not attached to this fabric")
        return np.asarray(
            [self.deliver(int(s), int(d), size) for s, d in zip(srcs, dsts)],
            dtype=np.float64,
        )

    def pick_indirect(self, src: int, dst: int) -> int:
        """Choose a VLB indirect node distinct from source and destination.

        Same degenerate-case contract as the crossbar: with fewer than
        three nodes the packet goes direct.
        """
        self._check(src)
        self._check(dst)
        candidates = [
            n for n in range(self.num_nodes) if n not in (src, dst)
        ]
        if not candidates:
            return dst
        return int(self._rng.choice(candidates))

    def _route(self, src: int, dst: int) -> Tuple[Tuple[Link, ...], int]:
        """The link path and switch hop count for one transit.

        Applies link faults: edge links have no alternate (loss); a
        downed trunk fails over to the next spine in hash order.
        """
        up: Link = ("up", src)
        down: Link = ("down", dst)
        if up in self._down_links or down in self._down_links:
            self.stats.dropped += 1
            raise FabricLoss(src, dst)
        leaf_src = int(self._leaf_of[src])
        leaf_dst = int(self._leaf_of[dst])
        if leaf_src == leaf_dst:
            return (up, down), 1
        preferred = self.ecmp_spine(src, dst)
        for offset in range(self.num_spines):
            spine = (preferred + offset) % self.num_spines
            uplink: Link = ("uplink", leaf_src, spine)
            downlink: Link = ("downlink", spine, leaf_dst)
            if uplink in self._down_links or downlink in self._down_links:
                continue
            if offset:
                self.stats.reroutes += 1
            return (up, uplink, downlink, down), 3
        self.stats.dropped += 1
        raise FabricLoss(src, dst)

    def _traverse(
        self, path: Tuple[Link, ...], hops: int, size: int
    ) -> float:
        """Account one packet crossing ``path``; returns its latency."""
        self._window_offered += 1
        if self._window_offered > self.window:
            self._window_counts.clear()
            self._pending_ingress[:] = 0.0
            self._pending_leaf[:] = 0.0
            self._window_offered = 1
        self.stats.packets += 1
        self.stats.bytes += size
        self.stats.switch_hops += hops
        latency = hops * self.transit_latency_us
        for link in path:
            self.stats.record_link(link)
            occupancy = self._window_counts.get(link, 0) + 1
            self._window_counts[link] = occupancy
            if occupancy > self.link_capacity(link):
                self.stats.capacity_exceeded += 1
                latency += self.queue_penalty_us
            factor = self._degraded_links.get(link)
            if factor is not None:
                self.stats.degraded += 1
                latency += self.transit_latency_us * (factor - 1.0)
        return latency

    # ------------------------------------------------------------------
    # Link-level faults (chaos: LINK_DOWN / LINK_DEGRADED / LINK_HEAL)
    # ------------------------------------------------------------------

    def pick_fault_link(self, rng: np.random.Generator) -> Optional[Link]:
        """A seeded victim among the spine-layer trunks.

        Trunks are the interesting victims — they have ECMP alternates,
        so downing one exercises the reroute path rather than just
        severing a node (edge-link loss is covered by targeted tests).
        Returns ``None`` on a single-leaf topology (no trunks carry
        traffic worth failing).
        """
        if self.num_leaves < 2:
            return None
        trunks: List[Link] = []
        for leaf in range(self.num_leaves):
            for spine in range(self.num_spines):
                trunks.append(("uplink", leaf, spine))
                trunks.append(("downlink", spine, leaf))
        return trunks[int(rng.integers(len(trunks)))]

    def fail_link(self, link: Link) -> None:
        """Sever one directed link (trunks fail over via ECMP)."""
        self._down_links.add(tuple(link))

    def degrade_link(self, link: Link, factor: float = DELAY_FACTOR) -> None:
        """Slow one directed link down by ``factor`` (lossless)."""
        if factor <= 0:
            raise ValueError("degrade factor must be positive")
        self._degraded_links[tuple(link)] = float(factor)

    def heal_links(self) -> None:
        """Restore every failed and degraded link."""
        self._down_links.clear()
        self._degraded_links.clear()

    def has_link_faults(self) -> bool:
        """Whether any link is currently down or degraded."""
        return bool(self._down_links or self._degraded_links)

    def down_links(self) -> Tuple[Link, ...]:
        """The currently severed links, in deterministic order."""
        return tuple(sorted(self._down_links))

    # ------------------------------------------------------------------
    # Ingress steering (utilization-aware policy support)
    # ------------------------------------------------------------------

    def ingress_costs(self) -> np.ndarray:
        """Per-node cost of accepting the next external packet.

        A packet ingressing at node ``i`` crosses ``i``'s edge uplink
        and, when its handler sits on another leaf, one of ``leaf(i)``'s
        spine trunks — so the cost is the current-window occupancy of
        those links, each normalised by its capacity, plus the projected
        load of picks already steered this window.  Leaves whose nodes
        mostly *receive* (a hot handler) show cool uplinks, so the
        argmin policy steers ingress toward them and skewed traffic
        terminates intra-leaf instead of crossing the spine.
        """
        costs = np.empty(self.num_nodes, dtype=np.float64)
        uplink_budget = float(self.num_spines * self.uplink_capacity)
        leaf_uplink = np.zeros(self.num_leaves, dtype=np.float64)
        for (kind, *rest), count in self._window_counts.items():
            if kind == "uplink":
                leaf_uplink[rest[0]] += count
        for node in range(self.num_nodes):
            if ("up", node) in self._down_links:
                costs[node] = np.inf
                continue
            leaf = int(self._leaf_of[node])
            edge = (
                self._window_counts.get(("up", node), 0)
                + self._pending_ingress[node]
            )
            trunk = leaf_uplink[leaf] + self._pending_leaf[leaf]
            costs[node] = (
                edge / self.edge_capacity + trunk / uplink_budget
            )
        return costs

    def note_ingress(self, node: int) -> None:
        """Project one ingress pick onto ``node`` (policy feedback)."""
        self._check(node)
        self._pending_ingress[node] += 1.0
        self._pending_leaf[int(self._leaf_of[node])] += 1.0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def verify_accounting(self) -> bool:
        """Check the fat-tree's conservation invariants.

        A path of ``h`` switch hops spans ``h + 1`` links, so summed over
        every recorded packet ``link_crossings == switch_hops + packets``;
        and the per-link map must sum to the crossing total.  This is the
        chaos drill's "no capacity accounting leaks" gate.
        """
        s = self.stats
        return (
            sum(s.per_link_packets.values()) == s.link_crossings
            and s.link_crossings == s.switch_hops + s.packets
        )

    def reset_stats(self) -> None:
        """Zero the accounting and the window (fault state is kept)."""
        self.stats = FabricStats()
        self._window_counts.clear()
        self._window_offered = 0
        self._pending_ingress[:] = 0.0
        self._pending_leaf[:] = 0.0

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} not attached to this fabric")

    def __repr__(self) -> str:
        return (
            f"FatTreeFabric(nodes={self.num_nodes}, "
            f"leaves={self.num_leaves}, spines={self.num_spines}, "
            f"oversubscription={self.oversubscription:g})"
        )
