"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``   — build a GPT from a ``key,node`` CSV and write a snapshot.
* ``lookup``  — query keys against a snapshot.
* ``scale``   — print the Figure 11 capacity table for given parameters.
* ``gateway`` — run a quick EPC gateway simulation and print its report.
* ``info``    — describe a snapshot (config, size, bits/key).
* ``stats``   — run an instrumented gateway trial and print its metrics.
* ``chaos``   — run seeded fault-injection episodes with differential
  oracle checking (exit 1 if any invariant was violated).
* ``bench``   — the performance lab (:mod:`repro.perflab`):
  ``bench run`` executes a suite and writes ``BENCH_<gitsha>.json``,
  ``bench compare`` gates one artifact against another with noise-aware
  thresholds (exit 1 on a confirmed regression), ``bench list`` shows
  the registered benchmarks.
* ``serve`` / ``controller`` / ``runtime-demo`` — the multi-process
  socket runtime (:mod:`repro.runtime`): ``serve`` runs one node
  daemon, ``controller`` drives the differential workload against
  already-running daemons, ``runtime-demo`` spawns a local cluster,
  runs the workload (optionally SIGKILLing or fencing a daemon
  mid-run) and prints the differential report (exit 1 on any
  divergence).  With ``--replicas N`` the controller itself is
  replicated: N controller processes elect a leaseholder, the drill
  SIGKILLs the leader ``--kill-leader`` times mid-storm, and the
  report additionally gates on re-election and zero lost committed
  verbs.
* ``scale-smoke`` — the scale-tier drill
  (:mod:`repro.runtime.scalesmoke`): publish one synthesized
  million-key GPT segment and attach it from child processes, then run
  a live kill→repair→rejoin cycle that must converge by shared-memory
  reference and delta-log replay alone (exit 1 if any hard gate —
  divergence, wire snapshots, leaked segments, cold-start speedup —
  fails).
* ``serve-api`` / ``ctl`` — the operator control plane
  (:mod:`repro.ops`): ``serve-api`` launches a managed cluster behind
  the REST API daemon (``--replicas N`` replicates the control plane;
  followers answer mutations with a 307 to the leader), ``ctl`` is
  the HTTP client driving it (drain, join, kill, fence, traffic,
  audit, metrics, status, fail-leader, ...).

Machine-readable output is uniform: every command that can emit JSON
takes ``--json`` and routes through one :func:`emit` helper (sorted
keys, two-space indent), so the same state always renders the same
bytes.  Exit codes follow one convention everywhere: **0** success,
**1** a check or invariant failed (divergence, oracle violation,
refused operation), **2** usage or I/O error.  The CLI is deliberately
thin: every command is a few calls into the library, doubling as usage
documentation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro import fabric as fabric_registry
from repro.cluster.architectures import Architecture
from repro.cluster.cluster import INGRESS_POLICIES
from repro.core import serialize, shm
from repro.core import separator as separator_registry
from repro.core.hashfamily import canonical_key
from repro.gpt.gpt import GlobalPartitionTable
from repro.model.scaling import peak_scaling_factor, scaling_curve
from repro.obs import MetricsRegistry
from repro.utils.env import environment_fingerprint

#: Exit codes, one convention for every command.
EXIT_OK = 0
EXIT_CHECK_FAILED = 1
EXIT_USAGE = 2


def emit(doc: object, as_json: bool) -> bool:
    """The one JSON emitter every ``--json`` flag routes through.

    Prints ``doc`` as canonical JSON (sorted keys, two-space indent)
    and returns True when ``as_json`` is set; returns False without
    printing otherwise, so callers fall through to their text
    rendering::

        if not emit(report, args.json):
            print(f"nodes: {report['nodes']}")
    """
    if as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return True
    return False


def _cmd_build(args: argparse.Namespace) -> int:
    keys: List[int] = []
    nodes: List[int] = []
    with open(args.input, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                key_text, node_text = line.split(",")
                keys.append(canonical_key(key_text.strip()))
                nodes.append(int(node_text))
            except ValueError:
                print(f"{args.input}:{line_no}: expected 'key,node'",
                      file=sys.stderr)
                return 2
    if not keys:
        print("no entries in input", file=sys.stderr)
        return 2
    gpt, stats = GlobalPartitionTable.build(
        np.asarray(keys, dtype=np.uint64), nodes, args.nodes
    )
    with open(args.output, "wb") as out:
        serialize.dump(gpt.setsep, out)
    print(f"built GPT ({gpt.backend}): {stats.num_keys:,} keys -> "
          f"{args.nodes} nodes, "
          f"{gpt.bits_per_key(stats.num_keys):.2f} bits/key, "
          f"fallback {stats.fallback_ratio * 100:.4f}%")
    print(f"snapshot written to {args.output}")
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    with open(args.snapshot, "rb") as handle:
        setsep = serialize.load(handle)
    gpt = GlobalPartitionTable(args.nodes, setsep)
    for key_text in args.keys:
        node = gpt.lookup(key_text)
        print(f"{key_text} -> node {node}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.snapshot, "rb") as handle:
        setsep = serialize.load(handle)
    backend = separator_registry.backend_of(setsep)
    fallback = getattr(setsep, "fallback", ())
    capacity = setsep.num_blocks * 1024
    if emit({
        "backend": backend,
        "config": setsep.params.name,
        "value_bits": setsep.params.value_bits,
        "blocks": setsep.num_blocks,
        "groups": setsep.num_groups,
        "buckets": setsep.num_buckets,
        "size_bytes": setsep.size_bytes(),
        "fallback_entries": len(fallback),
        "capacity_keys": capacity,
        "bits_per_key_at_capacity": setsep.size_bits() / capacity,
        "shm_available": shm.available(),
        "environment": environment_fingerprint(),
    }, args.json):
        return EXIT_OK
    print(f"backend      : {backend}")
    print(f"config       : {setsep.params.name}, "
          f"{setsep.params.value_bits}-bit values")
    print(f"blocks       : {setsep.num_blocks} "
          f"({setsep.num_groups} groups, {setsep.num_buckets} buckets)")
    print(f"size         : {setsep.size_bytes():,} bytes")
    print(f"fallback     : {len(fallback)} entries")
    print(f"sized for    : ~{capacity:,} keys "
          f"({setsep.size_bits() / capacity:.2f} bits/key at capacity)")
    print(f"shm          : {'available' if shm.available() else 'unavailable'}"
          " (shared-memory snapshot segments)")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    memory_bits = args.memory_mib * 1024 * 1024 * 8
    if args.json:
        rows = [
            {"nodes": n, "full_duplication": full,
             "hash_partition": hashed, "scalebricks": sb}
            for n, full, hashed, sb in scaling_curve(
                memory_bits, args.max_nodes, args.entry_bits
            )
        ]
        peak_n, ratio = peak_scaling_factor(args.max_nodes, args.entry_bits)
        emit({
            "memory_mib": args.memory_mib,
            "entry_bits": args.entry_bits,
            "curve": rows,
            "peak_advantage": {"nodes": peak_n, "ratio": ratio},
        }, True)
        return EXIT_OK
    print(f"Total FIB entries, {args.memory_mib} MiB/node, "
          f"{args.entry_bits}-bit entries")
    print(f"{'nodes':>6} {'full dup':>12} {'hash part':>12} {'ScaleBricks':>12}")
    for n, full, hashed, sb in scaling_curve(
        memory_bits, args.max_nodes, args.entry_bits
    ):
        print(f"{n:>6} {full:>12,.0f} {hashed:>12,.0f} {sb:>12,.0f}")
    peak_n, ratio = peak_scaling_factor(args.max_nodes, args.entry_bits)
    print(f"peak ScaleBricks advantage: {ratio:.2f}x at n={peak_n}")
    return 0


def _run_gateway_trial(args: argparse.Namespace):
    """Stand up a gateway, push one packet stream, return what happened."""
    from repro.epc import EpcGateway, FlowGenerator
    from repro.epc.packets import parse_ip
    from repro.epc.traffic import run_downstream_trial

    architecture = Architecture(args.architecture)
    gen = FlowGenerator(seed=args.seed)
    gateway = EpcGateway(
        architecture, args.nodes, parse_ip("192.0.2.1"),
        fabric_backend=getattr(args, "fabric", None),
        ingress_policy=getattr(args, "ingress_policy", "random"),
    )
    flows = gen.populate(gateway, args.flows)
    gateway.start()
    frames = gen.packet_stream(flows, args.packets, zipf_s=args.zipf)
    stats = run_downstream_trial(gateway, frames)
    return architecture, gateway, stats


def _cmd_gateway(args: argparse.Namespace) -> int:
    architecture, gateway, stats = _run_gateway_trial(args)
    node0 = gateway.memory_report()[0]
    print(f"architecture : {architecture.value} ({args.nodes} nodes)")
    print(f"bearers      : {args.flows:,}")
    print(f"delivered    : {stats.delivered}/{stats.offered} "
          f"(loss {stats.loss_rate * 100:.2f}%)")
    print(f"mean hops    : {stats.mean_hops:.2f}")
    print(f"node 0 state : FIB {node0['fib_bytes']:,} B"
          + (f", GPT {node0['gpt_bytes']:,} B" if node0["gpt_bytes"] else ""))
    print(f"sim rate     : {stats.software_pps:,.0f} packets/s")
    if args.metrics_json:
        try:
            with open(args.metrics_json, "w", encoding="utf-8") as out:
                out.write(gateway.registry.to_json(indent=2))
        except OSError as exc:
            print(f"cannot write metrics to {args.metrics_json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"metrics written to {args.metrics_json}")
    return 0


def _print_metrics_text(registry: MetricsRegistry) -> None:
    """Human-readable registry snapshot: counters, gauges, histograms."""
    snap = registry.snapshot()
    if snap["counters"]:
        print("counters:")
        for name in sorted(snap["counters"]):
            print(f"  {name:<44} {snap['counters'][name]:>12,}")
    if snap["gauges"]:
        print("gauges:")
        for name in sorted(snap["gauges"]):
            print(f"  {name:<44} {snap['gauges'][name]:>12,.0f}")
    if snap["histograms"]:
        print("histograms:")
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            if not h["count"]:
                continue
            mean = h["sum"] / h["count"]
            print(f"  {name:<44} n={h['count']:<9,} mean={mean:<10.3f} "
                  f"min={h['min']:<10.3f} max={h['max']:<10.3f}")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import DEFAULT_FAULT_KINDS, LINK_FAULT_KINDS
    from repro.sim.soak import SoakRunner

    kinds = None
    if args.link_faults:
        kinds = DEFAULT_FAULT_KINDS + LINK_FAULT_KINDS
    runner = SoakRunner(
        seed=args.seed,
        episodes=args.episodes,
        architecture=Architecture(args.architecture),
        num_nodes=args.nodes,
        flows=args.flows,
        steps=args.steps,
        packets_per_burst=args.packets,
        kinds=kinds,
        fabric_backend=getattr(args, "fabric", None),
    )
    report = runner.run()
    if not emit(report.to_dict(), args.json):
        print(f"architecture : {report.architecture} "
              f"({report.num_nodes} nodes)")
        print(f"episodes     : {len(report.episodes)} "
              f"(seed {report.seed}, {args.steps} faults each)")
        print(f"fault kinds  : {', '.join(report.fault_kinds)}")
        print(f"checks       : {report.total_checks:,}")
        print(f"violations   : {report.total_violations}")
        for episode in report.episodes:
            for violation in episode.violations:
                print(f"  episode {episode.episode} (seed {episode.seed}) "
                      f"step {violation['step']}: {violation['invariant']} "
                      f"key={violation['key']}: {violation['detail']}")
        print("verdict      : " + ("OK" if report.ok else "VIOLATED"))
    return EXIT_OK if report.ok else EXIT_CHECK_FAILED


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro import perflab

    try:
        perflab.discover()
    except perflab.DiscoveryError as exc:
        print(f"bench run: {exc}", file=sys.stderr)
        return 2
    # Progress goes to stderr so --json output on stdout stays parseable.
    artifact = perflab.run_suite(
        suite=args.suite,
        scale=args.scale,
        repeats=args.repeats,
        name_filter=args.filter,
        emit=lambda line: print(line, file=sys.stderr),
    )
    if not artifact.results:
        print("bench run: no benchmarks matched", file=sys.stderr)
        return 2
    path = perflab.write_artifact(artifact, args.out)
    if not emit(artifact.to_dict(), args.json):
        timed = [r for r in artifact.results if r.best is not None]
        print(f"suite {args.suite} (scale {artifact.scale}): "
              f"{len(artifact.results)} benchmarks, {len(timed)} timed")
        for result in sorted(artifact.results, key=lambda r: r.name):
            best = (f"{result.best * 1e3:10.2f}ms"
                    if result.best is not None else f"{'-':>12}")
            print(f"  {result.name:<44} {best}")
    print(f"artifact written to {path}", file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro import perflab
    from repro.utils.env import git_sha

    try:
        baseline_path = perflab.select_baseline(
            args.baseline,
            current_sha=git_sha(),
            warn=lambda line: print(f"bench compare: {line}", file=sys.stderr),
        )
        baseline = perflab.load_artifact(baseline_path)
        current = perflab.load_artifact(args.current)
        report = perflab.compare_artifacts(
            baseline,
            current,
            fail_band=args.fail_band,
            warn_band=args.warn_band,
            mad_k=args.mad_k,
        )
    except (perflab.ArtifactError, ValueError) as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    if not emit(report.to_dict(), args.json):
        print(report.table())
    if report.failures and not args.warn_only:
        return EXIT_CHECK_FAILED
    return EXIT_OK


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro import perflab

    try:
        perflab.discover()
    except perflab.DiscoveryError as exc:
        print(f"bench list: {exc}", file=sys.stderr)
        return 2
    specs = perflab.specs_for_suite(args.suite)
    if emit(
        {"suite": args.suite, "benchmarks": [s.to_row() for s in specs]},
        args.json,
    ):
        return EXIT_OK
    print(f"{'name':<44} {'figure':<14} {'suites':<12} module")
    for spec in specs:
        print(f"{spec.name:<44} {spec.figure:<14} "
              f"{','.join(spec.suites):<12} {spec.module}")
    print(f"{len(specs)} benchmarks registered")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    _architecture, gateway, _stats = _run_gateway_trial(args)
    gpt = next(
        (n.gpt for n in gateway.cluster.nodes if n.gpt is not None), None
    )
    gateway.cluster.sync_fabric_gauges()
    doc = gateway.registry.snapshot()
    doc["gpt_backend"] = gpt.backend if gpt is not None else None
    doc["fabric_backend"] = fabric_registry.backend_of(
        gateway.cluster.fabric
    )
    if args.hotcache and gpt is not None:
        # Replay the trial's key population through a hot-key cache and
        # report observed vs IRM-predicted hit rate for this capacity.
        from repro.epc.traffic import FlowGenerator
        from repro.model import cache as cache_model

        cache = gpt.attach_cache(args.hotcache)
        generator = FlowGenerator(seed=args.seed)
        keys = np.array(
            [f.key() for f in generator.flows(args.flows)], dtype=np.uint64
        )
        for round_no in range(8):
            sample = keys[cache_model.zipf_sample(
                len(keys), args.packets, s=args.zipf,
                seed=args.seed + round_no,
            )]
            gpt.lookup_batch(sample)
        doc["hotcache"] = cache.stats()
        doc["hotcache"]["predicted_hit_rate"] = (
            cache_model.direct_mapped_hit_rate(
                cache_model.zipf_probabilities(len(keys), s=args.zipf),
                cache.capacity,
            )
        )
        gpt.detach_cache()
    if not emit(doc, args.json):
        if doc["gpt_backend"] is not None:
            print(f"gpt backend  : {doc['gpt_backend']}")
        print(f"fabric       : {doc['fabric_backend']}")
        if "hotcache" in doc:
            hc = doc["hotcache"]
            print(f"hotcache     : {hc['hits']}/{hc['hits'] + hc['misses']} "
                  f"hits ({hc['hit_rate']:.3f} observed, "
                  f"{hc['predicted_hit_rate']:.3f} predicted)")
        _print_metrics_text(gateway.registry)
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runtime.daemon import serve

    def announce(port: int) -> None:
        print(f"listening on {args.host}:{port}", flush=True)

    serve(host=args.host, port=args.port, ready=announce)
    return 0


def _parse_addresses(spec: str) -> List[tuple]:
    addresses = []
    for part in spec.split(","):
        host, _, port = part.strip().rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"bad address {part!r}; expected host:port")
        addresses.append((host, int(port)))
    return addresses


def _finish_runtime_report(report: dict, as_json: bool) -> int:
    if not emit(report, as_json):
        differential = report["differential"]
        print(f"nodes={report['nodes']} seed={report['seed']}")
        print(
            f"frames={differential['frames']} "
            f"delivered={differential['delivered']} "
            f"divergences={differential['divergences']}"
        )
        print(
            f"byte_identical={differential['byte_identical']} "
            f"charging_identical={differential['charging_identical']} "
            f"gpt_replicas_identical={differential['gpt_replicas_identical']}"
        )
        liveness = report["liveness"]
        if liveness["killed_node"] is not None:
            print(
                f"killed node {liveness['killed_node']}: detected in "
                f"{liveness['detection_polls']} polls, recovered "
                f"{liveness['recovered_flows']} flows"
            )
        if liveness.get("fenced_node") is not None:
            print(
                f"fenced node {liveness['fenced_node']} "
                f"(was {liveness.get('state_before_fence', '?')}): "
                f"recovered {liveness['recovered_flows']} flows"
            )
        if "leaked_processes" in report:
            print(f"leaked_processes={report['leaked_processes']}")
        print("ok" if report["ok"] else "DIVERGED")
    return EXIT_OK if report["ok"] else EXIT_CHECK_FAILED


def _cmd_controller(args: argparse.Namespace) -> int:
    from repro.runtime.launcher import run_workload

    addresses = _parse_addresses(args.connect)
    report = run_workload(
        addresses,
        len(addresses),
        seed=args.seed,
        flows=args.flows,
        packets=args.packets,
        updates=args.updates,
        miss_threshold=args.miss_threshold,
        heartbeat_interval=args.heartbeat_interval,
    )
    return _finish_runtime_report(report, args.json)


def _cmd_runtime_demo(args: argparse.Namespace) -> int:
    if args.replicas:
        return _cmd_replicated_demo(args)
    from repro.runtime.launcher import run_demo

    report = run_demo(
        num_nodes=args.nodes,
        seed=args.seed,
        flows=args.flows,
        packets=args.packets,
        updates=args.updates,
        kill_node=args.kill_node,
        fence_node=args.fence_node,
        miss_threshold=args.miss_threshold,
        heartbeat_interval=args.heartbeat_interval,
        use_shm=args.shm,
    )
    if report["leaked_processes"]:
        report["ok"] = False
    if report.get("leaked_shm_segments"):
        report["ok"] = False
    return _finish_runtime_report(report, args.json)


def _cmd_scale_smoke(args: argparse.Namespace) -> int:
    from repro.runtime.scalesmoke import run_scale_smoke

    report = run_scale_smoke(
        keys=args.keys,
        attachers=args.attachers,
        nodes=args.nodes,
        flows=args.flows,
        updates=args.updates,
        seed=args.seed,
    )
    if not emit(report, args.json):
        if report.get("skipped"):
            print(f"skipped: {report['skipped']}")
        else:
            sharing = report["segment_sharing"]
            print(f"segment      : {sharing['payload_bytes']:,} bytes, "
                  f"{len(sharing['attachers'])} attachers")
            print(f"cold start   : attach {sharing['attach_ms']:.3f} ms vs "
                  f"wire load {sharing['wire_load_ms']:.3f} ms "
                  f"({sharing['cold_start_speedup']:.1f}x)")
            drill = report["rejoin_drill"]
            print(f"rejoin       : {drill['rejoin']['detail']['transport']} "
                  f"transport, "
                  f"{drill['deltalog_records_at_rejoin']} delta records, "
                  f"{drill['post_rejoin_divergences']} divergences")
            for gate, passed in report["gates"].items():
                print(f"gate {'PASS' if passed else 'FAIL'}    : {gate}")
    return EXIT_OK if report["ok"] else EXIT_CHECK_FAILED


def _cmd_replicated_demo(args: argparse.Namespace) -> int:
    """``runtime-demo --replicas N``: the leader-SIGKILL failover drill."""
    from repro.runtime.replicated import run_replicated_workload

    report = run_replicated_workload(
        num_nodes=args.nodes,
        replicas=args.replicas,
        seed=args.seed,
        flows=args.flows,
        packets=args.packets,
        updates=args.updates,
        kill_leader=args.kill_leader,
    )
    if not emit(report, args.json):
        deterministic = report["deterministic"]
        incidental = report["incidental"]
        traffic = deterministic["traffic"]
        print(
            f"nodes={report['config']['nodes']} "
            f"replicas={report['config']['replicas']} "
            f"seed={report['config']['seed']}"
        )
        print(
            f"frames={traffic['frames']} delivered={traffic['delivered']} "
            f"divergences={traffic['divergences']} "
            f"byte_identical={traffic['byte_identical']}"
        )
        print(
            f"leader kills={len(incidental['killed_replicas'])} "
            f"(replicas {incidental['killed_replicas']}), terms "
            f"{incidental['terms']}, failover sweeps "
            f"{incidental['failover_sweeps']}"
        )
        print(
            f"lost_committed_verbs={deterministic['lost_committed_verbs']} "
            f"logs_identical={deterministic['replica_logs_identical']} "
            f"shadows_identical={deterministic['replica_shadows_identical']}"
        )
        print(f"leaked_processes={report['leaked_processes']}")
        print("ok" if report["ok"] else "DIVERGED")
    return EXIT_OK if report["ok"] else EXIT_CHECK_FAILED


def _cmd_serve_api(args: argparse.Namespace) -> int:
    from repro.ops import ClusterOps, OpsApiServer

    ops = ClusterOps.launch(
        num_nodes=args.nodes,
        seed=args.seed,
        flows=args.flows,
        miss_threshold=args.miss_threshold,
        fence_after=args.fence_after,
        ping_timeout=args.ping_timeout,
        replicas=args.replicas,
    )
    replica = 0 if args.replicas else None
    server = OpsApiServer(
        ops, host=args.host, port=args.port, stop_on_shutdown=True,
        replica=replica,
    )
    # In replicated mode every other replica gets its own API endpoint
    # (ephemeral port) so ``repro ctl`` works against any of them — a
    # follower answers mutations with a 307 to the leader.
    followers = [
        OpsApiServer(ops, host=args.host, replica=r).start_background()
        for r in range(1, args.replicas)
    ]
    print(
        f"operator API listening on {server.host}:{server.port} "
        f"({args.nodes} nodes, seed {args.seed})",
        flush=True,
    )
    for follower in followers:
        print(
            f"replica {follower.replica} API on "
            f"{follower.host}:{follower.port}",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.httpd.server_close()
        for follower in followers:
            follower.shutdown()
        ops.close()
    return EXIT_OK


def _render_ctl_text(doc: object) -> None:
    """Flat text rendering for ``repro ctl`` (non ``--json``)."""
    if isinstance(doc, list):
        for item in doc:
            if isinstance(item, dict):
                print(" ".join(
                    f"{key}={item[key]}" for key in sorted(item)
                ))
            else:
                print(item)
        return
    if isinstance(doc, dict):
        for key in sorted(doc):
            value = doc[key]
            if isinstance(value, (dict, list)):
                value = json.dumps(value, sort_keys=True)
            print(f"{key:<20} {value}")
        return
    print(doc)


def _cmd_ctl(args: argparse.Namespace) -> int:
    from repro.ops import OpsApiError, OpsClient

    client = OpsClient(args.host, args.port, timeout=args.timeout)
    verb = args.ctl_verb
    try:
        if verb == "cluster":
            doc = client.cluster()
        elif verb == "nodes":
            doc = client.nodes()
        elif verb == "node":
            doc = client.node(args.node)
        elif verb == "flow":
            doc = client.flow(args.teid)
        elif verb == "metrics":
            page = client.metrics()
            print(page, end="" if page.endswith("\n") else "\n")
            return EXIT_OK
        elif verb == "audit":
            doc = client.audit()
        elif verb in (
            "drain", "join", "kill", "fence", "suspend", "resume", "repair",
        ):
            doc = getattr(client, verb)(args.node)
        elif verb == "updates":
            doc = client.updates(
                connects=args.connects,
                rehomes=args.rehomes,
                disconnects=args.disconnects,
            )
        elif verb == "traffic":
            doc = client.traffic(packets=args.packets)
        elif verb == "poll":
            doc = client.poll(rounds=args.rounds)
        elif verb == "status":
            doc = client.replication()
        elif verb == "committed":
            doc = client.committed_ops()
        elif verb == "fail-leader":
            doc = client.fail_leader()
        elif verb == "shutdown":
            doc = client.shutdown()
        else:  # pragma: no cover - argparse enforces choices
            print(f"ctl: unknown verb {verb}", file=sys.stderr)
            return EXIT_USAGE
    except OpsApiError as exc:
        print(f"ctl {verb}: {exc.message}", file=sys.stderr)
        return EXIT_CHECK_FAILED
    except OSError as exc:
        print(
            f"ctl {verb}: cannot reach {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if not emit(doc, args.json):
        _render_ctl_text(doc)
    return EXIT_OK


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=list(separator_registry.BACKENDS), default=None,
        help="GPT separator backend (default: $REPRO_GPT_BACKEND or setsep)",
    )


def _add_fabric_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fabric", choices=list(fabric_registry.BACKENDS), default=None,
        help="fabric topology backend "
             "(default: $REPRO_FABRIC_BACKEND or crossbar)",
    )


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    _add_backend_argument(parser)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--flows", type=int, default=2000,
                        help="initial bearer population")
    parser.add_argument("--packets", type=int, default=4000,
                        help="routed frames across the two traffic phases")
    parser.add_argument("--updates", type=int, default=1000,
                        help="RIB operations in the update storm")
    parser.add_argument("--miss-threshold", type=int, default=3,
                        help="consecutive heartbeat misses declaring death")
    parser.add_argument("--heartbeat-interval", type=float, default=0.05)
    parser.add_argument("--json", action="store_true")


def make_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ScaleBricks / SetSep reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a GPT snapshot from CSV")
    build.add_argument("input", help="CSV of key,node lines")
    build.add_argument("output", help="snapshot file to write")
    build.add_argument("--nodes", type=int, default=4)
    _add_backend_argument(build)
    build.set_defaults(func=_cmd_build)

    lookup = sub.add_parser("lookup", help="query keys against a snapshot")
    lookup.add_argument("snapshot")
    lookup.add_argument("keys", nargs="+")
    lookup.add_argument("--nodes", type=int, default=4)
    lookup.set_defaults(func=_cmd_lookup)

    info = sub.add_parser("info", help="describe a snapshot")
    info.add_argument("snapshot")
    info.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON")
    info.set_defaults(func=_cmd_info)

    scale = sub.add_parser("scale", help="print the Figure 11 table")
    scale.add_argument("--memory-mib", type=int, default=16)
    scale.add_argument("--entry-bits", type=int, default=64)
    scale.add_argument("--max-nodes", type=int, default=32)
    scale.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    scale.set_defaults(func=_cmd_scale)

    def add_trial_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--architecture",
            choices=[a.value for a in Architecture],
            default=Architecture.SCALEBRICKS.value,
        )
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--flows", type=int, default=2_000)
        p.add_argument("--packets", type=int, default=1_000)
        p.add_argument("--zipf", type=float, default=0.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--ingress-policy", choices=list(INGRESS_POLICIES),
            default="random",
            help="how the cluster picks each packet's ingress node",
        )
        _add_backend_argument(p)
        _add_fabric_argument(p)

    gateway = sub.add_parser("gateway", help="run an EPC simulation")
    add_trial_args(gateway)
    gateway.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write the gateway's metrics registry snapshot to PATH",
    )
    gateway.set_defaults(func=_cmd_gateway)

    stats = sub.add_parser(
        "stats",
        help="run an instrumented gateway trial and print its metrics",
    )
    add_trial_args(stats)
    stats.add_argument("--hotcache", type=int, default=0, metavar="SLOTS",
                       help="replay the trial keys through a hot-key "
                            "cache of this capacity and report observed "
                            "vs model-predicted hit rate (0 = off)")
    stats.add_argument("--json", action="store_true",
                       help="emit the raw registry snapshot as JSON")
    stats.set_defaults(func=_cmd_stats)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection episodes with oracle checking",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--episodes", type=int, default=5)
    chaos.add_argument(
        "--architecture",
        choices=[a.value for a in Architecture],
        default=Architecture.SCALEBRICKS.value,
    )
    chaos.add_argument("--nodes", type=int, default=4)
    chaos.add_argument("--flows", type=int, default=32,
                       help="initial bearer population per episode")
    chaos.add_argument("--steps", type=int, default=8,
                       help="fault events per episode")
    chaos.add_argument("--packets", type=int, default=12,
                       help="differential packets per traffic burst")
    chaos.add_argument("--link-faults", action="store_true",
                       help="mix LINK_DOWN/LINK_DEGRADED (with their "
                            "paired LINK_HEAL) into the fault pool")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full soak report as JSON")
    _add_backend_argument(chaos)
    _add_fabric_argument(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="the performance lab: run suites, compare artifacts",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run a suite and write BENCH_<gitsha>.json"
    )
    bench_run.add_argument(
        "--suite", choices=["smoke", "full", "all"], default="smoke"
    )
    bench_run.add_argument(
        "--scale", type=int, default=1,
        help="workload multiplier (REPRO_BENCH_SCALE equivalent)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=None,
        help="override every benchmark's min-of-K repeat count",
    )
    bench_run.add_argument(
        "--filter", default=None,
        help="only run benchmarks whose name matches this pattern",
    )
    bench_run.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the BENCH_<gitsha>.json artifact",
    )
    bench_run.add_argument("--json", action="store_true",
                           help="print the full artifact to stdout")
    _add_backend_argument(bench_run)
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare",
        help="gate one artifact against a baseline (exit 1 on regression)",
    )
    bench_compare.add_argument(
        "baseline", nargs="+",
        help="baseline BENCH_*.json candidates (a glob is fine; the one "
             "matching the current git sha wins, else newest by mtime)",
    )
    bench_compare.add_argument("current", help="current BENCH_*.json")
    bench_compare.add_argument("--fail-band", type=float, default=0.25,
                               help="relative slowdown that fails the gate")
    bench_compare.add_argument("--warn-band", type=float, default=0.10,
                               help="relative slowdown that warns")
    bench_compare.add_argument("--mad-k", type=float, default=4.0,
                               help="noise multiplier on the MAD sigma")
    bench_compare.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    bench_compare.add_argument("--json", action="store_true",
                               help="emit the machine verdict as JSON")
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_list = bench_sub.add_parser(
        "list", help="list registered benchmarks"
    )
    bench_list.add_argument(
        "--suite", choices=["smoke", "full", "all"], default="all"
    )
    bench_list.add_argument("--json", action="store_true",
                            help="emit the listing as JSON")
    bench_list.set_defaults(func=_cmd_bench_list)

    serve = sub.add_parser(
        "serve", help="run one node daemon of the socket runtime"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks an ephemeral port)")
    serve.set_defaults(func=_cmd_serve)

    controller = sub.add_parser(
        "controller",
        help="drive the differential workload against running daemons",
    )
    controller.add_argument(
        "--connect", required=True,
        help="comma-separated daemon addresses, host:port,... "
             "(list index = node id)",
    )
    _add_workload_arguments(controller)
    controller.set_defaults(func=_cmd_controller)

    demo = sub.add_parser(
        "runtime-demo",
        help="spawn a local multi-process cluster, run the differential "
             "workload, print the report (exit 1 on any divergence)",
    )
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument("--kill-node", type=int, default=None,
                      help="SIGKILL this daemon mid-run (§7 failure drill)")
    demo.add_argument("--fence-node", type=int, default=None,
                      help="SIGSTOP this daemon mid-run, then fence it "
                           "once SUSPECT (grey-failure drill)")
    demo.add_argument("--replicas", type=int, default=0,
                      help="run N replicated controller processes with "
                           "lease-based leader election (0 = single "
                           "controller)")
    demo.add_argument("--kill-leader", type=int, default=2,
                      help="times to SIGKILL the current leader during "
                           "the update storm (replicated mode only)")
    demo.add_argument("--shm", action="store_true",
                      help="publish GPT snapshots as shared-memory "
                           "segments; daemons attach by reference "
                           "(MSG_STATE_REF) instead of receiving bytes "
                           "on the wire")
    _add_workload_arguments(demo)
    demo.set_defaults(func=_cmd_runtime_demo)

    smoke = sub.add_parser(
        "scale-smoke",
        help="scale-tier drill: shared segment fan-out at ~1M keys plus "
             "a kill/repair/rejoin cycle that must converge by shm "
             "reference and delta-log replay (exit 1 on any gate)",
    )
    smoke.add_argument("--keys", type=int, default=1_000_000,
                       help="synthesized separator size for the segment "
                            "sharing drill")
    smoke.add_argument("--attachers", type=int, default=2,
                       help="child processes attaching the segment")
    smoke.add_argument("--nodes", type=int, default=2)
    smoke.add_argument("--flows", type=int, default=400)
    smoke.add_argument("--updates", type=int, default=300)
    smoke.add_argument("--seed", type=int, default=7)
    smoke.add_argument("--json", action="store_true")
    smoke.set_defaults(func=_cmd_scale_smoke)

    serve_api = sub.add_parser(
        "serve-api",
        help="launch a managed cluster behind the operator REST API",
    )
    serve_api.add_argument("--host", default="127.0.0.1")
    serve_api.add_argument("--port", type=int, default=8787,
                           help="API port (0 picks an ephemeral port)")
    serve_api.add_argument("--nodes", type=int, default=4)
    serve_api.add_argument("--seed", type=int, default=7)
    serve_api.add_argument("--flows", type=int, default=2000,
                           help="initial bearer population")
    serve_api.add_argument("--miss-threshold", type=int, default=3)
    serve_api.add_argument(
        "--fence-after", type=int, default=None,
        help="auto-fence policy: force-kill a SUSPECT node after this "
             "many consecutive heartbeat misses (default: off)",
    )
    serve_api.add_argument("--ping-timeout", type=float, default=0.5,
                           help="heartbeat probe timeout in seconds")
    serve_api.add_argument(
        "--replicas", type=int, default=0,
        help="replicate the control plane across N controller replicas; "
             "replica 0 serves on --port, the rest on ephemeral ports",
    )
    _add_backend_argument(serve_api)
    serve_api.set_defaults(func=_cmd_serve_api)

    ctl = sub.add_parser(
        "ctl", help="drive a running operator API (see serve-api)"
    )
    ctl.add_argument("--host", default="127.0.0.1")
    ctl.add_argument("--port", type=int, default=8787)
    ctl.add_argument("--timeout", type=float, default=60.0)
    ctl.set_defaults(func=_cmd_ctl)
    ctl_sub = ctl.add_subparsers(dest="ctl_verb", required=True)

    def add_ctl_verb(name: str, help_text: str, **extra) -> None:
        verb = ctl_sub.add_parser(name, help=help_text)
        if extra.pop("node", False):
            verb.add_argument("node", type=int, help="node id")
        if extra.pop("teid", False):
            verb.add_argument("teid", type=int, help="tunnel endpoint id")
        for flag, (kind, default, help_line) in extra.items():
            verb.add_argument(f"--{flag}", type=kind, default=default,
                              help=help_line)
        verb.add_argument("--json", action="store_true",
                          help="emit the response as canonical JSON")

    add_ctl_verb("cluster", "membership, epoch, liveness, recent ops")
    add_ctl_verb("nodes", "every node's liveness summary")
    add_ctl_verb("node", "one node: liveness + daemon STATUS", node=True)
    add_ctl_verb("flow", "look a bearer up by TEID", teid=True)
    add_ctl_verb("metrics", "Prometheus text exposition (raw)")
    add_ctl_verb("audit", "charging/CRC differential audit")
    add_ctl_verb("drain", "gracefully remove a node", node=True)
    add_ctl_verb("join", "grow onto a fresh daemon (id = next)", node=True)
    add_ctl_verb("kill", "SIGKILL a daemon (no repair)", node=True)
    add_ctl_verb("fence", "force-kill a SUSPECT node + repair", node=True)
    add_ctl_verb("suspend", "SIGSTOP a daemon (grey failure)", node=True)
    add_ctl_verb("resume", "SIGCONT a suspended daemon", node=True)
    add_ctl_verb("repair", "§7 repair for a DEAD node", node=True)
    add_ctl_verb(
        "updates", "push a seeded §4.5 churn batch",
        connects=(int, 0, "bearers to connect"),
        rehomes=(int, 0, "bearers to re-home"),
        disconnects=(int, 0, "bearers to disconnect"),
    )
    add_ctl_verb(
        "traffic", "run a differential traffic batch",
        packets=(int, 200, "frames to route"),
    )
    add_ctl_verb(
        "poll", "heartbeat round(s) + auto-fence sweep",
        rounds=(int, 1, "heartbeat rounds"),
    )
    add_ctl_verb("status", "replication status: leader, term, replicas")
    add_ctl_verb("committed", "this replica's committed op log")
    add_ctl_verb("fail-leader",
                 "depose the controller leader (failover drill)")
    add_ctl_verb("shutdown", "stop the cluster and the API daemon")

    reproduce = sub.add_parser(
        "reproduce",
        help="run the quick paper-vs-measured reproduction summary",
    )
    reproduce.add_argument("--scale", type=int, default=1)
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.reproduce import run_reproduction

    checks = run_reproduction(scale=max(1, args.scale))
    return 0 if all(ok for _, ok in checks) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(argv)
    # One hook covers every verb carrying --backend: the process-wide
    # default feeds each build path (gateway, launcher, chaos, bench)
    # without threading a parameter through all of them.  The env var is
    # set too so spawned helper processes (replicated controllers) agree.
    if getattr(args, "backend", None) is not None:
        separator_registry.set_default_backend(args.backend)
        os.environ[separator_registry.BACKEND_ENV] = args.backend
    # Same pattern for the fabric topology (--fabric).
    if getattr(args, "fabric", None) is not None:
        fabric_registry.set_default_backend(args.fabric)
        os.environ[fabric_registry.BACKEND_ENV] = args.fabric
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
