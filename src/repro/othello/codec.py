"""Binary snapshots of Othello separators (the "OTHL" payload kind).

Layout mirrors the SetSep "SSEP" format in :mod:`repro.core.serialize`:

    magic "OTHL" | version u16 | header | arrays | crc32 u32

Header fields (little-endian): value_bits u8, vertex_bits u8 (log2
vertices per side), max_rehash u8, reserved u8; base seed u32; num_blocks
u32.  Arrays follow in fixed order: per-block seeds (u32), side A cells
(u32, row-major), side B cells (u32).  Integrity is guarded by the same
trailing-CRC32 convention, so :func:`repro.core.serialize.fingerprint`
works identically for both backends and the runtime's replica-divergence
audits need no backend knowledge.

The front door is :mod:`repro.core.serialize`, which dispatches on the
separator type when dumping and on the magic when loading; this module
holds only the Othello-specific encoding.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.othello.params import OthelloParams
from repro.othello.structure import OthelloSeparator

MAGIC = b"OTHL"
VERSION = 1

_HEADER = struct.Struct("<4sHBBBBII")


def dump_bytes(othello: OthelloSeparator) -> bytes:
    """Serialise an Othello separator to a self-describing byte string."""
    params = othello.params
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        params.value_bits,
        params.vertex_bits,
        params.max_rehash,
        0,  # reserved
        params.seed,
        othello.num_blocks,
    )
    body = b"".join(
        [
            header,
            othello.seeds.astype("<u4").tobytes(),
            othello.array_a.astype("<u4").tobytes(),
            othello.array_b.astype("<u4").tobytes(),
        ]
    )
    return body + struct.pack("<I", zlib.crc32(body))


def load_bytes(data: bytes) -> OthelloSeparator:
    """Reconstruct an Othello separator from :func:`dump_bytes` output.

    Raises:
        SnapshotError: on bad magic, version, truncation or CRC mismatch.
    """
    from repro.core.serialize import SnapshotError

    if len(data) < _HEADER.size + 4:
        raise SnapshotError("snapshot truncated")
    body, crc_raw = data[:-4], data[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_raw)[0]:
        raise SnapshotError("snapshot CRC mismatch")

    (
        magic,
        version,
        value_bits,
        vertex_bits,
        max_rehash,
        _reserved,
        base_seed,
        num_blocks,
    ) = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise SnapshotError("not an Othello snapshot")
    if version != VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")
    try:
        params = OthelloParams(
            value_bits=value_bits,
            vertices_per_side=1 << vertex_bits,
            seed=base_seed,
            max_rehash=max_rehash,
        )
    except ValueError as exc:
        raise SnapshotError(f"impossible othello header: {exc}") from exc

    vps = params.vertices_per_side
    offset = _HEADER.size
    sections = [
        ("seeds", num_blocks * 4, (num_blocks,)),
        ("array_a", num_blocks * vps * 4, (num_blocks, vps)),
        ("array_b", num_blocks * vps * 4, (num_blocks, vps)),
    ]
    arrays = {}
    for name, nbytes, shape in sections:
        end = offset + nbytes
        if end > len(body):
            raise SnapshotError(f"snapshot truncated in {name}")
        arrays[name] = np.frombuffer(
            body[offset:end], dtype="<u4"
        ).reshape(shape).copy()
        offset = end
    if offset != len(body):
        raise SnapshotError("trailing bytes after othello arrays")

    return OthelloSeparator(
        params=params,
        num_blocks=num_blocks,
        seeds=arrays["seeds"].astype(np.uint32),
        array_a=arrays["array_a"].astype(np.uint32),
        array_b=arrays["array_b"].astype(np.uint32),
    )


def load_view(buf, verify: bool = False) -> OthelloSeparator:
    """Reconstruct an Othello separator whose arrays are views into ``buf``.

    Othello-side twin of :func:`repro.core.serialize.load_view`: the
    seeds / side-A / side-B sections alias the caller's buffer (normally a
    copy-on-write mmap of a shared-memory segment) instead of being copied,
    and the CRC is only recomputed when ``verify=True``.
    """
    from repro.core.serialize import SnapshotError

    mv = memoryview(buf)
    if len(mv) < _HEADER.size + 4:
        raise SnapshotError("snapshot truncated")
    if verify and zlib.crc32(mv[:-4]) != struct.unpack("<I", mv[-4:])[0]:
        raise SnapshotError("snapshot CRC mismatch")
    body = mv[:-4]
    (
        magic,
        version,
        value_bits,
        vertex_bits,
        max_rehash,
        _reserved,
        base_seed,
        num_blocks,
    ) = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise SnapshotError("not an Othello snapshot")
    if version != VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")
    try:
        params = OthelloParams(
            value_bits=value_bits,
            vertices_per_side=1 << vertex_bits,
            seed=base_seed,
            max_rehash=max_rehash,
        )
    except ValueError as exc:
        raise SnapshotError(f"impossible othello header: {exc}") from exc

    vps = params.vertices_per_side
    offset = _HEADER.size
    sections = [
        ("seeds", num_blocks * 4, (num_blocks,)),
        ("array_a", num_blocks * vps * 4, (num_blocks, vps)),
        ("array_b", num_blocks * vps * 4, (num_blocks, vps)),
    ]
    arrays = {}
    for name, nbytes, shape in sections:
        end = offset + nbytes
        if end > len(body):
            raise SnapshotError(f"snapshot truncated in {name}")
        # No .copy(): the array aliases the caller's buffer.
        arrays[name] = np.frombuffer(body[offset:end], dtype="<u4").reshape(shape)
        offset = end
    if offset != len(body):
        raise SnapshotError("trailing bytes after othello arrays")

    return OthelloSeparator(
        params=params,
        num_blocks=num_blocks,
        seeds=arrays["seeds"],
        array_a=arrays["array_a"],
        array_b=arrays["array_b"],
    )
