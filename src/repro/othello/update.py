"""Incremental update records for the Othello separator.

The §4.5 protocol is backend-agnostic: the RIB node owning a key's block
recomputes locally and broadcasts a small record that every replica applies
with plain memory writes.  For SetSep that record is a
:class:`repro.core.delta.GroupDelta` (whole-group replacement); for Othello
it is this module's :class:`OthelloUpdate` — either a *sparse* record
carrying the absolute new values of the few cells a component flip touched
(O(1) per update in expectation), or a *full* record carrying a block's
complete rows after a rehash-on-cycle (rare).

Both kinds write absolute values, so applying a record twice — or applying
a duplicate delivered by a faulty transport — is idempotent, matching
GroupDelta's last-writer-wins semantics under the chaos harness.

The API mirrors ``GroupDelta`` exactly (``encode`` / ``decode`` /
``wire_bytes`` / ``from_wire_bytes`` / ``size_bits``) so the update engine
and the runtime daemons handle either record type generically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.core.delta import DeltaWireError
from repro.othello.params import OthelloParams

#: Record kinds.
KIND_SPARSE = 0
KIND_FULL = 1

#: Self-describing wire header: payload length u32, kind u8, value_bits u8,
#: vertex_bits u8 (log2 vertices per side), reserved u8.  The widths let a
#: receiver rebuild :class:`OthelloParams` without out-of-band agreement,
#: and the u32 length accommodates full-block records (~16 KiB at the
#: default geometry) that would overflow GroupDelta's u16 length.
WIRE_HEADER = struct.Struct("<IBBBB")

#: Sparse-body prefix: block id u32, seed u32, cell count u16.
_SPARSE_PREFIX = struct.Struct("<IIH")

#: One sparse cell: vertex u16 (A side < vps, B side >= vps), value u32.
_CELL = struct.Struct("<HI")

#: Full-body prefix: block id u32, seed u32.
_FULL_PREFIX = struct.Struct("<II")


@dataclass(frozen=True)
class OthelloUpdate:
    """Replacement cells (or a whole block) broadcast cluster-wide.

    Attributes:
        block_id: the 1024-key block this record belongs to.
        seed: the block's vertex-hash seed *after* the update (unchanged
            for sparse records; bumped by a rehash).
        cells: ``(vertex, value)`` pairs with absolute new cell values;
            vertices ``< vertices_per_side`` address side A, the rest
            address side B at ``vertex - vertices_per_side``.
        full: ``True`` for a rehash record; ``cells`` then holds every
            vertex of both sides in order (A row, then B row).
    """

    block_id: int
    seed: int
    cells: Tuple[Tuple[int, int], ...] = field(default=())
    full: bool = False

    def size_bits(self, params: OthelloParams) -> int:
        """Exact framed size in bits (feeds the update-rate histograms)."""
        return 8 * len(self.wire_bytes(params))

    def encode(self, params: OthelloParams) -> bytes:
        """Serialise the body (header-less) wire format."""
        if self.full:
            expected = 2 * params.vertices_per_side
            if len(self.cells) != expected:
                raise ValueError(
                    f"full record must carry {expected} cells, "
                    f"got {len(self.cells)}"
                )
            values = np.fromiter(
                (value for _, value in self.cells),
                dtype="<u4",
                count=expected,
            )
            return (
                _FULL_PREFIX.pack(self.block_id, self.seed) + values.tobytes()
            )
        if len(self.cells) > 0xFFFF:
            raise ValueError("too many sparse cells for the wire format")
        parts = [_SPARSE_PREFIX.pack(self.block_id, self.seed, len(self.cells))]
        limit = 2 * params.vertices_per_side
        for vertex, value in self.cells:
            if not 0 <= vertex < limit:
                raise ValueError(f"vertex {vertex} out of range")
            parts.append(_CELL.pack(vertex, value))
        return b"".join(parts)

    def wire_bytes(self, params: OthelloParams) -> bytes:
        """Frame the record for a byte stream (peer of GroupDelta's)."""
        body = self.encode(params)
        kind = KIND_FULL if self.full else KIND_SPARSE
        return WIRE_HEADER.pack(
            len(body), kind, params.value_bits, params.vertex_bits, 0
        ) + body

    @classmethod
    def from_wire_bytes(
        cls, data: bytes, offset: int = 0
    ) -> "Tuple[OthelloUpdate, OthelloParams, int]":
        """Parse one framed record starting at ``offset``.

        Returns ``(update, params, next_offset)`` so concatenated records
        can be framed out of one payload, exactly like
        ``GroupDelta.from_wire_bytes``.

        Raises:
            DeltaWireError: on truncation or an impossible header.
        """
        if offset + WIRE_HEADER.size > len(data):
            raise DeltaWireError("othello record truncated in header")
        body_len, kind, value_bits, vertex_bits, _ = WIRE_HEADER.unpack_from(
            data, offset
        )
        body_start = offset + WIRE_HEADER.size
        if body_start + body_len > len(data):
            raise DeltaWireError("othello record truncated in body")
        if kind not in (KIND_SPARSE, KIND_FULL):
            raise DeltaWireError(f"unknown othello record kind {kind}")
        try:
            params = OthelloParams(
                value_bits=value_bits, vertices_per_side=1 << vertex_bits
            )
        except ValueError as exc:
            raise DeltaWireError(f"impossible othello header: {exc}") from exc
        body = data[body_start:body_start + body_len]
        update = cls.decode(body, params, full=kind == KIND_FULL)
        return update, params, body_start + body_len

    @classmethod
    def decode(
        cls, data: bytes, params: OthelloParams, full: bool = False
    ) -> "OthelloUpdate":
        """Parse a record body (``full`` selects the rehash layout)."""
        try:
            if full:
                block_id, seed = _FULL_PREFIX.unpack_from(data, 0)
                expected = 2 * params.vertices_per_side
                raw = data[_FULL_PREFIX.size:]
                if len(raw) != 4 * expected:
                    raise DeltaWireError(
                        "full othello record length disagrees with geometry"
                    )
                values = np.frombuffer(raw, dtype="<u4")
                cells = tuple(
                    (vertex, int(value)) for vertex, value in enumerate(values)
                )
                return cls(
                    block_id=block_id, seed=seed, cells=cells, full=True
                )
            block_id, seed, count = _SPARSE_PREFIX.unpack_from(data, 0)
            if len(data) != _SPARSE_PREFIX.size + count * _CELL.size:
                raise DeltaWireError(
                    "sparse othello record length disagrees with count"
                )
            cells = tuple(
                _CELL.unpack_from(data, _SPARSE_PREFIX.size + i * _CELL.size)
                for i in range(count)
            )
            limit = 2 * params.vertices_per_side
            if any(vertex >= limit for vertex, _ in cells):
                raise DeltaWireError("sparse othello record vertex out of range")
            return cls(block_id=block_id, seed=seed, cells=cells, full=False)
        except struct.error as exc:
            raise DeltaWireError(f"othello record exhausted: {exc}") from exc
