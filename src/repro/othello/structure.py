"""The Othello separator: XOR-of-two-sides key -> value mapping.

Othello (Yu et al., arXiv:1608.05699) keeps two vertex arrays ``A`` and
``B``; key ``k`` hashes to one vertex on each side and its value is
``A[h_a(k)] ^ B[h_b(k)]``.  The keys form edges of a bipartite graph; while
that graph is acyclic every key's value constraint is satisfiable, and
changing one key only requires XOR-ing a correction into the vertices of a
single connected component — an O(1)-expected *incremental* update, in
contrast to SetSep's per-group brute-force recompute (paper §4.5).

This implementation partitions the structure by the same 1024-key blocks
SetSep uses (``repro.core.twolevel``'s bucket mapping), one small Othello
instance per block:

* RIB ownership, ``Cluster``, the update engine, and the runtime daemons
  see the identical ``groups_of`` / ``rebuild_group`` / ``apply_delta``
  surface, with one group per block;
* a rehash-on-cycle stays a block-local event (a ~16 KiB full-block
  record) instead of a structure-wide rebuild;
* batch lookup is two fused NumPy gathers, mirroring ``SetSep.lookup_batch``.

Update determinism: the record returned by :meth:`rebuild_group` is a pure
function of (current arrays, the group's complete new contents in order,
removed keys).  The per-block edge graph kept by owners is purely an
accelerator — a cold owner reconstructs it from the arrays themselves
(keys whose lookup already matches are exactly the consistent edges), so
the in-process shadow and the wire daemons emit byte-identical records.

Like SetSep, lookup of an unknown key returns an arbitrary value (one-sided
error); ScaleBricks' handling-node FIB rejects such packets (§3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core import hashfamily, twolevel
from repro.core.hashfamily import Key
from repro.core.params import BUCKETS_PER_BLOCK, GROUPS_PER_BLOCK
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.othello.params import OthelloParams
from repro.othello.update import OthelloUpdate

#: Independent hash streams for the two vertex sides.
_STREAM_A = hashfamily.derive_stream("othello/a")
_STREAM_B = hashfamily.derive_stream("othello/b")

#: Odd constant folding the per-block seed into the key before mixing.
_SEED_SALT = np.uint64(0x9E3779B97F4A7C15)

_SEED_MASK = 0xFFFFFFFF


class OthelloRehashError(RuntimeError):
    """A block exhausted its rehash budget without finding an acyclic seed."""


def vertex_hashes(
    keys: np.ndarray, seeds: np.ndarray, vertex_bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-key (side-A, side-B) vertex indices under per-key block seeds.

    Takes the *top* ``vertex_bits`` of each mixed hash, honouring the
    use-the-MSBs rule the rest of the hash family follows.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    seeds = np.asarray(seeds, dtype=np.uint64)
    with np.errstate(over="ignore"):
        salted = keys + (seeds + np.uint64(1)) * _SEED_SALT
    shift = np.uint64(64 - vertex_bits)
    ha = (hashfamily.splitmix64(salted ^ _STREAM_A) >> shift).astype(np.int64)
    hb = (hashfamily.splitmix64(salted ^ _STREAM_B) >> shift).astype(np.int64)
    return ha, hb


def color_block(
    ha: np.ndarray,
    hb: np.ndarray,
    values: np.ndarray,
    vertices_per_side: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Assign cell values satisfying ``A[ha] ^ B[hb] == value`` for all keys.

    Deterministic: components are rooted at their minimum vertex (root cell
    0), BFS visits sorted neighbours, untouched cells stay 0.  Returns
    ``None`` when the block's constraint graph is unsatisfiable under this
    seed (a cycle with a non-zero XOR around it), which triggers a rehash.
    Consistent duplicate constraints — parallel edges or cycles whose
    values XOR to zero — are accepted.
    """
    total = 2 * vertices_per_side
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(total)]
    for u, w, value in zip(ha, hb, values):
        u = int(u)
        w2 = vertices_per_side + int(w)
        value = int(value)
        adjacency[u].append((w2, value))
        adjacency[w2].append((u, value))
    assign = np.zeros(total, dtype=np.uint32)
    visited = np.zeros(total, dtype=bool)
    queue: deque = deque()
    for root in range(total):
        if visited[root] or not adjacency[root]:
            continue
        visited[root] = True
        queue.append(root)
        while queue:
            here = queue.popleft()
            want_base = int(assign[here])
            for other, value in sorted(adjacency[here]):
                want = want_base ^ value
                if visited[other]:
                    if int(assign[other]) != want:
                        return None
                else:
                    assign[other] = want
                    visited[other] = True
                    queue.append(other)
    return assign[:vertices_per_side], assign[vertices_per_side:]


def build_block_rows(
    keys: np.ndarray,
    values: np.ndarray,
    params: OthelloParams,
    start_seed: int,
) -> Tuple[int, np.ndarray, np.ndarray, int]:
    """Find an acyclic seed for one block, trying ``start_seed`` upward.

    Returns ``(seed, a_row, b_row, attempts)``; deterministic in its
    inputs.  Raises :class:`OthelloRehashError` after ``params.max_rehash``
    failed seeds.
    """
    vps = params.vertices_per_side
    mask = np.uint32(params.value_mask)
    masked = np.asarray(values, dtype=np.uint32) & mask
    for attempt in range(params.max_rehash):
        seed = (start_seed + attempt) & _SEED_MASK
        seed_arr = np.full(len(keys), seed, dtype=np.uint64)
        ha, hb = vertex_hashes(keys, seed_arr, params.vertex_bits)
        rows = color_block(ha, hb, masked, vps)
        if rows is not None:
            return seed, rows[0], rows[1], attempt + 1
    raise OthelloRehashError(
        f"no acyclic seed within {params.max_rehash} attempts "
        f"(keys={len(keys)}, vertices_per_side={vps})"
    )


class _BlockGraph:
    """Owner-side edge bookkeeping for one block (never serialised).

    ``edges`` maps canonical key -> ``(u, w2, value)`` with the side-B
    vertex offset by ``vertices_per_side``; ``adjacency`` maps vertex ->
    set of keys touching it.  Purely an accelerator: replicas converge by
    applying broadcast records and never build one.
    """

    __slots__ = ("edges", "adjacency")

    def __init__(self) -> None:
        self.edges: Dict[int, Tuple[int, int, int]] = {}
        self.adjacency: Dict[int, Set[int]] = {}

    def add(self, key: int, u: int, w2: int, value: int) -> None:
        self.edges[key] = (u, w2, value)
        self.adjacency.setdefault(u, set()).add(key)
        self.adjacency.setdefault(w2, set()).add(key)

    def remove(self, key: int) -> None:
        u, w2, _ = self.edges.pop(key)
        for vertex in (u, w2):
            touching = self.adjacency.get(vertex)
            if touching is not None:
                touching.discard(key)
                if not touching:
                    del self.adjacency[vertex]

    def component(self, start: int) -> Set[int]:
        """Vertices connected to ``start`` (BFS; components are tiny)."""
        seen = {start}
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for key in self.adjacency.get(vertex, ()):
                u, w2, _ = self.edges[key]
                for other in (u, w2):
                    if other not in seen:
                        seen.add(other)
                        queue.append(other)
        return seen


class OthelloSeparator:
    """The queryable Othello structure (SetSep's pluggable peer).

    Instances are normally created with :func:`repro.othello.builder.build`.
    The constructor takes pre-assembled state so the builder, the snapshot
    loader, and :meth:`copy` can produce instances directly.
    """

    backend = "othello"

    def __init__(
        self,
        params: OthelloParams,
        num_blocks: int,
        seeds: np.ndarray,
        array_a: np.ndarray,
        array_b: np.ndarray,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        vps = params.vertices_per_side
        if seeds.shape != (num_blocks,):
            raise ValueError("seeds shape does not match num_blocks")
        if array_a.shape != (num_blocks, vps):
            raise ValueError("array_a shape does not match num_blocks/params")
        if array_b.shape != (num_blocks, vps):
            raise ValueError("array_b shape does not match num_blocks/params")
        self.params = params
        self.num_blocks = num_blocks
        self.seeds = seeds
        self.array_a = array_a
        self.array_b = array_b
        self._graphs: Dict[int, _BlockGraph] = {}
        self._applying_own = False
        self.bind_registry(registry)

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry (``None`` selects the null registry)."""
        self.registry = resolve_registry(registry)
        self._m_lookups = self.registry.counter(
            "othello.lookups", "keys looked up (batch or scalar)"
        )
        self._m_rebuilds = self.registry.counter(
            "othello.group_rebuilds", "groups recomputed by the update path"
        )
        self._m_rehashes = self.registry.counter(
            "othello.rehashes", "block rehashes forced by a constraint cycle"
        )
        self._m_deltas_applied = self.registry.counter(
            "othello.deltas_applied", "broadcast othello records applied"
        )

    # ------------------------------------------------------------------
    # Shape properties
    # ------------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """First-level buckets (shared with SetSep's two-level mapping)."""
        return self.num_blocks * BUCKETS_PER_BLOCK

    @property
    def num_groups(self) -> int:
        """Update domains; Othello rebuilds whole blocks, one group each."""
        return self.num_blocks * GROUPS_PER_BLOCK

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: Key) -> int:
        """Map one key to its value (arbitrary for unknown keys)."""
        return int(self.lookup_batch([key])[0])

    def lookup_batch(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        with_groups: bool = False,
    ) -> Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """Vectorised lookup: block gather, two vertex gathers, one XOR.

        ``with_groups=True`` additionally returns each key's group id
        (the block's first group, matching :meth:`groups_of`) so the
        hot-key cache can tag fills without a second bucket pass.
        """
        keys = hashfamily.canonical_keys(keys)
        if keys.size == 0:
            empty = np.zeros(0, dtype=np.uint32)
            return (empty, empty.copy()) if with_groups else empty
        self._m_lookups.inc(keys.size)
        blocks = self.blocks_of(keys)
        ha, hb = vertex_hashes(
            keys, self.seeds[blocks], self.params.vertex_bits
        )
        values = self.array_a[blocks, ha] ^ self.array_b[blocks, hb]
        values = values & np.uint32(self.params.value_mask)
        if with_groups:
            return values, (blocks * GROUPS_PER_BLOCK).astype(np.uint32)
        return values

    def buckets_of(self, keys: np.ndarray) -> np.ndarray:
        """Global bucket id of each (canonical) key."""
        return twolevel.bucket_ids(keys, self.num_blocks)

    def blocks_of(self, keys: np.ndarray) -> np.ndarray:
        """Block id of each (canonical) key."""
        return self.buckets_of(keys) // BUCKETS_PER_BLOCK

    def groups_of(self, keys: np.ndarray) -> np.ndarray:
        """Global group id of each key.

        Othello's update domain is the whole block, exposed as the block's
        first group id so RIB bookkeeping (``group // GROUPS_PER_BLOCK``)
        and the §4.5 owner protocol work identically for both backends.
        """
        return self.blocks_of(keys) * GROUPS_PER_BLOCK

    def group_of(self, key: Key) -> int:
        """Global group id of a single key."""
        keys = hashfamily.canonical_keys([key])
        return int(self.groups_of(keys)[0])

    def block_of(self, key: Key) -> int:
        """Block id of a single key — the RIB partitioning unit (§4.5)."""
        return self.group_of(key) // GROUPS_PER_BLOCK

    # ------------------------------------------------------------------
    # Updates (paper §4.5, Othello-style)
    # ------------------------------------------------------------------

    def rebuild_group(
        self,
        group_id: int,
        keys: Union[Sequence[Key], np.ndarray],
        values: Sequence[int],
        removed_keys: Iterable[Key] = (),
    ) -> OthelloUpdate:
        """Incrementally fold the group's new contents in; return the record.

        Same contract as ``SetSep.rebuild_group``: called by the owning RIB
        node with the group's *complete* new contents plus the keys that
        left it; the record is applied locally before being returned and
        broadcast to every replica.  Unlike SetSep, the work is incremental
        — only keys whose stored value disagrees with the new contents are
        touched, each flipping one tiny connected component.
        """
        block = group_id // GROUPS_PER_BLOCK
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"group id {group_id} out of range")
        keys_arr = hashfamily.canonical_keys(keys)
        values_arr = np.asarray(list(values), dtype=np.uint32)
        if keys_arr.shape != values_arr.shape:
            raise ValueError("keys and values must have equal length")
        if len(values_arr) and int(values_arr.max()) > self.params.value_mask:
            raise ValueError(
                f"values must fit in {self.params.value_bits} bits"
            )
        self._m_rebuilds.inc()
        contents: Dict[int, int] = {
            int(k): int(v) for k, v in zip(keys_arr, values_arr)
        }
        graph = self._graphs.get(block)
        if graph is None:
            graph = self._bootstrap_graph(block, contents)
            self._graphs[block] = graph
        for raw in removed_keys:
            key = hashfamily.canonical_key(raw)
            if key in graph.edges and key not in contents:
                graph.remove(key)

        cells: Dict[int, int] = {}
        update: Optional[OthelloUpdate] = None
        for key, value in contents.items():
            existing = graph.edges.get(key)
            if existing is not None:
                if existing[2] == value:
                    continue
                graph.remove(key)
            if not self._insert(block, graph, key, value, cells):
                # A rehash needs the block's complete contents.  The warm
                # graph holds every surviving edge, so merging it with
                # this call's (possibly partial) contents reconstructs
                # them however the owner was invoked.
                full = {k: edge[2] for k, edge in graph.edges.items()}
                full.update(contents)
                update = self._rehash_block(block, full)
                break
        if update is None:
            update = OthelloUpdate(
                block_id=block,
                seed=int(self.seeds[block]),
                cells=tuple(sorted(cells.items())),
            )
        self._applying_own = True
        try:
            self.apply_delta(update)
        finally:
            self._applying_own = False
        return update

    def needs_full_contents(self, group_id: int) -> bool:
        """Whether :meth:`rebuild_group` needs the group's full contents.

        ``False`` once this owner's block graph is warm: the graph then
        holds every live edge, so a call covering only the changed keys
        (plus removals) yields the byte-identical record, skipping the
        O(block) contents enumeration entirely — the property that makes
        Othello's sustained update rate beat SetSep's.  Cold owners (and
        backends without this method — callers treat its absence as
        always-``True``) still receive complete contents so the graph
        bootstrap stays deterministic.
        """
        return (group_id // GROUPS_PER_BLOCK) not in self._graphs

    def _bootstrap_graph(self, block: int, contents: Dict[int, int]) -> _BlockGraph:
        """Reconstruct a cold owner's edge graph from the arrays themselves.

        Keys whose stored lookup already matches the new contents are
        exactly the block's consistent edges; mismatching keys are the ops
        :meth:`rebuild_group` is about to perform.  This makes the emitted
        record independent of whether the owner's cache was warm.
        """
        graph = _BlockGraph()
        if not contents:
            return graph
        keys = np.fromiter(contents.keys(), dtype=np.uint64, count=len(contents))
        seed_arr = np.full(len(keys), int(self.seeds[block]), dtype=np.uint64)
        ha, hb = vertex_hashes(keys, seed_arr, self.params.vertex_bits)
        stored = (
            self.array_a[block, ha] ^ self.array_b[block, hb]
        ) & np.uint32(self.params.value_mask)
        vps = self.params.vertices_per_side
        for key, u, w, value in zip(keys, ha, hb, stored):
            key = int(key)
            if contents[key] == int(value):
                graph.add(key, int(u), vps + int(w), int(value))
        return graph

    def _insert(
        self,
        block: int,
        graph: _BlockGraph,
        key: int,
        value: int,
        cells: Dict[int, int],
    ) -> bool:
        """Add one edge, XOR-correcting one component; False means rehash."""
        vps = self.params.vertices_per_side
        seed_arr = np.full(1, int(self.seeds[block]), dtype=np.uint64)
        ha, hb = vertex_hashes(
            np.array([key], dtype=np.uint64), seed_arr, self.params.vertex_bits
        )
        u, w = int(ha[0]), int(hb[0])
        w2 = vps + w
        a_row = self.array_a[block]
        b_row = self.array_b[block]
        delta = (int(a_row[u]) ^ int(b_row[w]) ^ value) & self.params.value_mask
        if delta == 0:
            graph.add(key, u, w2, value)
            return True
        component = graph.component(w2)
        if u in component:
            return False
        correction = np.uint32(delta)
        for vertex in component:
            if vertex < vps:
                a_row[vertex] ^= correction
                cells[vertex] = int(a_row[vertex])
            else:
                b_row[vertex - vps] ^= correction
                cells[vertex] = int(b_row[vertex - vps])
        graph.add(key, u, w2, value)
        return True

    def _rehash_block(
        self, block: int, contents: Dict[int, int]
    ) -> OthelloUpdate:
        """Re-seed a cycled block from its complete contents (full record)."""
        self._m_rehashes.inc()
        count = len(contents)
        keys = np.fromiter(contents.keys(), dtype=np.uint64, count=count)
        values = np.fromiter(contents.values(), dtype=np.uint32, count=count)
        start = (int(self.seeds[block]) + 1) & _SEED_MASK
        seed, a_row, b_row, _ = build_block_rows(
            keys, values, self.params, start
        )
        vps = self.params.vertices_per_side
        graph = _BlockGraph()
        seed_arr = np.full(count, seed, dtype=np.uint64)
        ha, hb = vertex_hashes(keys, seed_arr, self.params.vertex_bits)
        for key, u, w, value in zip(keys, ha, hb, values):
            graph.add(int(key), int(u), vps + int(w), int(value))
        self._graphs[block] = graph
        cells = tuple(
            (vertex, int(value))
            for vertex, value in enumerate(
                np.concatenate([a_row, b_row]).astype(np.uint32)
            )
        )
        return OthelloUpdate(block_id=block, seed=seed, cells=cells, full=True)

    def apply_delta(self, update: OthelloUpdate) -> None:
        """Apply a broadcast record: absolute cell writes, idempotent."""
        block = update.block_id
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block id {block} out of range")
        vps = self.params.vertices_per_side
        self._m_deltas_applied.inc()
        if update.full:
            values = np.fromiter(
                (value for _, value in update.cells),
                dtype=np.uint32,
                count=2 * vps,
            )
            self.array_a[block] = values[:vps]
            self.array_b[block] = values[vps:]
        else:
            for vertex, value in update.cells:
                if not 0 <= vertex < 2 * vps:
                    raise ValueError(f"vertex {vertex} out of range")
                if vertex < vps:
                    self.array_a[block, vertex] = value
                else:
                    self.array_b[block, vertex - vps] = value
        self.seeds[block] = update.seed
        if not self._applying_own:
            # A foreign record invalidates any cached edge graph; replicas
            # never rebuild one, and a displaced owner reconciles cold.
            self._graphs.pop(block, None)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size_bits(self, include_fallback: bool = True) -> int:
        """Logical structure size in bits.

        Charges ``value_bits`` per cell plus the 32-bit per-block seed —
        independent of NumPy's uint32 in-memory padding (Othello keeps no
        fallback; the argument exists for SetSep signature parity).
        """
        del include_fallback
        cell_bits = 2 * self.params.vertices_per_side * self.params.value_bits
        return self.num_blocks * (cell_bits + 32)

    def size_bytes(self) -> int:
        """Logical size rounded up to bytes (used by the cache model)."""
        return (self.size_bits() + 7) // 8

    def bits_per_key(self, num_keys: int) -> float:
        """Measured bits/key for a structure holding ``num_keys`` keys."""
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        return self.size_bits() / num_keys

    # ------------------------------------------------------------------
    # Introspection / (de)serialisation
    # ------------------------------------------------------------------

    def state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw state arrays (seeds, array_a, array_b)."""
        return self.seeds, self.array_a, self.array_b

    def copy(self) -> "OthelloSeparator":
        """Deep copy — used to replicate the GPT to every cluster node.

        Edge-graph caches are not copied; the replica reconciles cold if it
        ever becomes an owner.
        """
        return OthelloSeparator(
            params=self.params,
            num_blocks=self.num_blocks,
            seeds=self.seeds.copy(),
            array_a=self.array_a.copy(),
            array_b=self.array_b.copy(),
            registry=self.registry,
        )

    def __repr__(self) -> str:
        return (
            f"OthelloSeparator(config={self.params.name}, value_bits="
            f"{self.params.value_bits}, blocks={self.num_blocks})"
        )
