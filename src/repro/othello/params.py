"""Configuration of the Othello separator (Yu et al., arXiv:1608.05699).

Othello stores a key -> value mapping as two vertex arrays ``A`` and ``B``;
a key hashes to one vertex on each side and its value is
``A[h_a(k)] XOR B[h_b(k)]``.  As long as the bipartite graph whose edges are
the keys stays acyclic, any assignment of values is satisfiable and a single
insert touches only one connected component — the O(1) incremental update
that distinguishes Othello from SetSep's per-group recompute (paper §4.5).

This reproduction partitions Othello by the same 1024-key blocks SetSep
uses (one small Othello instance per block), so RIB ownership, the §4.5
owner-recomputes-and-broadcasts update protocol, and the runtime daemons
all work unchanged regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import KEYS_PER_BLOCK

#: Per-block seed counter width; a block rehash bumps the seed mod 2**32.
SEED_BITS = 32


@dataclass(frozen=True)
class OthelloParams:
    """Tunable parameters of an Othello separator.

    Attributes:
        value_bits: bits per stored value; a cluster of N nodes needs
            ``ceil(log2 N)``.  Cells are XOR-combined, so unlike SetSep
            there is no per-value-bit search — wider values cost memory,
            not build time.
        vertices_per_side: vertices on each side of the per-block bipartite
            graph.  Must be a power of two in ``[4, 32768]``.  The default,
            2048 = 2x the 1024 keys per block, keeps the acyclicity
            probability high so rehashes are rare.
        seed: base seed for the per-block vertex hash salts.
        max_rehash: how many incremented seeds a block build/update may try
            before giving up (in [1, 255] so it fits the snapshot header).
    """

    value_bits: int = 1
    vertices_per_side: int = 2048
    seed: int = 0
    max_rehash: int = 64

    def __post_init__(self) -> None:
        if not 1 <= self.value_bits <= 16:
            raise ValueError("value_bits must be in [1, 16]")
        vps = self.vertices_per_side
        if vps < 4 or vps > 32768 or vps & (vps - 1):
            raise ValueError(
                "vertices_per_side must be a power of two in [4, 32768]"
            )
        if not 0 <= self.seed < (1 << SEED_BITS):
            raise ValueError("seed must fit in 32 bits")
        if not 1 <= self.max_rehash <= 255:
            raise ValueError("max_rehash must be in [1, 255]")

    @property
    def vertex_bits(self) -> int:
        """log2(vertices_per_side) — the top bits taken from each hash."""
        return self.vertices_per_side.bit_length() - 1

    @property
    def value_mask(self) -> int:
        """Mask selecting the stored value bits of a cell."""
        return (1 << self.value_bits) - 1

    @property
    def name(self) -> str:
        """Configuration label (mirrors ``SetSepParams.name``)."""
        return f"othello/{self.vertices_per_side}x{self.value_bits}"

    def bits_per_key(self) -> float:
        """Expected storage in bits/key for full 1024-key blocks.

        Two sides of ``vertices_per_side`` cells at ``value_bits`` each,
        plus the 32-bit per-block seed.  At the defaults this is
        ``4 * value_bits + 0.03`` bits/key — Othello trades memory
        (4x SetSep's 1.5 bits/key/value-bit) for O(1) updates.
        """
        cell_bits = 2 * self.vertices_per_side * self.value_bits
        return (cell_bits + SEED_BITS) / KEYS_PER_BLOCK

    @staticmethod
    def for_cluster(num_nodes: int, **overrides) -> "OthelloParams":
        """Parameters sized for a GPT mapping keys to ``num_nodes`` nodes."""
        if num_nodes < 1:
            raise ValueError("cluster must have at least one node")
        value_bits = max(1, (num_nodes - 1).bit_length())
        return OthelloParams(value_bits=value_bits, **overrides)
