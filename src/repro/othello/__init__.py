"""Othello hashing: a pluggable GPT separator backend (arXiv:1608.05699).

The direct competitor to SetSep for the paper's §3.2 GPT slot: the same
keyless key -> node-id mapping, but with O(1)-expected incremental updates
(XOR-correcting one connected component) instead of SetSep's per-group
brute-force recompute, at the cost of ~4x the memory per value bit.

Public surface:

* :class:`repro.othello.structure.OthelloSeparator` — the queryable
  structure (SetSep's drop-in peer behind ``GlobalPartitionTable``).
* :func:`repro.othello.builder.build` — construction.
* :class:`repro.othello.params.OthelloParams` — configuration.
* :class:`repro.othello.update.OthelloUpdate` — the broadcast update
  record (peer of :class:`repro.core.delta.GroupDelta`).

Backend selection lives in :mod:`repro.core.separator`; snapshots flow
through :mod:`repro.core.serialize`, which recognises this package's
"OTHL" payload kind.
"""

from repro.othello.builder import build
from repro.othello.codec import dump_bytes, load_bytes
from repro.othello.params import OthelloParams
from repro.othello.structure import (
    OthelloRehashError,
    OthelloSeparator,
    build_block_rows,
    color_block,
    vertex_hashes,
)
from repro.othello.update import OthelloUpdate

__all__ = [
    "OthelloParams",
    "OthelloRehashError",
    "OthelloSeparator",
    "OthelloUpdate",
    "build",
    "build_block_rows",
    "color_block",
    "dump_bytes",
    "load_bytes",
    "vertex_hashes",
]
