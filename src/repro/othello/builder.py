"""Othello construction: per-block acyclic coloring with deterministic seeds.

Construction is embarrassingly parallel across 1024-key blocks, exactly
like SetSep's (paper §4.4): each block independently searches for a seed
under which its keys' constraint graph is acyclic, then colors the two
vertex arrays by BFS.  Unlike SetSep there is no per-value-bit brute-force
search — wider values change nothing but the cell width — so construction
cost is linear in the key count.

Reuses :class:`repro.core.builder.ConstructionStats` so benchmarks and the
CLI report both backends through one stats surface (``total_iterations``
counts seed attempts, ``num_groups`` counts blocks — Othello's rebuild
domain — and the fallback columns are structurally zero).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import hashfamily, twolevel
from repro.core.builder import ConstructionStats, DuplicateKeyError
from repro.core.hashfamily import Key
from repro.core.params import BUCKETS_PER_BLOCK
from repro.othello.params import OthelloParams
from repro.othello.structure import OthelloSeparator, build_block_rows


def build(
    keys: Union[Sequence[Key], np.ndarray],
    values: Sequence[int],
    params: Optional[OthelloParams] = None,
    workers: int = 1,
    num_blocks: Optional[int] = None,
) -> Tuple[OthelloSeparator, ConstructionStats]:
    """Build an Othello separator from key/value pairs.

    Args:
        keys: unique keys (ints, bytes, strings, or a uint64 array).
        values: one value per key, each below ``2**params.value_bits``.
        params: structure configuration; defaults to ``OthelloParams()``.
        workers: accepted for interface parity with the SetSep builder;
            per-block coloring is cheap enough that this build is serial.
        num_blocks: override the block count (testing / load experiments).

    Returns:
        ``(othello, stats)`` — the queryable structure and its
        construction measurements.

    Raises:
        DuplicateKeyError: if two inputs canonicalise to the same key.
        ValueError: if a value does not fit in ``value_bits``.
        OthelloRehashError: if a block exhausts its rehash budget.
    """
    del workers
    params = params or OthelloParams()
    started = time.perf_counter()

    keys_arr = hashfamily.canonical_keys(keys)
    values_arr = np.asarray(values, dtype=np.uint32)
    if keys_arr.shape != values_arr.shape:
        raise ValueError("keys and values must have equal length")
    if len(keys_arr) and int(values_arr.max()) >= (1 << params.value_bits):
        raise ValueError(
            f"values must fit in {params.value_bits} bits; "
            f"got {int(values_arr.max())}"
        )
    if len(np.unique(keys_arr)) != len(keys_arr):
        raise DuplicateKeyError("input contains duplicate keys")

    if num_blocks is None:
        num_blocks = twolevel.num_blocks_for(len(keys_arr))
    vps = params.vertices_per_side
    seeds = np.full(num_blocks, params.seed, dtype=np.uint32)
    array_a = np.zeros((num_blocks, vps), dtype=np.uint32)
    array_b = np.zeros((num_blocks, vps), dtype=np.uint32)

    total_attempts = 0
    max_load = 0
    if len(keys_arr):
        blocks = (
            twolevel.bucket_ids(keys_arr, num_blocks) // BUCKETS_PER_BLOCK
        )
        order = np.argsort(blocks, kind="stable")
        sorted_keys = keys_arr[order]
        sorted_values = values_arr[order]
        sorted_blocks = blocks[order]
        boundaries = np.searchsorted(
            sorted_blocks, np.arange(num_blocks + 1)
        )
        for block in range(num_blocks):
            lo, hi = int(boundaries[block]), int(boundaries[block + 1])
            if lo == hi:
                continue
            max_load = max(max_load, hi - lo)
            seed, a_row, b_row, attempts = build_block_rows(
                sorted_keys[lo:hi],
                sorted_values[lo:hi],
                params,
                params.seed,
            )
            seeds[block] = seed
            array_a[block] = a_row
            array_b[block] = b_row
            total_attempts += attempts

    othello = OthelloSeparator(
        params=params,
        num_blocks=num_blocks,
        seeds=seeds,
        array_a=array_a,
        array_b=array_b,
    )
    stats = ConstructionStats(
        num_keys=len(keys_arr),
        num_blocks=num_blocks,
        num_groups=num_blocks,
        failed_groups=0,
        fallback_keys=0,
        total_iterations=total_attempts,
        max_group_load=max_load,
        elapsed_seconds=time.perf_counter() - started,
        workers=1,
    )
    return othello, stats
