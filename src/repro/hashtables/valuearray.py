"""The separated, fixed-width value array (paper §5.2).

ScaleBricks' FIB extension: "When the table is initialized at run-time,
the value size is fixed for all entries based on the application
requirements. ... we create a separate value array in which the k-th
element is the value associated with the k-th slot in the hash table."

This module is that array, literally: a dense ``(num_slots, value_size)``
byte matrix indexed by slot number.  The cuckoo table composes with it via
its ``value_store="packed"`` mode, at which point values are materialised
bytes and the size accounting reflects real storage rather than a model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ValueArray:
    """Dense slot-indexed storage for fixed-size binary values.

    Args:
        num_slots: one element per hash-table slot.
        value_size: bytes per value, fixed at initialisation (the §5.2
            contract — applications pick it once, e.g. TEID + state ref).
    """

    def __init__(self, num_slots: int, value_size: int) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be positive")
        if value_size < 1:
            raise ValueError("value_size must be positive")
        self.num_slots = num_slots
        self.value_size = value_size
        self._data = np.zeros((num_slots, value_size), dtype=np.uint8)

    def __setitem__(self, slot: int, value: Optional[bytes]) -> None:
        """Store a value; ``None`` clears the slot (zero fill)."""
        if value is None:
            self._data[slot, :] = 0
            return
        if isinstance(value, int):
            value = int(value).to_bytes(self.value_size, "little")
        if len(value) != self.value_size:
            raise ValueError(
                f"value must be exactly {self.value_size} bytes, "
                f"got {len(value)}"
            )
        self._data[slot, :] = np.frombuffer(bytes(value), dtype=np.uint8)

    def __getitem__(self, slot: int) -> bytes:
        """Read the slot's value bytes (zero-filled when never written)."""
        return self._data[slot].tobytes()

    def get_int(self, slot: int) -> int:
        """Read the slot as a little-endian unsigned integer."""
        return int.from_bytes(self[slot], "little")

    def move(self, src: int, dst: int) -> None:
        """Relocate a value alongside its cuckooed key (§5.2)."""
        self._data[dst, :] = self._data[src, :]
        self._data[src, :] = 0

    def size_bytes(self) -> int:
        """Real storage footprint of the array."""
        return int(self._data.nbytes)
