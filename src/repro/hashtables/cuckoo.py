"""Cuckoo-hash FIB with a separated value array (paper §5.2).

ScaleBricks stores each node's slice of the FIB in a concurrent cuckoo hash
table derived from CuckooSwitch [34].  CuckooSwitch interleaved key/value to
fetch both in one cache line; ScaleBricks instead needs *configurable-sized*
values, so it keeps keys in the buckets and moves values into a separate
array indexed by the slot number — the extension this module implements.
When a cuckoo insertion relocates a key, the value moves with it, and lookup
costs one extra (slot-indexed) memory read that the paper measures to be
nearly free.

The table is 4-way set-associative with partial-key ("tag") alternate-bucket
derivation as in MemC3 [14]: ``alt(b, tag) = b XOR hash(tag)``, an involution
that lets either bucket derive the other without the full key.  Insertion
uses BFS for the shortest relocation path, which keeps high occupancy.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key
from repro.hashtables.interface import FibTable, TableFullError, canonical

#: Slots per bucket (the associativity CuckooSwitch uses).
SLOTS_PER_BUCKET = 4

#: Maximum BFS depth when searching for a relocation path.
MAX_BFS_DEPTH = 4

#: Tag width in bits (partial key stored logically alongside each slot).
TAG_BITS = 16


class CuckooHashTable(FibTable):
    """4-way cuckoo hash table with values in a separate slot-indexed array.

    Args:
        capacity: expected number of entries; the bucket count is the next
            power of two giving a target load factor of ~0.95 (cuckoo with
            4-way buckets sustains >95% occupancy).
        value_size: bytes per value (the application-specific data the
            paper mentions — e.g. a TEID plus per-flow state handle).
        value_store: ``"object"`` keeps arbitrary Python values and uses
            ``value_size`` only for the memory model; ``"packed"``
            materialises the paper's dense byte matrix
            (:class:`repro.hashtables.valuearray.ValueArray`) and requires
            every value to be ``value_size`` bytes (ints are packed
            little-endian).
    """

    def __init__(
        self,
        capacity: int,
        value_size: int = 8,
        value_store: str = "object",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if value_size < 1:
            raise ValueError("value_size must be positive")
        if value_store not in ("object", "packed"):
            raise ValueError("value_store must be 'object' or 'packed'")
        buckets_needed = max(1, int(capacity / (SLOTS_PER_BUCKET * 0.95)) + 1)
        self._num_buckets = 1 << (buckets_needed - 1).bit_length()
        self._bucket_mask = np.uint64(self._num_buckets - 1)
        num_slots = self._num_buckets * SLOTS_PER_BUCKET
        self._keys = np.zeros(num_slots, dtype=np.uint64)
        self._occupied = np.zeros(num_slots, dtype=bool)
        # The separated value array: element k holds the value of slot k.
        self._values: Any
        if value_store == "packed":
            from repro.hashtables.valuearray import ValueArray

            self._values = ValueArray(num_slots, value_size)
        else:
            self._values = [None] * num_slots
        # Integer sidecar mirroring the value array: slots whose value is a
        # plain int are additionally kept here so the array-native batch
        # lookup can gather values without touching Python objects.
        self._int_values = np.zeros(num_slots, dtype=np.int64)
        self._int_ok = np.zeros(num_slots, dtype=bool)
        self.value_store = value_store
        self._value_size = value_size
        self._len = 0
        self._relocations = 0

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _index_pair(self, key: int) -> Tuple[int, int]:
        """Primary and alternate bucket of a key."""
        arr = np.asarray([key], dtype=np.uint64)
        primary = int(hashfamily.fib_hash(arr)[0] & self._bucket_mask)
        return primary, self._alt_bucket(primary, self._tag(key))

    def _tag(self, key: int) -> int:
        """Partial-key tag (never zero, so zero can mean "empty")."""
        arr = np.asarray([key], dtype=np.uint64)
        tag = int(hashfamily.tag_hash(arr)[0]) & ((1 << TAG_BITS) - 1)
        return tag if tag else 1

    def _alt_bucket(self, bucket: int, tag: int) -> int:
        """The XOR-derived alternate bucket (an involution, per MemC3)."""
        arr = np.asarray([tag], dtype=np.uint64)
        offset = int(hashfamily.tag_hash(arr)[0] & self._bucket_mask)
        return (bucket ^ offset) & (self._num_buckets - 1)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any) -> None:
        ckey = canonical(key)
        b1, b2 = self._index_pair(ckey)

        # Overwrite if present.
        slot = self._find_slot(ckey, b1, b2)
        if slot is not None:
            self._values[slot] = value
            self._set_int_value(slot, value)
            return

        # Empty slot in either candidate bucket.
        for bucket in (b1, b2):
            slot = self._empty_slot(bucket)
            if slot is not None:
                self._place(slot, ckey, value)
                return

        # BFS for the shortest relocation path.
        path = self._bfs_path(b1, b2)
        if path is None:
            raise TableFullError(
                f"cuckoo table full at load factor {self.load_factor():.3f}"
            )
        self._shift_along(path)
        self._place(path[0], ckey, value)

    def lookup(self, key: Key) -> Optional[Any]:
        ckey = canonical(key)
        b1, b2 = self._index_pair(ckey)
        slot = self._find_slot(ckey, b1, b2)
        if slot is None:
            return None
        # The separated value array costs exactly one extra indexed read.
        return self._values[slot]

    def lookup_slots(self, keys) -> np.ndarray:
        """Vectorised slot resolution: each key's slot id, ``-1`` on miss.

        Candidate buckets, tags and slot comparisons for the whole batch
        are computed as NumPy array operations — the software analogue of
        the prefetch pipelining CuckooSwitch uses (§5.1).  Both batch
        lookup shapes build on this.
        """
        from repro.hashtables.interface import canonical_many

        keys_arr = canonical_many(keys)
        n = len(keys_arr)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        primary = (hashfamily.fib_hash(keys_arr) & self._bucket_mask).astype(
            np.int64
        )
        tags = hashfamily.tag_hash(keys_arr) & np.uint64((1 << TAG_BITS) - 1)
        tags = np.where(tags == 0, np.uint64(1), tags)
        offsets = (hashfamily.tag_hash(tags) & self._bucket_mask).astype(
            np.int64
        )
        alternate = primary ^ offsets

        # All 8 candidate slots per key: (n, 8).
        slot_base = np.stack([primary, alternate], axis=1) * SLOTS_PER_BUCKET
        slots = slot_base[:, :, None] + np.arange(SLOTS_PER_BUCKET)[None, None, :]
        slots = slots.reshape(n, 2 * SLOTS_PER_BUCKET)
        match = self._occupied[slots] & (self._keys[slots] == keys_arr[:, None])
        any_hit = match.any(axis=1)
        first = match.argmax(axis=1)
        return np.where(
            any_hit, slots[np.arange(n), first], np.int64(-1)
        ).astype(np.int64)

    def lookup_batch(self, keys) -> List[Optional[Any]]:
        """Vectorised multi-key lookup (the PFE's batched fast path).

        Slot resolution is fully vectorised (:meth:`lookup_slots`); only
        the final value fetches for hits touch Python objects.
        """
        slots = self.lookup_slots(keys)
        out: List[Optional[Any]] = [None] * len(slots)
        for row in np.nonzero(slots >= 0)[0].tolist():
            out[row] = self._values[int(slots[row])]
        return out

    def lookup_batch_array(self, keys, missing: int = -1):
        """Array-native batch lookup: ``(found, int64 values)``.

        Stays entirely in NumPy when every hit value is an integer (the
        FIB's TEID case) by gathering from the integer sidecar; raises
        :class:`TypeError` as the interface contract requires otherwise.
        """
        slots = self.lookup_slots(keys)
        found = slots >= 0
        hit_slots = slots[found]
        if not np.all(self._int_ok[hit_slots]):
            raise TypeError(
                "CuckooHashTable holds non-integer values; use lookup_batch()"
            )
        values = np.full(len(slots), missing, dtype=np.int64)
        values[found] = self._int_values[hit_slots]
        return found, values

    def delete(self, key: Key) -> bool:
        ckey = canonical(key)
        b1, b2 = self._index_pair(ckey)
        slot = self._find_slot(ckey, b1, b2)
        if slot is None:
            return False
        self._occupied[slot] = False
        self._keys[slot] = 0
        self._values[slot] = None
        self._int_ok[slot] = False
        self._len -= 1
        return True

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _slots_of(self, bucket: int) -> range:
        start = bucket * SLOTS_PER_BUCKET
        return range(start, start + SLOTS_PER_BUCKET)

    def _find_slot(self, ckey: int, b1: int, b2: int) -> Optional[int]:
        for bucket in (b1, b2):
            for slot in self._slots_of(bucket):
                if self._occupied[slot] and int(self._keys[slot]) == ckey:
                    return slot
        return None

    def _empty_slot(self, bucket: int) -> Optional[int]:
        for slot in self._slots_of(bucket):
            if not self._occupied[slot]:
                return slot
        return None

    def _set_int_value(self, slot: int, value: Any) -> None:
        """Keep the integer sidecar coherent with the value array."""
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            self._int_values[slot] = int(value)
            self._int_ok[slot] = True
        else:
            self._int_ok[slot] = False

    def _place(self, slot: int, ckey: int, value: Any) -> None:
        self._keys[slot] = ckey
        self._occupied[slot] = True
        self._values[slot] = value
        self._set_int_value(slot, value)
        self._len += 1

    def _bfs_path(self, b1: int, b2: int) -> Optional[List[int]]:
        """Shortest chain of slots ending at an empty slot.

        Returns slot ids ``[s0, s1, ..., empty]`` where each occupant of
        ``s_i`` moves to ``s_{i+1}``; ``s0`` is freed for the new key.
        """
        # Each queue entry: (bucket, path-of-slots-to-reach-it).
        queue: Deque[Tuple[int, Tuple[int, ...]]] = deque()
        visited = {b1, b2}
        for bucket in (b1, b2):
            for slot in self._slots_of(bucket):
                queue.append((slot, (slot,)))
        depth_limit = MAX_BFS_DEPTH * SLOTS_PER_BUCKET * 2
        steps = 0
        while queue and steps < 4096:
            steps += 1
            slot, path = queue.popleft()
            if not self._occupied[slot]:
                return list(path)
            if len(path) > MAX_BFS_DEPTH:
                continue
            occupant = int(self._keys[slot])
            tag = self._tag(occupant)
            bucket = slot // SLOTS_PER_BUCKET
            alt = self._alt_bucket(bucket, tag)
            if alt in visited:
                continue
            visited.add(alt)
            for nxt in self._slots_of(alt):
                queue.append((nxt, path + (nxt,)))
        return None

    def _shift_along(self, path: List[int]) -> None:
        """Move occupants backwards along the path, values included."""
        for i in range(len(path) - 1, 0, -1):
            src, dst = path[i - 1], path[i]
            self._keys[dst] = self._keys[src]
            self._values[dst] = self._values[src]  # value moves with the key
            self._int_values[dst] = self._int_values[src]
            self._int_ok[dst] = self._int_ok[src]
            self._occupied[dst] = True
            self._occupied[src] = False
            self._values[src] = None
            self._int_ok[src] = False
            self._relocations += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def load_factor(self) -> float:
        """Fraction of slots in use."""
        return self._len / (self._num_buckets * SLOTS_PER_BUCKET)

    @property
    def num_buckets(self) -> int:
        """Bucket count (power of two)."""
        return self._num_buckets

    @property
    def relocations(self) -> int:
        """Total cuckoo moves performed (insertion-cost metric)."""
        return self._relocations

    def size_bytes(self) -> int:
        """Keys + tags region plus the separated value array."""
        num_slots = self._num_buckets * SLOTS_PER_BUCKET
        key_region = num_slots * (8 + TAG_BITS // 8)
        value_region = num_slots * self._value_size
        return key_region + value_region
