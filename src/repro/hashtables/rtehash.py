"""A functional model of DPDK's ``rte_hash`` (paper Figures 8–10 comparator).

DPDK's ``rte_hash`` is a bucketised hash table: fixed-capacity buckets of 8
entries, each entry summarised by a 32-bit signature; keys whose primary
bucket overflows are placed in a secondary bucket derived from the
signature.  If both buckets of a key are full the insert fails (the real
library optionally chains an extendable bucket; the paper benchmarked the
cuckoo table against the plain configuration, which this model follows).

Compared to the 4-way cuckoo table, the 8-entry buckets mean more key
comparisons per lookup and a lower safe occupancy — the structural reasons
the paper's extended cuckoo table beats ``rte_hash`` by ~50%.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key
from repro.hashtables.interface import (
    FibTable,
    TableFullError,
    canonical,
    canonical_many,
)

#: Entries per bucket (rte_hash's RTE_HASH_BUCKET_ENTRIES).
BUCKET_ENTRIES = 8


class RteHashTable(FibTable):
    """Two-choice bucketised signature hash table in the rte_hash mould.

    Args:
        capacity: expected entries; sized for ~50% occupancy.  Without
            cuckoo-style displacement a bucketised table must be provisioned
            well below full, which is exactly the memory disadvantage versus
            the >95%-occupancy cuckoo FIB that the paper exploits.
        value_size: bytes charged per value by the size accounting.
    """

    def __init__(self, capacity: int, value_size: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        buckets_needed = max(1, int(capacity / (BUCKET_ENTRIES * 0.5)) + 1)
        self._num_buckets = 1 << (buckets_needed - 1).bit_length()
        self._mask = self._num_buckets - 1
        num_slots = self._num_buckets * BUCKET_ENTRIES
        self._keys = np.zeros(num_slots, dtype=np.uint64)
        self._sigs = np.zeros(num_slots, dtype=np.uint32)
        self._occupied = np.zeros(num_slots, dtype=bool)
        self._values: List[Any] = [None] * num_slots
        self._value_size = value_size
        self._len = 0

    def _sig_and_buckets(self, ckey: int) -> Tuple[int, int, int]:
        arr = np.asarray([ckey], dtype=np.uint64)
        h = int(hashfamily.fib_hash(arr)[0])
        sig = h & 0xFFFFFFFF or 1
        primary = (h >> 32) & self._mask
        secondary = (primary ^ (sig * 0x5BD1E995 & 0xFFFFFFFF)) & self._mask
        return sig, primary, secondary

    def _slots_of(self, bucket: int) -> range:
        start = bucket * BUCKET_ENTRIES
        return range(start, start + BUCKET_ENTRIES)

    def insert(self, key: Key, value: Any) -> None:
        ckey = canonical(key)
        sig, b1, b2 = self._sig_and_buckets(ckey)

        # Overwrite when present (signature pre-filter, then key compare).
        for bucket in (b1, b2):
            for slot in self._slots_of(bucket):
                if (
                    self._occupied[slot]
                    and int(self._sigs[slot]) == sig
                    and int(self._keys[slot]) == ckey
                ):
                    self._values[slot] = value
                    return

        # Place into the emptier of the two buckets (two-choice balancing),
        # which postpones overflow in lieu of displacement.
        def free_slots(bucket: int) -> list:
            return [s for s in self._slots_of(bucket) if not self._occupied[s]]

        free1, free2 = free_slots(b1), free_slots(b2)
        chosen = max((free1, free2), key=len)
        if not chosen:
            raise TableFullError("both rte_hash buckets full")
        slot = chosen[0]
        self._keys[slot] = ckey
        self._sigs[slot] = sig
        self._occupied[slot] = True
        self._values[slot] = value
        self._len += 1

    def lookup(self, key: Key) -> Optional[Any]:
        ckey = canonical(key)
        sig, b1, b2 = self._sig_and_buckets(ckey)
        for bucket in (b1, b2):
            for slot in self._slots_of(bucket):
                if (
                    self._occupied[slot]
                    and int(self._sigs[slot]) == sig
                    and int(self._keys[slot]) == ckey
                ):
                    return self._values[slot]
        return None

    def lookup_slots(self, keys: Union[Sequence[Key], np.ndarray]) -> np.ndarray:
        """Vectorised slot resolution; ``-1`` marks absent keys.

        Probes both candidate buckets of every key at once — the array
        analogue of the scalar double-bucket scan, preserving its
        primary-before-secondary match order.
        """
        ckeys = canonical_many(keys)
        n = ckeys.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        h = hashfamily.fib_hash(ckeys)
        sigs = (h & np.uint64(0xFFFFFFFF)).astype(np.uint64)
        sigs[sigs == 0] = 1
        mask = np.uint64(self._mask)
        primary = (h >> np.uint64(32)) & mask
        with np.errstate(over="ignore"):
            secondary = (primary ^ (sigs * np.uint64(0x5BD1E995) & np.uint64(0xFFFFFFFF))) & mask
        base = np.concatenate(
            [primary[:, None], secondary[:, None]], axis=1
        ) * np.uint64(BUCKET_ENTRIES)
        # (n, 2 * BUCKET_ENTRIES) candidate slots, primary bucket first.
        slots = (
            base[:, :, None] + np.arange(BUCKET_ENTRIES, dtype=np.uint64)
        ).reshape(n, 2 * BUCKET_ENTRIES).astype(np.int64)
        match = (
            self._occupied[slots]
            & (self._sigs[slots].astype(np.uint64) == sigs[:, None])
            & (self._keys[slots] == ckeys[:, None])
        )
        any_hit = match.any(axis=1)
        first = match.argmax(axis=1)
        return np.where(
            any_hit, slots[np.arange(n), first], np.int64(-1)
        ).astype(np.int64)

    def lookup_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> List[Optional[Any]]:
        """Batch lookup via the vectorised slot probe."""
        slots = self.lookup_slots(keys)
        results: List[Optional[Any]] = [None] * slots.size
        for i in np.nonzero(slots >= 0)[0]:
            results[int(i)] = self._values[int(slots[i])]
        return results

    def lookup_batch_array(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        missing: int = -1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-native batch lookup (see :meth:`FibTable.lookup_batch_array`)."""
        slots = self.lookup_slots(keys)
        found = slots >= 0
        values = np.full(slots.size, missing, dtype=np.int64)
        for i in np.nonzero(found)[0]:
            value = self._values[int(slots[i])]
            if not isinstance(value, (int, np.integer)) or isinstance(
                value, bool
            ):
                raise TypeError(
                    f"{type(self).__name__} holds non-integer values; "
                    "use lookup_batch()"
                )
            values[i] = int(value)
        return found, values

    def delete(self, key: Key) -> bool:
        ckey = canonical(key)
        sig, b1, b2 = self._sig_and_buckets(ckey)
        for bucket in (b1, b2):
            for slot in self._slots_of(bucket):
                if (
                    self._occupied[slot]
                    and int(self._sigs[slot]) == sig
                    and int(self._keys[slot]) == ckey
                ):
                    self._occupied[slot] = False
                    self._keys[slot] = 0
                    self._sigs[slot] = 0
                    self._values[slot] = None
                    self._len -= 1
                    return True
        return False

    def __len__(self) -> int:
        return self._len

    def load_factor(self) -> float:
        """Fraction of slots in use."""
        return self._len / (self._num_buckets * BUCKET_ENTRIES)

    def size_bytes(self) -> int:
        """Keys + signatures + values (interleaved layout, as in DPDK)."""
        num_slots = self._num_buckets * BUCKET_ENTRIES
        return num_slots * (8 + 4 + self._value_size)
