"""Chaining hash table: the forwarding engine's original FIB (paper §6.2).

The commercial EPC stack's Packet Forwarding Engine used a chaining hash
table "the performance of which drops dramatically as the number of tunnels
increases" — chains grow with load, each link costing a dependent memory
read.  It is the implicit baseline the paper replaces with ``rte_hash`` and
the extended cuckoo table, and it serves here both as a comparator and as
the reference model for chain-length statistics used by the cache model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core import hashfamily
from repro.core.setsep import Key
from repro.hashtables.interface import FibTable, canonical


class ChainingHashTable(FibTable):
    """Classic bucket-of-chains hash table with a fixed bucket count.

    Args:
        num_buckets: fixed directory size.  Unlike the cuckoo table the
            directory does not grow, so the average chain length — and the
            dependent reads per lookup — grows linearly with occupancy,
            reproducing the performance collapse the paper describes.
        value_size: bytes charged per value by the size accounting.
    """

    #: Bytes charged per chain link: key (8) + value pointer (8) + next (8).
    LINK_OVERHEAD = 24

    def __init__(self, num_buckets: int, value_size: int = 8) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        self._num_buckets = num_buckets
        self._buckets: List[List[Tuple[int, Any]]] = [
            [] for _ in range(num_buckets)
        ]
        self._value_size = value_size
        self._len = 0

    def _bucket_of(self, ckey: int) -> List[Tuple[int, Any]]:
        arr = np.asarray([ckey], dtype=np.uint64)
        index = int(
            hashfamily.reduce_range(hashfamily.fib_hash(arr), self._num_buckets)[0]
        )
        return self._buckets[index]

    def insert(self, key: Key, value: Any) -> None:
        ckey = canonical(key)
        chain = self._bucket_of(ckey)
        for i, (existing, _) in enumerate(chain):
            if existing == ckey:
                chain[i] = (ckey, value)
                return
        chain.append((ckey, value))
        self._len += 1

    def lookup(self, key: Key) -> Optional[Any]:
        ckey = canonical(key)
        for existing, value in self._bucket_of(ckey):
            if existing == ckey:
                return value
        return None

    def delete(self, key: Key) -> bool:
        ckey = canonical(key)
        chain = self._bucket_of(ckey)
        for i, (existing, _) in enumerate(chain):
            if existing == ckey:
                chain.pop(i)
                self._len -= 1
                return True
        return False

    def __len__(self) -> int:
        return self._len

    def average_chain_length(self) -> float:
        """Mean links traversed by a successful lookup (~1 + load/2)."""
        if not self._len:
            return 0.0
        total = sum(
            len(chain) * (len(chain) + 1) / 2 for chain in self._buckets
        )
        return total / self._len

    def max_chain_length(self) -> int:
        """Longest chain (tail-latency driver)."""
        return max((len(chain) for chain in self._buckets), default=0)

    def size_bytes(self) -> int:
        """Directory pointers plus chain links plus values."""
        directory = self._num_buckets * 8
        links = self._len * (self.LINK_OVERHEAD + self._value_size)
        return directory + links
