"""Common interface for the exact FIB tables.

Every FIB design the paper compares (cuckoo, chaining, rte_hash) offers the
same contract: exact key-to-value lookup with a real "not found" answer —
the property the compact GPT deliberately gives up, and the reason the
handling node can reject packets the GPT misroutes (§3.2).
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.hashfamily import canonical_key, canonical_keys
from repro.core.setsep import Key


class TableFullError(RuntimeError):
    """Raised when an insert cannot be placed (table at capacity)."""


class FibTable(abc.ABC):
    """Exact key/value table with size accounting for the cache model."""

    @abc.abstractmethod
    def insert(self, key: Key, value: Any) -> None:
        """Insert or overwrite an entry.

        Raises:
            TableFullError: if no slot can be found for the key.
        """

    @abc.abstractmethod
    def lookup(self, key: Key) -> Optional[Any]:
        """Exact lookup; returns ``None`` when the key is absent."""

    @abc.abstractmethod
    def delete(self, key: Key) -> bool:
        """Remove an entry; returns whether it existed."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident entries."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Memory footprint charged to this table (cache-model input)."""

    def __contains__(self, key: Key) -> bool:
        return self.lookup(key) is not None

    def lookup_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> List[Optional[Any]]:
        """Look up many keys; subclasses may vectorise."""
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        return [self.lookup(k) for k in keys]

    def lookup_batch_array(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        missing: int = -1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-native batch lookup for integer-valued tables.

        Returns ``(found, values)`` where ``found`` is a boolean array and
        ``values`` an ``int64`` array carrying ``missing`` for absent keys.
        This is the shape the batched forwarding fast path consumes — no
        per-key Python objects cross the boundary.  Tables holding
        non-integer values raise :class:`TypeError`; callers fall back to
        :meth:`lookup_batch`.
        """
        results = self.lookup_batch(keys)
        n = len(results)
        found = np.zeros(n, dtype=bool)
        values = np.full(n, missing, dtype=np.int64)
        for i, value in enumerate(results):
            if value is None:
                continue
            if not isinstance(value, (int, np.integer)):
                raise TypeError(
                    f"{type(self).__name__} holds non-integer values; "
                    "use lookup_batch()"
                )
            found[i] = True
            values[i] = int(value)
        return found, values

    def insert_many(self, pairs: Sequence[Tuple[Key, Any]]) -> None:
        """Bulk insert."""
        for key, value in pairs:
            self.insert(key, value)


def canonical(key: Key) -> int:
    """Shared key canonicalisation (same space as SetSep keys)."""
    return canonical_key(key)


def canonical_many(keys: Union[Sequence[Key], np.ndarray]) -> np.ndarray:
    """Vector key canonicalisation."""
    return canonical_keys(keys)
