"""FIB hash tables (paper §5.2 and the Figure 8–10 comparators).

* :class:`repro.hashtables.cuckoo.CuckooHashTable` — the ScaleBricks partial
  FIB: 4-way cuckoo hashing with the separated value array extension.
* :class:`repro.hashtables.chaining.ChainingHashTable` — the forwarding
  engine's original FIB, whose performance collapses as tunnels grow.
* :class:`repro.hashtables.rtehash.RteHashTable` — a model of DPDK's
  ``rte_hash`` (bucketised signature table), the paper's other comparator.
"""

from repro.hashtables.interface import FibTable, TableFullError
from repro.hashtables.cuckoo import CuckooHashTable
from repro.hashtables.chaining import ChainingHashTable
from repro.hashtables.rtehash import RteHashTable
from repro.hashtables.valuearray import ValueArray

__all__ = [
    "FibTable",
    "TableFullError",
    "CuckooHashTable",
    "ChainingHashTable",
    "RteHashTable",
    "ValueArray",
]
