"""ScaleBricks / SetSep reproduction (SIGCOMM 2015).

This package reproduces *"Scaling Up Clustered Network Appliances with
ScaleBricks"* (Zhou et al., SIGCOMM 2015): the SetSep compact set-separation
data structure, the Global Partition Table (GPT) built on it, the partial-FIB
cuckoo hash table, the four cluster FIB architectures the paper compares, and
the LTE-to-Internet gateway (EPC) application used to evaluate them.

Top-level convenience re-exports cover the most common entry points; the
subpackages hold the full API:

``repro.core``
    SetSep and its building blocks (hash family, group search, two-level
    hashing, deltas, parallel builder).
``repro.gpt``
    The Global Partition Table.
``repro.hashtables``
    Cuckoo / chaining / rte_hash-style FIB tables.
``repro.cluster``
    Cluster nodes, switch fabric, FIB architectures, RIB and update protocol.
``repro.epc``
    The LTE Evolved Packet Core gateway application and traffic harness.
``repro.model``
    Cache/throughput/latency models and the FIB-scaling analytics.
``repro.baselines``
    Related-work comparators (Bloom, BUFFALO, Bloomier, perfect hashing).
``repro.obs``
    Metrics registry (counters/gauges/histograms) and span tracing; every
    data-path component accepts an injectable registry.
"""

from repro.core.params import SetSepParams
from repro.core.setsep import SetSep
from repro.gpt.gpt import GlobalPartitionTable
from repro.hashtables.cuckoo import CuckooHashTable
from repro.cluster.cluster import Cluster, RouteBatchResult
from repro.cluster.architectures import Architecture
from repro.obs import NULL_REGISTRY, MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "SetSep",
    "SetSepParams",
    "GlobalPartitionTable",
    "CuckooHashTable",
    "Cluster",
    "RouteBatchResult",
    "Architecture",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "__version__",
]
