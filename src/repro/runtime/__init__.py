"""repro.runtime — the multi-process cluster runtime.

Everything else in this repository simulates the ScaleBricks cluster
inside one Python process.  This package runs it for real: a controller
process drives N node-daemon processes over length-prefixed framed
messages on local TCP sockets — GPT bootstrap as an SSEP snapshot on the
wire, the §4.5 owner/delta update protocol between live daemons, batched
raw-frame routing with exactly-once forwarding, heartbeat liveness and
§7 failure repair, and graceful drain/join with make-before-break
snapshot swaps.

Modules:

* :mod:`~repro.runtime.framing` — length-prefixed message transport;
* :mod:`~repro.runtime.protocol` — message catalogue and payload codecs;
* :mod:`~repro.runtime.daemon` — the node daemon (replica + FIB slice +
  RIB-owner role + data path);
* :mod:`~repro.runtime.controller` — bootstrap, updates, traffic
  injection, liveness, failure repair, drain/join;
* :mod:`~repro.runtime.liveness` — the heartbeat state machine;
* :mod:`~repro.runtime.launcher` — process spawning and the seeded
  differential workload behind ``repro runtime-demo``;
* :mod:`~repro.runtime.replication` — the replicated-log state machine
  with lease-based leader election (injected clocks, seeded timeouts)
  plus the in-memory :class:`ReplicaGroup` simulator;
* :mod:`~repro.runtime.replicated` — controller replicas as real
  processes and the leader-SIGKILL failover drill behind
  ``repro runtime-demo --replicas``.

``docs/runtime.md`` documents the wire protocol byte by byte.
"""

from repro.runtime.controller import RuntimeController
from repro.runtime.daemon import NodeDaemon, serve
from repro.runtime.framing import (
    FramedSocket,
    FramingError,
    pack_frame_list,
    pack_message,
    unpack_frame_list,
)
from repro.runtime.launcher import (
    LocalRuntime,
    report_json,
    run_demo,
    run_workload,
)
from repro.runtime.liveness import HeartbeatMonitor, NodeState
from repro.runtime.protocol import (
    ProtocolError,
    RouteOutcome,
    UpdateOp,
)
from repro.runtime.replicated import (
    ReplicaClient,
    ReplicaServer,
    ReplicaSet,
    run_replicated_workload,
)
from repro.runtime.replication import (
    LeadershipGuard,
    ManualClock,
    NotLeaderError,
    Replica,
    ReplicaGroup,
    ReplicaGuard,
    Role,
    StaleTermError,
    StaticGuard,
)

__all__ = [
    "RuntimeController",
    "NodeDaemon",
    "serve",
    "FramedSocket",
    "FramingError",
    "pack_frame_list",
    "pack_message",
    "unpack_frame_list",
    "LocalRuntime",
    "report_json",
    "run_demo",
    "run_workload",
    "HeartbeatMonitor",
    "NodeState",
    "ProtocolError",
    "RouteOutcome",
    "UpdateOp",
    "ReplicaClient",
    "ReplicaServer",
    "ReplicaSet",
    "run_replicated_workload",
    "LeadershipGuard",
    "ManualClock",
    "NotLeaderError",
    "Replica",
    "ReplicaGroup",
    "ReplicaGuard",
    "Role",
    "StaleTermError",
    "StaticGuard",
]
