"""Spawn, drive and audit a local multi-process ScaleBricks cluster.

Two layers live here:

* :class:`LocalRuntime` — a context manager that spawns N
  :class:`~repro.runtime.daemon.NodeDaemon` processes
  (``multiprocessing.Process``), each bound to an ephemeral local TCP
  port announced back through a pipe, with ``kill()`` (SIGKILL, for
  failure drills), graceful ``stop()`` and leak accounting;
* :func:`run_workload` / :func:`run_demo` — the differential harness:
  the same seeded workload is played against the socket cluster *and* an
  in-process :class:`~repro.epc.gateway.EpcGateway` shadow, frame by
  frame and update by update, and the report asserts byte-identical
  GTP-U output, identical per-TEID charging and CRC-identical GPT
  replicas.  Everything is pinned (per-frame ingress, update mix, flow
  population), so the same seed produces the same JSON report, byte for
  byte — the determinism the chaos and CI harnesses gate on.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.architectures import Architecture
from repro.core import serialize, shm
from repro.epc.fastpath import OUTER_SIZE
from repro.epc.gateway import EpcGateway
from repro.epc.packets import parse_ip
from repro.epc.traffic import FlowGenerator
from repro.obs.metrics import MetricsRegistry
from repro.runtime.controller import RuntimeController
from repro.runtime.daemon import NodeDaemon
from repro.runtime.protocol import (
    OP_INSERT,
    OP_REMOVE,
    REASON_TO_STATUS,
    RouteOutcome,
    STATUS_DELIVERED,
    UpdateOp,
)

#: The demo gateway's tunnel endpoint (TEST-NET-1, never routable).
DEMO_GATEWAY_IP = "192.0.2.1"


def _daemon_entry(host: str, conn) -> None:
    """Child-process body: serve one daemon, announce the bound port."""

    def ready(port: int) -> None:
        conn.send(port)
        conn.close()

    NodeDaemon(host=host, port=0).serve_forever(ready=ready)


class LocalRuntime:
    """A cluster of daemon child processes on loopback."""

    def __init__(self, num_nodes: int, host: str = "127.0.0.1") -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.host = host
        self.processes: List[multiprocessing.Process] = []
        self.addresses: List[Tuple[str, int]] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "LocalRuntime":
        """Spawn every daemon and wait for its bound port."""
        for _ in range(self.num_nodes):
            self._spawn()
        return self

    def _spawn(self, node_id: Optional[int] = None) -> Tuple[str, int]:
        parent, child = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_daemon_entry, args=(self.host, child), daemon=True
        )
        process.start()
        child.close()
        if not parent.poll(30.0):
            process.kill()
            raise RuntimeError("daemon did not announce its port in time")
        port = int(parent.recv())
        parent.close()
        address = (self.host, port)
        if node_id is None:
            self.processes.append(process)
            self.addresses.append(address)
        else:
            self.processes[node_id] = process
            self.addresses[node_id] = address
        return address

    def add_node(self) -> Tuple[str, int]:
        """Spawn one more daemon (for join drills); returns its address."""
        self.num_nodes += 1
        return self._spawn()

    def respawn(self, node_id: int) -> Tuple[str, int]:
        """Spawn a fresh daemon in a killed node's slot (rejoin drills).

        The replacement binds a new ephemeral port; pair with
        :meth:`RuntimeController.rejoin_node`, which re-announces the
        topology to every peer.
        """
        if self.processes[node_id].is_alive():
            raise ValueError(f"node {node_id} is still alive")
        return self._spawn(node_id)

    def kill(self, node_id: int) -> None:
        """SIGKILL a daemon — the §7 failure drill (no goodbye)."""
        process = self.processes[node_id]
        process.kill()
        process.join(timeout=10.0)

    def suspend(self, node_id: int) -> None:
        """SIGSTOP a daemon: alive but unresponsive — a SUSPECT maker.

        The process keeps its sockets open but answers nothing, which is
        exactly the grey failure fencing exists for.  Pair with
        :meth:`resume` or :meth:`kill`.
        """
        process = self.processes[node_id]
        assert process.pid is not None
        os.kill(process.pid, signal.SIGSTOP)

    def resume(self, node_id: int) -> None:
        """SIGCONT a suspended daemon (the grey failure clears)."""
        process = self.processes[node_id]
        assert process.pid is not None
        os.kill(process.pid, signal.SIGCONT)

    def stop(self) -> None:
        """Terminate every child still running and reap it."""
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=10.0)

    def leaked(self) -> List[int]:
        """Node ids whose child process is still alive (should be [])."""
        return [
            node_id
            for node_id, process in enumerate(self.processes)
            if process.is_alive()
        ]

    def __enter__(self) -> "LocalRuntime":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Differential workload
# ----------------------------------------------------------------------


def _compare_frames(
    shadow: Sequence[Tuple[object, Optional[bytes]]],
    wire: Sequence[RouteOutcome],
) -> Dict[str, int]:
    """Frame-by-frame shadow-vs-wire comparison (the §3 differential)."""
    assert len(shadow) == len(wire)
    divergences = 0
    delivered = 0
    dropped = 0
    byte_identical = True
    for (result, out), outcome in zip(shadow, wire):
        if out is not None:
            delivered += 1
            if (
                outcome.status != STATUS_DELIVERED
                or outcome.out != out
                or outcome.handler != result.handled_by
            ):
                divergences += 1
                if outcome.out != out:
                    byte_identical = False
        else:
            dropped += 1
            expected = REASON_TO_STATUS.get(result.reason, -1)
            if outcome.status != expected:
                divergences += 1
    return {
        "frames": len(wire),
        "delivered": delivered,
        "dropped": dropped,
        "divergences": divergences,
        "byte_identical": bool(byte_identical and divergences == 0),
    }


def _shadow_route(
    gateway: EpcGateway, frames: Sequence[bytes], ingress: Sequence[int]
) -> List[Tuple[object, Optional[bytes]]]:
    """Run frames through the in-process gateway, ingress pinned."""
    return [
        gateway.process_downstream(frame, ingress=int(node))
        for frame, node in zip(frames, ingress)
    ]


def _audit_state(
    controller: RuntimeController,
    gateway: EpcGateway,
    lost_charges: Optional[Dict[int, int]] = None,
) -> Dict[str, object]:
    """Global-state differential: charging dicts and GPT replica CRCs.

    ``lost_charges`` holds per-TEID bytes that died with a killed
    daemon's counters: the shadow's global charging dict still carries
    them (fate sharing, §7 — bearer state on the failed node is lost),
    so they are subtracted before the comparison.
    """
    statuses = controller.status_all()
    wire_charges: Dict[int, int] = {}
    for status in statuses.values():
        for teid, total in status["charges"].items():
            teid = int(teid)
            wire_charges[teid] = wire_charges.get(teid, 0) + int(total)
    shadow_charges = {
        int(teid): int(total)
        for teid, total in gateway.stats.bytes_charged.items()
        if int(total)
    }
    for teid, total in (lost_charges or {}).items():
        remaining = shadow_charges.get(teid, 0) - total
        if remaining:
            shadow_charges[teid] = remaining
        else:
            shadow_charges.pop(teid, None)
    wire_charges = {t: v for t, v in wire_charges.items() if v}
    cluster = gateway.cluster
    assert cluster is not None
    replica_crcs_equal = True
    for node_id, status in statuses.items():
        shadow_crc = serialize.fingerprint(cluster.nodes[node_id].gpt.setsep)
        if int(status["gpt_crc"]) != shadow_crc:
            replica_crcs_equal = False
    # Bounded mismatch breakdown: zeros on a clean run, and enough to
    # localise a divergence (over = wire charged more than the shadow,
    # e.g. a frame routed twice; under = wire missed a charge).
    over = sorted(
        t for t in wire_charges
        if wire_charges[t] > shadow_charges.get(t, 0)
    )
    under = sorted(
        t for t in shadow_charges
        if shadow_charges[t] > wire_charges.get(t, 0)
    )
    return {
        "statuses": statuses,
        "charging_identical": wire_charges == shadow_charges,
        "charged_teids": len(wire_charges),
        "charge_mismatches": {
            "over": len(over),
            "under": len(under),
            "sample": [
                [t, wire_charges.get(t, 0), shadow_charges.get(t, 0)]
                for t in (over + under)[:5]
            ],
        },
        "gpt_replicas_identical": replica_crcs_equal,
    }


def run_workload(
    addresses: Sequence[Tuple[str, int]],
    num_nodes: int,
    seed: int = 7,
    flows: int = 2000,
    packets: int = 4000,
    updates: int = 1000,
    kill_node: Optional[int] = None,
    killer: Optional[Callable[[int], None]] = None,
    fence_node: Optional[int] = None,
    suspender: Optional[Callable[[int], None]] = None,
    miss_threshold: int = 3,
    heartbeat_interval: float = 0.05,
    ping_timeout: float = 2.0,
    use_shm: bool = False,
) -> Dict[str, object]:
    """Drive the full differential workload against a live cluster.

    Phases: bootstrap from a seeded shadow gateway, routed traffic
    (half the packets), one liveness sweep, a seeded §4.5 update storm
    (connect/rehome/disconnect mix), an optional failure drill (SIGKILL
    with §7 repair, or a SIGSTOP-then-fence grey-failure drill), the
    remaining traffic, then the global audit.

    Args:
        addresses: daemon addresses, index = node id.
        num_nodes: cluster size (must match ``addresses``).
        seed: master seed; same seed ⇒ same report, byte for byte.
        flows: initial bearer population.
        packets: routed frames, split across the two traffic phases.
        updates: RIB operations in the update storm.
        kill_node: daemon to SIGKILL between the phases (None: no drill).
        killer: callback actually delivering the kill (from
            :meth:`LocalRuntime.kill`); required when ``kill_node`` or
            ``fence_node`` is set.
        fence_node: daemon to SIGSTOP between the phases, then fence
            (force-kill + immediate repair) once SUSPECT.  Mutually
            exclusive with ``kill_node``.
        suspender: callback delivering the SIGSTOP (from
            :meth:`LocalRuntime.suspend`); required with ``fence_node``.
        miss_threshold: consecutive heartbeat misses declaring death.
        heartbeat_interval: nominal probe period, recorded in the report
            (pacing is poll-driven, so this does not gate determinism).
        ping_timeout: heartbeat probe timeout in seconds (a suspended
            daemon costs one timeout per poll, so fence drills want this
            small).
        use_shm: publish GPT snapshots as shared-memory segments and
            bootstrap daemons by ``MSG_STATE_REF`` (scale tier); falls
            back to wire snapshots per daemon where unavailable.
    """
    if len(addresses) != num_nodes:
        raise ValueError("addresses and num_nodes disagree")
    if kill_node is not None and fence_node is not None:
        raise ValueError("kill_node and fence_node are mutually exclusive")
    if kill_node is not None:
        if killer is None:
            raise ValueError("kill_node requires a killer callback")
        if not 0 <= kill_node < num_nodes:
            raise ValueError("kill_node out of range")
    if fence_node is not None:
        if killer is None or suspender is None:
            raise ValueError(
                "fence_node requires killer and suspender callbacks"
            )
        if not 0 <= fence_node < num_nodes:
            raise ValueError("fence_node out of range")

    # The shadow: an in-process gateway with its own registry, living the
    # exact same life as the socket cluster.
    gateway = EpcGateway(
        Architecture.SCALEBRICKS,
        num_nodes,
        parse_ip(DEMO_GATEWAY_IP),
        registry=MetricsRegistry(),
    )
    generator = FlowGenerator(seed)
    live_flows = generator.populate(gateway, flows)
    gateway.start()

    controller = RuntimeController(
        addresses, miss_threshold=miss_threshold, ping_timeout=ping_timeout,
        use_shm=use_shm,
    )
    controller.killer = killer
    controller.connect()
    bootstrap = controller.bootstrap_from_gateway(gateway)

    ingress_rng = np.random.default_rng(seed * 65537 + 11)
    report: Dict[str, object] = {
        "architecture": "scalebricks",
        "nodes": num_nodes,
        "seed": seed,
    }
    try:
        # -- traffic, phase 1 (everything alive) -----------------------
        first = packets // 2
        frames = generator.packet_stream(live_flows, first)
        ingress = ingress_rng.integers(num_nodes, size=first)
        shadow = _shadow_route(gateway, frames, ingress)
        wire = controller.route_frames(frames, [int(n) for n in ingress])
        phase1 = _compare_frames(shadow, wire)

        # Charges the failure drill will destroy: the drill's victim
        # keeps its phase-1 charging counters only in its own memory.
        victim = kill_node if kill_node is not None else fence_node
        lost_charges: Dict[int, int] = {}
        if victim is not None:
            for result, out in shadow:
                if out is not None and result.handled_by == victim:
                    teid = int(result.value)
                    lost_charges[teid] = (
                        lost_charges.get(teid, 0) + len(out) - OUTER_SIZE
                    )

        # -- liveness sweep (all alive) --------------------------------
        controller.poll_liveness()
        pre_kill_dead = controller.monitor.dead_nodes()

        # -- §4.5 update storm -----------------------------------------
        update_rng = np.random.default_rng(seed * 65537 + 13)
        ops: List[UpdateOp] = []
        connects = rehomes = disconnects = 0
        for _ in range(updates):
            action = int(update_rng.integers(100))
            if action < 30 or len(live_flows) <= 2:
                flow = generator.flows(1)[0]
                record = gateway.connect(
                    flow,
                    generator.base_station_for(flow),
                    generator.region_for(flow),
                )
                ops.append(UpdateOp(
                    OP_INSERT, record.key, record.handling_node,
                    record.teid, record.base_station_ip,
                ))
                live_flows.append(flow)
                connects += 1
            elif action < 85:
                flow = live_flows[int(update_rng.integers(len(live_flows)))]
                target = int(update_rng.integers(num_nodes))
                record = gateway.controller.record_for_key(flow.key())
                assert record is not None
                if record.handling_node == target:
                    continue
                moved = gateway.rehome_flow(flow, target)
                ops.append(UpdateOp(
                    OP_INSERT, moved.key, target, moved.teid,
                    moved.base_station_ip,
                ))
                rehomes += 1
            else:
                index = int(update_rng.integers(len(live_flows)))
                flow = live_flows.pop(index)
                assert gateway.disconnect(flow)
                ops.append(UpdateOp(OP_REMOVE, flow.key()))
                disconnects += 1
        update_totals = controller.push_updates(ops)
        update_totals["connects"] = connects
        update_totals["rehomes"] = rehomes
        update_totals["disconnects"] = disconnects
        update_totals["mean_delta_bits"] = round(
            update_totals["delta_bits"]
            / max(1, update_totals["delta_broadcasts"]),
            2,
        )

        # -- optional failure drill (§7) -------------------------------
        liveness: Dict[str, object] = {
            "interval_s": heartbeat_interval,
            "miss_threshold": miss_threshold,
            "pre_kill_dead": pre_kill_dead,
            "killed_node": kill_node,
            "fenced_node": fence_node,
            "detection_polls": None,
            "recovered_flows": 0,
        }
        if kill_node is not None:
            controller.kill_node(kill_node)
            liveness["detection_polls"] = controller.await_detection(
                kill_node
            )
            repair = controller.handle_node_failure(kill_node, gateway)
            liveness["recovered_flows"] = repair.affected_flows
            liveness["adopted_rib_entries"] = (
                repair.detail["adopted_rib_entries"]
            )
        elif fence_node is not None:
            # Grey failure: the daemon freezes (SIGSTOP) but its sockets
            # stay open, so it never goes DEAD on its own — exactly the
            # limbo fencing exists for.  One poll records the miss
            # (ALIVE → SUSPECT), then the fence force-kills and repairs
            # without waiting out the remaining miss_threshold.
            assert suspender is not None
            suspender(fence_node)
            controller.poll_liveness()
            liveness["detection_polls"] = 1
            fence = controller.fence_node(fence_node, gateway)
            liveness["recovered_flows"] = fence.affected_flows
            liveness["adopted_rib_entries"] = (
                fence.detail["adopted_rib_entries"]
            )
            liveness["state_before_fence"] = fence.detail["state_before"]

        # -- traffic, phase 2 (post-update, maybe post-failure) --------
        # A few never-connected flows ride along: the GPT still maps them
        # somewhere (one-sided error, §3.3) and the exact FIB refuses
        # them — on both sides of the differential.
        second = packets - first
        frames = generator.packet_stream(live_flows, second)
        frames.extend(
            generator.packet_stream(generator.flows(8), min(64, second))
        )
        ingress = ingress_rng.integers(num_nodes, size=len(frames))
        shadow = _shadow_route(gateway, frames, ingress)
        wire = controller.route_frames(frames, [int(n) for n in ingress])
        phase2 = _compare_frames(shadow, wire)

        # -- the global audit ------------------------------------------
        audit = _audit_state(controller, gateway, lost_charges)
        statuses = audit.pop("statuses")

        differential = {
            "frames": phase1["frames"] + phase2["frames"],
            "delivered": phase1["delivered"] + phase2["delivered"],
            "dropped": phase1["dropped"] + phase2["dropped"],
            "divergences": phase1["divergences"] + phase2["divergences"],
            "byte_identical": bool(
                phase1["byte_identical"] and phase2["byte_identical"]
            ),
            "charging_identical": audit["charging_identical"],
            "charged_teids": audit["charged_teids"],
            "gpt_replicas_identical": audit["gpt_replicas_identical"],
        }
        update_totals["snapshot_bytes_shipped"] = (
            bootstrap["total_shipped_bytes"]
        )
        report["shm"] = {
            "enabled": controller.use_shm,
            "bootstrap_attached": int(bootstrap.get("shm_attached", 0)),
            "segment": bootstrap.get("segment"),
        }
        report["differential"] = differential
        report["update_protocol"] = update_totals
        report["liveness"] = liveness
        report["daemons"] = {
            str(node_id): {
                "fib_entries": status["fib_entries"],
                "rib_entries": status["rib_entries"],
                "gpt_bytes": status["gpt_bytes"],
                "frames_local": status["counters"].get(
                    "runtime.frames.local", 0
                ),
                "frames_forwarded": status["counters"].get(
                    "runtime.frames.forwarded", 0
                ),
                "frames_received": status["counters"].get(
                    "runtime.frames.received", 0
                ),
                "deltas_applied": status["counters"].get(
                    "runtime.deltas.applied", 0
                ),
            }
            for node_id, status in sorted(statuses.items())
        }
        report["ok"] = bool(
            differential["divergences"] == 0
            and differential["byte_identical"]
            and differential["charging_identical"]
            and differential["gpt_replicas_identical"]
        )
    finally:
        controller.shutdown_all()
    return report


def run_demo(
    num_nodes: int = 4,
    seed: int = 7,
    flows: int = 2000,
    packets: int = 4000,
    updates: int = 1000,
    kill_node: Optional[int] = None,
    fence_node: Optional[int] = None,
    miss_threshold: int = 3,
    heartbeat_interval: float = 0.05,
    use_shm: bool = False,
) -> Dict[str, object]:
    """Spawn a local cluster, run the workload, account for every child."""
    runtime = LocalRuntime(num_nodes)
    with runtime:
        report = run_workload(
            runtime.addresses,
            num_nodes,
            seed=seed,
            flows=flows,
            packets=packets,
            updates=updates,
            kill_node=kill_node,
            killer=runtime.kill,
            fence_node=fence_node,
            suspender=runtime.suspend,
            miss_threshold=miss_threshold,
            heartbeat_interval=heartbeat_interval,
            ping_timeout=0.5 if fence_node is not None else 2.0,
            use_shm=use_shm,
        )
        runtime.stop()
        report["leaked_processes"] = len(runtime.leaked())
        # This process published any segments (SegmentPublisher names
        # embed its pid); all must be unlinked by controller shutdown.
        report["leaked_shm_segments"] = len(
            shm.list_segments(f"{shm.SEGMENT_PREFIX}{os.getpid():x}-")
        )
    return report


def report_json(report: Dict[str, object]) -> str:
    """Canonical JSON for a workload report (sorted keys, stable)."""
    return json.dumps(report, sort_keys=True, indent=2)
