"""Replicated controller state machine with lease-based leader election.

The runtime's controller was a single process: one SIGKILL and the
cluster loses membership, the GPT epoch and RIB ownership — exactly the
availability gap the paper's §7 failure handling closes for *data*
nodes.  This module closes it for the *control plane*: a small,
self-contained replicated log (Raft-shaped, no external dependencies)
over which 3 controller replicas agree on the sequence of controller
verbs (join/drain/kill/fence/repair/epoch-bump, plus the seeded
workload commands the drills replay).

Design points, in the repo's determinism doctrine:

* **Injected clocks.**  The core :class:`Replica` never reads the wall
  clock; it asks an injected ``clock.now()``.  Tests drive a
  :class:`ManualClock` so elections are exactly reproducible; the
  multi-process tier (:mod:`repro.runtime.replicated`) injects
  ``time.monotonic``.
* **Seeded election timeouts.**  The randomized election timeout for
  ``(seed, node, term)`` is drawn from a dedicated
  :class:`random.Random` — same seed ⇒ same election winner, every
  run, while still being "randomized" enough to break ties.
* **Lease-based election.**  A follower that has heard from a live
  leader within ``lease_duration`` refuses votes (no disruption by a
  rejoining replica); a leader that cannot reach a majority within its
  lease steps down (no split brain across a partition: the deposed
  side stops acting before the other side can elect).
* **Majority-ack commit.**  An entry is committed once replicated on a
  majority *and* its term is the leader's current term (the standard
  Raft §5.4.2 rule); leaders append a no-op on election so earlier-term
  entries commit promptly.
* **No persistence — honest mitigation.**  Replicas keep volatile
  state only.  A restarted replica therefore rejoins as a *quiescent
  observer*: it neither campaigns nor grants votes until it has heard
  from the current leader or an ``observer_grace`` longer than any
  election timeout plus lease has passed, so a vote it forgot it cast
  can no longer elect a second leader for the same term.

The in-memory :class:`ReplicaGroup` wires N replicas through FIFO
message queues with explicit crash/restart/partition controls — the
unit-test and ops-tier harness.  The wire tier maps the same payload
dicts onto ``MSG_VOTE``/``MSG_APPEND`` frames (see
:mod:`repro.runtime.protocol`).
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Role",
    "LogEntry",
    "Message",
    "ManualClock",
    "NotLeaderError",
    "StaleTermError",
    "LeadershipGuard",
    "StaticGuard",
    "ReplicaGuard",
    "Replica",
    "ReplicaGroup",
    "VOTE",
    "VOTE_REPLY",
    "APPEND",
    "APPEND_REPLY",
]

#: Abstract message kinds; the wire tier maps them to framed types.
VOTE = "vote"
VOTE_REPLY = "vote_reply"
APPEND = "append"
APPEND_REPLY = "append_reply"


class Role(Enum):
    """The three Raft roles."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    """One replicated controller verb.

    ``cid`` is the client-chosen command id used for exactly-once
    dedup under retry; the no-op a fresh leader appends uses ``""``.
    """

    term: int
    index: int
    cid: str
    verb: str
    payload: dict

    def to_dict(self) -> dict:
        """JSON-ready form, shipped verbatim in APPEND frames."""
        return {
            "term": self.term,
            "index": self.index,
            "cid": self.cid,
            "verb": self.verb,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LogEntry":
        return cls(
            term=int(doc["term"]),
            index=int(doc["index"]),
            cid=str(doc["cid"]),
            verb=str(doc["verb"]),
            payload=dict(doc["payload"]),
        )


@dataclass(frozen=True)
class Message:
    """An outbound message: deliver ``payload`` of ``kind`` to ``dest``."""

    dest: int
    kind: str
    payload: dict


class ManualClock:
    """An injected clock advanced explicitly by the test harness."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError("clock cannot run backwards")
        self._now += dt
        return self._now


class NotLeaderError(RuntimeError):
    """A verb was submitted to a replica that is not the leader."""

    def __init__(self, leader: Optional[int], term: int) -> None:
        super().__init__(f"not leader (leader hint: {leader}, term {term})")
        self.leader = leader
        self.term = term


class StaleTermError(RuntimeError):
    """A leader-only action was attempted without a current lease."""


class LeadershipGuard:
    """Admission check for leader-only controller actions.

    ``acquire`` is called when a leader-only action (heartbeat sweep,
    auto-fence) *starts* and returns the term the action runs under;
    ``validate`` is re-checked immediately before the irreversible
    step (the SIGKILL in a fence) so an in-flight action of a deposed
    leader is rejected by term.
    """

    def acquire(self, action: str) -> int:
        raise NotImplementedError

    def validate(self, term: int, action: str) -> None:
        raise NotImplementedError


class StaticGuard(LeadershipGuard):
    """Single-controller deployments: always the leader, term 0."""

    def acquire(self, action: str) -> int:
        return 0

    def validate(self, term: int, action: str) -> None:
        if term != 0:
            raise StaleTermError(
                f"{action}: static guard only issues term 0, got {term}"
            )


class ReplicaGuard(LeadershipGuard):
    """Guard bound to a :class:`ReplicaGroup` (optionally one replica).

    With ``node_id`` pinned, the action is valid only while *that*
    replica leads; otherwise any current leader validates, but the
    term captured at ``acquire`` must still be the leader's term when
    ``validate`` runs — a re-election in between raises.
    """

    def __init__(self, group: "ReplicaGroup", node_id: Optional[int] = None):
        self.group = group
        self.node_id = node_id

    def _leader_term(self, action: str) -> Tuple[int, int]:
        leader = self.group.leader()
        if leader is None:
            raise StaleTermError(f"{action}: no elected leader")
        if self.node_id is not None and leader != self.node_id:
            raise StaleTermError(
                f"{action}: replica {self.node_id} is not the leader "
                f"(leader is {leader})"
            )
        return leader, self.group.replicas[leader].term

    def acquire(self, action: str) -> int:
        return self._leader_term(action)[1]

    def validate(self, term: int, action: str) -> None:
        current = self._leader_term(action)[1]
        if current != term:
            raise StaleTermError(
                f"{action}: term advanced {term} -> {current}; "
                "the issuing leader was deposed"
            )


class Replica:
    """The core replicated-log state machine (transport-agnostic).

    All timing comes from the injected ``clock``; all randomness from
    ``(seed, node_id, term)``.  Handlers and :meth:`tick` return the
    outbound :class:`Message` list; the caller owns delivery.
    """

    def __init__(
        self,
        node_id: int,
        peers: Sequence[int],
        clock,
        seed: int = 0,
        election_timeout: Tuple[float, float] = (1.0, 2.0),
        heartbeat_interval: float = 0.25,
        lease_duration: float = 0.9,
        observer_grace: float = 0.0,
        first_election_delay: Optional[float] = None,
    ) -> None:
        if node_id in peers:
            raise ValueError("peers must exclude the replica itself")
        tmin, tmax = election_timeout
        if not 0 < tmin <= tmax:
            raise ValueError("election timeout range must be positive")
        if heartbeat_interval >= tmin:
            raise ValueError("heartbeat interval must undercut election timeout")
        if lease_duration > tmax:
            raise ValueError("lease must not outlive the longest election timeout")
        self.node_id = node_id
        self.peers = tuple(peers)
        self.clock = clock
        self.seed = seed
        self.election_timeout = (float(tmin), float(tmax))
        self.heartbeat_interval = float(heartbeat_interval)
        self.lease_duration = float(lease_duration)

        self.role = Role.FOLLOWER
        self.term = 0
        self.voted_for: Optional[int] = None
        self.leader_id: Optional[int] = None
        #: 1-based log with a sentinel at index 0.
        self.log: List[LogEntry] = [LogEntry(0, 0, "", "sentinel", {})]
        self.commit_index = 0
        self.last_applied = 0
        #: Leader's advertised "executed on the wire up to" index.
        self.executed_hint = 0

        now = clock.now()
        #: Until this instant the replica neither campaigns nor votes.
        self.observer_until = now + float(observer_grace)
        #: Follower lease: votes are refused while ``now`` is below it.
        self._lease_until = 0.0
        # A cold cluster would otherwise idle out a full randomized
        # timeout before anyone campaigns; callers that know their
        # replica rank stagger the *first* deadline deterministically
        # (lowest rank fires first and wins).  Any append or granted
        # vote re-randomizes the deadline as usual.
        self._election_deadline = now + (
            float(first_election_delay)
            if first_election_delay is not None
            else self._draw_timeout(self.term)
        )
        # Leader-only volatile state.
        self._next_index: Dict[int, int] = {}
        self._match_index: Dict[int, int] = {}
        self._ack_time: Dict[int, float] = {}
        self._next_heartbeat = 0.0
        self._votes: set = set()
        self._cid_index: Dict[str, int] = {}
        #: Set by the hosting tier while committed entries are still
        #: being applied to the state machine.  A backlogged replica
        #: defers campaigning (it could win on log up-to-dateness yet
        #: be unable to execute anything for a long time, and its
        #: doomed-or-stalled campaigns bump terms and reset every other
        #: candidate's clock).  It still votes and acks normally.
        self.apply_backlog = False

    # -- derived views -------------------------------------------------

    @property
    def last_index(self) -> int:
        return len(self.log) - 1

    @property
    def last_term(self) -> int:
        return self.log[-1].term

    @property
    def quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    def entry(self, index: int) -> LogEntry:
        return self.log[index]

    def entries_from(self, index: int) -> List[LogEntry]:
        return self.log[index:]

    def committed_cids(self) -> List[str]:
        """cids of all committed non-noop entries, in log order."""
        return [
            e.cid
            for e in self.log[1 : self.commit_index + 1]
            if e.cid
        ]

    def take_applies(self) -> List[LogEntry]:
        """Entries newly committed since the last call (the apply queue)."""
        if self.commit_index <= self.last_applied:
            return []
        batch = self.log[self.last_applied + 1 : self.commit_index + 1]
        self.last_applied = self.commit_index
        return batch

    def status(self) -> dict:
        """JSON-ready replica status (served by ``ctl status``)."""
        return {
            "node": self.node_id,
            "role": self.role.value,
            "term": self.term,
            "leader": self.leader_id,
            "commit_index": self.commit_index,
            "last_index": self.last_index,
            "executed_hint": self.executed_hint,
            "observer": self.clock.now() < self.observer_until,
        }

    # -- deterministic timing ------------------------------------------

    def _draw_timeout(self, term: int) -> float:
        tmin, tmax = self.election_timeout
        rng = random.Random(
            self.seed * 1_000_003 + self.node_id * 8191 + term
        )
        return rng.uniform(tmin, tmax)

    def _reset_election_deadline(self) -> None:
        self._election_deadline = (
            self.clock.now() + self._draw_timeout(self.term)
        )

    # -- role transitions ----------------------------------------------

    def _become_follower(self, term: int, leader: Optional[int]) -> None:
        if term > self.term:
            self.voted_for = None
        self.term = term
        self.role = Role.FOLLOWER
        self.leader_id = leader
        self._votes = set()
        self._reset_election_deadline()

    def _become_leader(self) -> List[Message]:
        self.role = Role.LEADER
        self.leader_id = self.node_id
        now = self.clock.now()
        self._next_index = {p: self.last_index + 1 for p in self.peers}
        self._match_index = {p: 0 for p in self.peers}
        self._ack_time = {p: now for p in self.peers}
        self._next_heartbeat = now
        # Raft §5.4.2: commit a current-term entry promptly so earlier
        # terms' entries become committed too.
        self.log.append(LogEntry(self.term, self.last_index + 1, "", "noop", {}))
        return self._broadcast_appends()

    def _start_election(self) -> List[Message]:
        self.term += 1
        self.role = Role.CANDIDATE
        self.leader_id = None
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self._reset_election_deadline()
        if self.quorum == 1:  # degenerate single-replica group
            return self._become_leader()
        payload = {
            "term": self.term,
            "candidate": self.node_id,
            "last_term": self.last_term,
            "last_index": self.last_index,
        }
        return [Message(p, VOTE, dict(payload)) for p in self.peers]

    # -- the clock tick ------------------------------------------------

    def tick(self) -> List[Message]:
        now = self.clock.now()
        if self.role is Role.LEADER:
            # Lease check: a leader that cannot prove a majority heard
            # from it within the lease steps down before the other side
            # of a partition can elect — no split brain.
            acks = sorted(
                [now] + [self._ack_time[p] for p in self.peers], reverse=True
            )
            support = acks[self.quorum - 1]
            if now - support > self.lease_duration:
                self._become_follower(self.term, None)
                return []
            if now >= self._next_heartbeat:
                self._next_heartbeat = now + self.heartbeat_interval
                return self._broadcast_appends()
            return []
        if now < self.observer_until:
            return []  # quiescent observer: no campaigning yet
        if now >= self._election_deadline:
            if self.apply_backlog:
                # Defer by a fraction of a full timeout: long enough
                # that replicas draining the same backlog decorrelate,
                # short enough that the election follows the drain
                # promptly.
                self._election_deadline = now + (
                    self._draw_timeout(self.term) / 4.0
                )
                return []
            return self._start_election()
        return []

    # -- message handling ----------------------------------------------

    def handle(self, kind: str, payload: dict) -> List[Message]:
        handler = {
            VOTE: self._on_vote,
            VOTE_REPLY: self._on_vote_reply,
            APPEND: self._on_append,
            APPEND_REPLY: self._on_append_reply,
        }.get(kind)
        if handler is None:
            raise ValueError(f"unknown replication message kind {kind!r}")
        return handler(payload)

    def _on_vote(self, payload: dict) -> List[Message]:
        term = int(payload["term"])
        candidate = int(payload["candidate"])
        now = self.clock.now()
        reply = Message(
            candidate,
            VOTE_REPLY,
            {"term": self.term, "voter": self.node_id, "granted": False},
        )
        if term < self.term:
            return [reply]
        # Lease refusal: a follower that heard from a live leader within
        # the lease ignores the campaign entirely (it does not even
        # adopt the higher term) — a rejoining replica cannot depose a
        # healthy leader.
        if (
            self.role is not Role.LEADER
            and self.leader_id is not None
            and now < self._lease_until
        ):
            return [reply]
        if now < self.observer_until:
            return [reply]  # observers forfeit their vote entirely
        if term > self.term:
            self._become_follower(term, None)
        up_to_date = (int(payload["last_term"]), int(payload["last_index"])) >= (
            self.last_term,
            self.last_index,
        )
        if self.voted_for in (None, candidate) and up_to_date:
            self.voted_for = candidate
            self._reset_election_deadline()
            return [
                Message(
                    candidate,
                    VOTE_REPLY,
                    {"term": self.term, "voter": self.node_id, "granted": True},
                )
            ]
        reply.payload["term"] = self.term
        return [reply]

    def _on_vote_reply(self, payload: dict) -> List[Message]:
        term = int(payload["term"])
        if term > self.term:
            self._become_follower(term, None)
            return []
        if self.role is not Role.CANDIDATE or term < self.term:
            return []
        if payload.get("granted"):
            self._votes.add(int(payload["voter"]))
            if len(self._votes) >= self.quorum:
                return self._become_leader()
        return []

    def _append_payload(self, peer: int) -> dict:
        prev = self._next_index[peer] - 1
        entries = self.log[prev + 1 :]
        return {
            "term": self.term,
            "leader": self.node_id,
            "prev_index": prev,
            "prev_term": self.log[prev].term,
            "entries": [e.to_dict() for e in entries],
            "commit": self.commit_index,
            "executed": self.executed_hint,
        }

    def _broadcast_appends(self) -> List[Message]:
        return [
            Message(p, APPEND, self._append_payload(p)) for p in self.peers
        ]

    def _on_append(self, payload: dict) -> List[Message]:
        term = int(payload["term"])
        leader = int(payload["leader"])
        reply = {
            "term": self.term,
            "follower": self.node_id,
            "success": False,
            "match_index": 0,
        }
        if term < self.term:
            return [Message(leader, APPEND_REPLY, reply)]
        if term > self.term or self.role is not Role.FOLLOWER:
            self._become_follower(term, leader)
        now = self.clock.now()
        self.term = term
        self.leader_id = leader
        self._lease_until = now + self.lease_duration
        # Hearing a live leader ends observer quiescence early: the log
        # consistency check below resynchronises us safely.
        self.observer_until = min(self.observer_until, now)
        self._reset_election_deadline()
        reply["term"] = self.term
        prev_index = int(payload["prev_index"])
        prev_term = int(payload["prev_term"])
        if prev_index > self.last_index or self.log[prev_index].term != prev_term:
            # Log diverges (or we are behind): ask the leader to back
            # off to the tail we can actually verify.
            reply["hint"] = min(prev_index, self.last_index + 1)
            return [Message(leader, APPEND_REPLY, reply)]
        entries = [LogEntry.from_dict(doc) for doc in payload["entries"]]
        for entry in entries:
            if entry.index <= self.last_index:
                if self.log[entry.index].term == entry.term:
                    continue  # duplicate delivery of a known entry
                # Conflict: truncate the tail.  Logs are memory-only, so
                # a majority that restarted empty can legitimately
                # overwrite entries a dead incarnation had committed;
                # clamp every cursor that referenced the discarded
                # suffix or the replica wedges with commit_index past
                # its own log and can never reconcile.
                for stale in self.log[entry.index :]:
                    if stale.cid:
                        self._cid_index.pop(stale.cid, None)
                del self.log[entry.index :]
                self.commit_index = min(self.commit_index, self.last_index)
                self.last_applied = min(self.last_applied, self.commit_index)
                self.executed_hint = min(
                    self.executed_hint, self.commit_index
                )
            self.log.append(entry)
            if entry.cid:
                self._cid_index[entry.cid] = entry.index
        self.commit_index = max(
            self.commit_index, min(int(payload["commit"]), self.last_index)
        )
        self.executed_hint = max(self.executed_hint, int(payload["executed"]))
        reply["success"] = True
        reply["match_index"] = prev_index + len(entries)
        return [Message(leader, APPEND_REPLY, reply)]

    def _on_append_reply(self, payload: dict) -> List[Message]:
        term = int(payload["term"])
        if term > self.term:
            self._become_follower(term, None)
            return []
        if self.role is not Role.LEADER or term < self.term:
            return []
        follower = int(payload["follower"])
        if follower not in self._next_index:
            return []
        self._ack_time[follower] = self.clock.now()
        if payload.get("success"):
            match = int(payload["match_index"])
            self._match_index[follower] = max(
                self._match_index[follower], match
            )
            self._next_index[follower] = self._match_index[follower] + 1
            self._advance_commit()
            if self._next_index[follower] <= self.last_index:
                return [
                    Message(
                        follower, APPEND, self._append_payload(follower)
                    )
                ]
            return []
        hint = int(payload.get("hint", self._next_index[follower] - 1))
        self._next_index[follower] = max(1, min(
            self._next_index[follower] - 1, hint
        ))
        return [Message(follower, APPEND, self._append_payload(follower))]

    def _advance_commit(self) -> None:
        for index in range(self.last_index, self.commit_index, -1):
            if self.log[index].term != self.term:
                break  # only current-term entries commit by counting
            votes = 1 + sum(
                1 for p in self.peers if self._match_index[p] >= index
            )
            if votes >= self.quorum:
                self.commit_index = index
                break

    # -- client surface ------------------------------------------------

    def submit(self, cid: str, verb: str, payload: dict) -> Tuple[int, List[Message]]:
        """Append a verb to the replicated log (leader only).

        Returns ``(index, outbound appends)``.  A repeated ``cid``
        returns the original index with no new entry — exactly-once
        under client retry.
        """
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.leader_id, self.term)
        if cid and cid in self._cid_index:
            return self._cid_index[cid], []
        entry = LogEntry(self.term, self.last_index + 1, cid, verb, dict(payload))
        self.log.append(entry)
        if cid:
            self._cid_index[cid] = entry.index
        return entry.index, self._broadcast_appends()

    def note_executed(self, index: int) -> None:
        """Record that wire side effects ran up to ``index`` (leader)."""
        self.executed_hint = max(self.executed_hint, index)

    def advertise_executed(self) -> List[Message]:
        """Appends that push :attr:`executed_hint` to the peers now.

        Waiting for the next heartbeat leaves a window where a freshly
        elected successor does not know an entry's side effects already
        ran and re-executes them; callers with non-idempotent effects
        flush these immediately after executing.
        """
        if self.role is not Role.LEADER:
            return []
        self._next_heartbeat = self.clock.now() + self.heartbeat_interval
        return self._broadcast_appends()


@dataclass
class _Queues:
    inboxes: Dict[int, Deque[Tuple[str, dict]]] = field(default_factory=dict)


class ReplicaGroup:
    """N in-memory replicas wired through FIFO queues — the simulator.

    Crash/restart/partition are explicit, the clock is manual, and
    message delivery (:meth:`pump`) runs to quiescence — every run with
    the same seed and the same event script is byte-identical.
    """

    def __init__(
        self,
        num: int = 3,
        seed: int = 0,
        election_timeout: Tuple[float, float] = (1.0, 2.0),
        heartbeat_interval: float = 0.25,
        lease_duration: float = 0.9,
        clock: Optional[ManualClock] = None,
    ) -> None:
        if num < 1:
            raise ValueError("need at least one replica")
        self.num = num
        self.seed = seed
        self.clock = clock or ManualClock()
        self.election_timeout = election_timeout
        self.heartbeat_interval = heartbeat_interval
        self.lease_duration = lease_duration
        self.replicas: Dict[int, Replica] = {}
        self.crashed: set = set()
        self.partitioned: set = set()
        self._inboxes: Dict[int, Deque[Tuple[str, dict]]] = {
            i: deque() for i in range(num)
        }
        self._cid_seq = itertools.count(1)
        self.restarts = 0
        for i in range(num):
            self.replicas[i] = self._fresh(i, observer_grace=0.0)

    def _fresh(self, node_id: int, observer_grace: float) -> Replica:
        return Replica(
            node_id,
            [p for p in range(self.num) if p != node_id],
            self.clock,
            seed=self.seed,
            election_timeout=self.election_timeout,
            heartbeat_interval=self.heartbeat_interval,
            lease_duration=self.lease_duration,
            observer_grace=observer_grace,
        )

    # -- connectivity ---------------------------------------------------

    def _reachable(self, a: int, b: int) -> bool:
        return (
            a not in self.crashed
            and b not in self.crashed
            and a not in self.partitioned
            and b not in self.partitioned
        )

    def crash(self, node_id: int) -> None:
        """SIGKILL analogue: volatile state and queued messages vanish."""
        self.crashed.add(node_id)
        self._inboxes[node_id].clear()

    def restart(self, node_id: int, observer_grace: Optional[float] = None) -> None:
        """Bring a crashed replica back with a *fresh* (empty) state.

        The default grace exceeds the longest election timeout plus the
        lease, so any vote the pre-crash incarnation cast has been
        superseded before this one may vote or campaign again.
        """
        if node_id not in self.crashed:
            raise ValueError(f"replica {node_id} is not crashed")
        if observer_grace is None:
            observer_grace = self.election_timeout[1] + self.lease_duration
        self.crashed.discard(node_id)
        self._inboxes[node_id].clear()
        self.replicas[node_id] = self._fresh(node_id, observer_grace)
        self.restarts += 1

    def partition(self, node_id: int) -> None:
        self.partitioned.add(node_id)

    def heal(self, node_id: int) -> None:
        self.partitioned.discard(node_id)

    # -- message plumbing ----------------------------------------------

    def _route(self, src: int, outbound: Sequence[Message]) -> None:
        for message in outbound:
            if self._reachable(src, message.dest):
                self._inboxes[message.dest].append(
                    (message.kind, message.payload)
                )

    def pump(self, max_rounds: int = 10_000) -> int:
        """Deliver queued messages until quiescent; returns count."""
        delivered = 0
        for _ in range(max_rounds):
            if not any(self._inboxes.values()):
                return delivered
            for node_id in range(self.num):
                inbox = self._inboxes[node_id]
                while inbox:
                    kind, payload = inbox.popleft()
                    if node_id in self.crashed:
                        continue
                    outbound = self.replicas[node_id].handle(kind, payload)
                    delivered += 1
                    self._route(node_id, outbound)
        raise RuntimeError("message pump failed to quiesce")

    def advance(self, duration: float, step: Optional[float] = None) -> None:
        """Advance the manual clock in ticks, pumping after each."""
        if step is None:
            step = self.heartbeat_interval / 2
        remaining = float(duration)
        while remaining > 1e-12:
            dt = min(step, remaining)
            self.clock.advance(dt)
            remaining -= dt
            for node_id in range(self.num):
                if node_id in self.crashed:
                    continue
                self._route(node_id, self.replicas[node_id].tick())
            self.pump()

    # -- cluster views --------------------------------------------------

    def live(self) -> List[int]:
        return [
            i
            for i in range(self.num)
            if i not in self.crashed and i not in self.partitioned
        ]

    def leaders(self) -> List[int]:
        return [
            i for i in self.live() if self.replicas[i].role is Role.LEADER
        ]

    def leader(self) -> Optional[int]:
        """The live leader with the highest term, if any."""
        candidates = self.leaders()
        if not candidates:
            return None
        return max(candidates, key=lambda i: self.replicas[i].term)

    def status(self) -> dict:
        return {
            "replicas": self.num,
            "leader": self.leader(),
            "term": max(r.term for r in self.replicas.values()),
            "crashed": sorted(self.crashed),
            "partitioned": sorted(self.partitioned),
            "members": [
                self.replicas[i].status() for i in range(self.num)
            ],
        }

    # -- orchestration --------------------------------------------------

    def run_until(
        self,
        predicate: Callable[[], bool],
        budget: float = 60.0,
        step: Optional[float] = None,
    ) -> float:
        """Advance until ``predicate()`` holds; returns elapsed time."""
        elapsed = 0.0
        if step is None:
            step = self.heartbeat_interval / 2
        while not predicate():
            if elapsed >= budget:
                raise TimeoutError(
                    f"predicate not reached within {budget}s of manual time"
                )
            self.advance(step)
            elapsed += step
        return elapsed

    def elect(self, budget: float = 60.0) -> int:
        """Advance until a leader exists with its no-op committed."""

        def settled() -> bool:
            leader = self.leader()
            if leader is None:
                return False
            replica = self.replicas[leader]
            return replica.commit_index >= replica.last_index

        self.run_until(settled, budget=budget)
        leader = self.leader()
        assert leader is not None
        return leader

    def submit(
        self,
        verb: str,
        payload: Optional[dict] = None,
        cid: Optional[str] = None,
        budget: float = 60.0,
    ) -> dict:
        """Submit a verb through the current leader and wait for commit."""
        leader = self.leader()
        if leader is None:
            leader = self.elect(budget=budget)
        replica = self.replicas[leader]
        if cid is None:
            cid = f"c{next(self._cid_seq)}"
        index, outbound = replica.submit(cid, verb, dict(payload or {}))
        self._route(leader, outbound)
        self.pump()
        self.run_until(
            lambda: self.replicas[leader].commit_index >= index
            if leader not in self.crashed
            else False,
            budget=budget,
        )
        return {"index": index, "term": replica.entry(index).term, "cid": cid}

    def depose(self, budget: float = 60.0) -> dict:
        """Crash the leader, elect a successor, restart the old leader.

        The deterministic 'fail over now' verb used by chaos drills and
        the ops API's fail-leader endpoint.
        """
        old = self.leader()
        if old is None:
            old = self.elect(budget=budget)
        old_term = self.replicas[old].term
        self.crash(old)
        new = self.elect(budget=budget)
        self.restart(old)
        self.run_until(
            lambda: self.replicas[old].last_index
            >= self.replicas[new].commit_index
            and self.replicas[old].leader_id == new,
            budget=budget,
        )
        return {
            "old_leader": old,
            "old_term": old_term,
            "new_leader": new,
            "new_term": self.replicas[new].term,
        }

    def logs_identical(self) -> bool:
        """True iff all live replicas agree on the committed prefix."""
        live = self.live()
        if not live:
            return True
        floor = min(self.replicas[i].commit_index for i in live)
        reference = self.replicas[live[0]].log[1 : floor + 1]
        return all(
            self.replicas[i].log[1 : floor + 1] == reference for i in live[1:]
        )
