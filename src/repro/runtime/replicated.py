"""Replicated controller processes over TCP + the failover drill.

This is the wire tier of :mod:`repro.runtime.replication`: R real
controller replica *processes* (default 3) that elect a leaseholder
over ``MSG_VOTE``/``MSG_APPEND`` frames and replicate the drill's
controller verbs through the shared log before anything touches a node
daemon.  The replicated state machine is deliberately cheap to ship:

* every log entry is a tiny **seeded command** (``bootstrap``, a
  ``storm`` round, a ``traffic`` round) — each replica derives the
  actual RIB operations and frames deterministically from its own
  shadow (same seed, same log order ⇒ byte-identical shadows on all
  replicas, and a restarted replica rebuilds by replaying the log);
* only the **leader** executes a committed command against the daemons
  (its :class:`~repro.runtime.controller.RuntimeController` claims the
  term on every link via ``MSG_CLAIM``, so a deposed leader's requests
  bounce with ``RSP_REDIRECT``);
* the leader advertises how far wire execution got (``executed`` in
  its appends); a new leader re-executes the committed suffix beyond
  that hint.  Storm re-execution is idempotent on the daemons
  (absolute inserts; removes of unknown keys are skipped; deltas are
  rebuilt from the authoritative slice), which is why the harness
  kills leaders only between storm rounds — never mid-traffic, whose
  charging is not idempotent.

:func:`run_replicated_workload` is the §7 control-plane drill: spawn N
daemons and R replicas, replicate a bootstrap + update storm +
differential traffic, SIGKILL the current leader at deterministic
storm rounds (respawning it as a quiescent observer), and report a
``deterministic`` section (differential counts, committed verbs —
byte-comparable per seed) plus an ``incidental`` section (who led,
how many discovery sweeps failover took — bounded, not byte-stable,
because real-clock elections pick timing-dependent winners).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import time
import zlib
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.architectures import Architecture
from repro.core import serialize
from repro.epc.gateway import EpcGateway
from repro.epc.packets import parse_ip
from repro.epc.traffic import FlowGenerator
from repro.obs.metrics import MetricsRegistry
from repro.runtime import protocol
from repro.runtime.controller import RuntimeController
from repro.runtime.framing import FramedSocket, FramingError
from repro.runtime.launcher import (
    DEMO_GATEWAY_IP,
    LocalRuntime,
    _compare_frames,
    _shadow_route,
)
from repro.runtime.protocol import (
    MSG_APPEND,
    MSG_QUERY,
    MSG_SHUTDOWN,
    MSG_SUBMIT,
    MSG_VOTE,
    OP_INSERT,
    OP_REMOVE,
    RSP_APPEND,
    RSP_ERR,
    RSP_OK,
    RSP_REDIRECT,
    RSP_RESULT,
    RSP_VOTE,
    UpdateOp,
)
from repro.runtime.replication import (
    APPEND,
    APPEND_REPLY,
    VOTE,
    VOTE_REPLY,
    LeadershipGuard,
    Message,
    Replica,
    Role,
    StaleTermError,
)

#: Real-clock election parameters for replica processes.  Deliberately
#: loose — these are sized for a *contended single-core* box (CI
#: runners), where 3 replicas + N daemons + the client time-share one
#: or two CPUs and every measured standalone cost inflates 3-8x:
#:
#: * a follower freezes for one generator step of shadow application
#:   (worst single step is the monolithic GPT build inside bootstrap,
#:   ~0.5s standalone, ~2-3s contended), so the leader's lease must
#:   ride out an ack gap of that order;
#: * the leader goes quiet for one wire chunk plus a peer-timeout
#:   flush (~1-3s contended), so the follower election floor must
#:   exceed that silence, or healthy leaders get deposed mid-entry and
#:   the cluster churns terms forever without executing anything;
#: * vote-request delivery itself takes seconds when the receiver is
#:   mid-slice, so the election timeout *spread* (tmax - tmin) must
#:   dwarf that latency — with a narrow spread two candidates fire in
#:   lockstep, each voting for itself before the other's request
#:   lands, and split-vote rounds repeat indefinitely.
#:
#: Failover therefore costs seconds — the drill budget, not the
#: common case.  Only actual leader death should trigger an election.
ELECTION_TIMEOUT = (8.0, 16.0)
HEARTBEAT_INTERVAL = 0.3
LEASE_DURATION = 7.5
#: Observer grace a respawned replica sits out before voting again.
OBSERVER_GRACE = ELECTION_TIMEOUT[1] + LEASE_DURATION + 0.05
#: A fresh replica's *first* election fires after
#: ``FIRST_ELECTION_STAGGER * (replica_id + 1)`` instead of a full
#: randomized timeout: a cold cluster elects replica 0 in under a
#: second rather than idling out ELECTION_TIMEOUT seconds.
FIRST_ELECTION_STAGGER = 0.4
#: Leader-side wire execution is chunked so heartbeats keep flowing
#: while a large storm/traffic entry is applied to the daemons
#: (measured ~1.2 ms per update op on the wire standalone; a chunk is
#: ~0.3s standalone, ~1-2s contended — still under the election floor).
WIRE_CHUNK = 256
#: The leader waits this long for a peer's append/vote reply before
#: declaring it unreachable.  Must exceed a follower's worst apply
#: slice (~APPLY_BUDGET, inflated by contention) or busy-but-alive
#: followers never get their acks counted and the lease collapses.
PEER_TIMEOUT = 1.5
#: Shadow application is *interruptible*: entries apply through a
#: generator that yields every few sub-steps, and a replica spends at
#: most this many seconds of shadow work per event-loop pass — so even
#: a multi-second entry (or a respawned observer's whole-log replay)
#: never blocks votes, appends, or client requests for long.
APPLY_BUDGET = 0.1
#: Sub-step sizes between generator yields (well under 0.1s of work
#: each at the CI-scale population, standalone — contention stretches
#: a slice to roughly PEER_TIMEOUT, which is exactly the budget).
APPLY_STEP_OPS = 50
APPLY_STEP_FRAMES = 250
APPLY_STEP_FLOWS = 500
#: Entry-size targets for the workload driver.  Entries are kept large
#: to amortise per-commit round trips — interruptible application (not
#: entry size) is what keeps replicas responsive.
TRAFFIC_SLICE = 5000
STORM_SLICE = 4000


class MonotonicClock:
    """The real-process clock injected into a :class:`Replica`."""

    @staticmethod
    def now() -> float:
        return time.monotonic()


class _CoreGuard(LeadershipGuard):
    """Guard a wire controller with its own replica core's lease."""

    def __init__(self, core: Replica) -> None:
        self.core = core

    def acquire(self, action: str) -> int:
        if self.core.role is not Role.LEADER:
            raise StaleTermError(
                f"{action}: replica {self.core.node_id} is not the leader"
            )
        return self.core.term

    def validate(self, term: int, action: str) -> None:
        if self.core.role is not Role.LEADER or self.core.term != term:
            raise StaleTermError(
                f"{action}: replica {self.core.node_id} lost term {term}"
            )


class ShadowMachine:
    """One replica's deterministic shadow of the whole cluster.

    Applies committed log entries — seeded commands — to a private
    :class:`EpcGateway`; identical logs produce byte-identical shadows
    on every replica.  The derived wire work (RIB ops, frames, expected
    outcomes) is cached per log index so the leader (or a successor
    re-executing the committed suffix) ships exactly what the shadow
    decided.
    """

    def __init__(self, num_nodes: int, seed: int) -> None:
        self.num_nodes = num_nodes
        self.seed = seed
        self.gateway = EpcGateway(
            Architecture.SCALEBRICKS,
            num_nodes,
            parse_ip(DEMO_GATEWAY_IP),
            registry=MetricsRegistry(),
        )
        self.generator = FlowGenerator(seed)
        self.live_flows: List[object] = []
        self.update_rng = np.random.default_rng(seed * 65537 + 13)
        self.bootstrap_index = 0
        self.counters = {
            "connects": 0, "rehomes": 0, "disconnects": 0,
            "storm_ops": 0, "storm_rounds": 0, "traffic_frames": 0,
        }
        #: log index -> ("bootstrap",) | ("storm", ops) |
        #: ("traffic", frames, ingress, shadow outcomes)
        self.derived: Dict[int, tuple] = {}
        self._last_summary: dict = {}

    def apply(self, entry) -> dict:
        """Apply one committed entry fully; returns the summary."""
        for _ in self.apply_steps(entry):
            pass
        return self._last_summary

    def apply_steps(self, entry):
        """Incremental application: a generator that yields between
        bounded sub-steps.  A single large entry costs real CPU to
        replay; yielding lets the replica's event loop answer votes,
        appends and client requests mid-entry.  Interruption points
        never change the outcome — the mutation sequence is identical
        to a monolithic apply.
        """
        self._last_summary = {}
        if entry.verb in ("noop", "sentinel"):
            return
        handler = getattr(self, f"_apply_{entry.verb}", None)
        if handler is None:
            raise ValueError(f"unknown replicated verb {entry.verb!r}")
        yield from handler(entry.index, entry.payload)

    def _apply_bootstrap(self, index: int, payload: dict):
        flows = int(payload["flows"])
        # Inlined FlowGenerator.populate with yield points: the same
        # flow batch and connect order, but a follower replaying an 8k
        # population is never frozen for the whole loop at once.  (The
        # GPT build in gateway.start() stays one step — PEER_TIMEOUT
        # and the lease are sized to ride it out.)
        population = self.generator.flows(flows)
        for i, flow in enumerate(population):
            if i and i % APPLY_STEP_FLOWS == 0:
                yield
            self.gateway.connect(
                flow,
                self.generator.base_station_for(flow),
                self.generator.region_for(flow),
            )
        self.live_flows = population
        self.gateway.start()
        self.bootstrap_index = index
        self.derived[index] = ("bootstrap",)
        self._last_summary = {"live_flows": len(self.live_flows)}
        yield

    def _apply_storm(self, index: int, payload: dict):
        """One §4.5 churn round: the connect/rehome/disconnect mix."""
        count = int(payload["count"])
        gateway = self.gateway
        ops: List[UpdateOp] = []
        connects = rehomes = disconnects = 0
        for op_no in range(count):
            if op_no and op_no % APPLY_STEP_OPS == 0:
                yield
            action = int(self.update_rng.integers(100))
            if action < 30 or len(self.live_flows) <= 2:
                flow = self.generator.flows(1)[0]
                record = gateway.connect(
                    flow,
                    self.generator.base_station_for(flow),
                    self.generator.region_for(flow),
                )
                ops.append(UpdateOp(
                    OP_INSERT, record.key, record.handling_node,
                    record.teid, record.base_station_ip,
                ))
                self.live_flows.append(flow)
                connects += 1
            elif action < 85:
                flow = self.live_flows[
                    int(self.update_rng.integers(len(self.live_flows)))
                ]
                target = int(self.update_rng.integers(self.num_nodes))
                record = gateway.controller.record_for_key(flow.key())
                assert record is not None
                if record.handling_node == target:
                    continue
                moved = gateway.rehome_flow(flow, target)
                ops.append(UpdateOp(
                    OP_INSERT, moved.key, target, moved.teid,
                    moved.base_station_ip,
                ))
                rehomes += 1
            else:
                pos = int(self.update_rng.integers(len(self.live_flows)))
                flow = self.live_flows.pop(pos)
                assert gateway.disconnect(flow)
                ops.append(UpdateOp(OP_REMOVE, flow.key()))
                disconnects += 1
        self.derived[index] = ("storm", ops)
        self.counters["connects"] += connects
        self.counters["rehomes"] += rehomes
        self.counters["disconnects"] += disconnects
        self.counters["storm_ops"] += len(ops)
        self.counters["storm_rounds"] += 1
        self._last_summary = {
            "ops": len(ops), "connects": connects,
            "rehomes": rehomes, "disconnects": disconnects,
        }

    def _apply_traffic(self, index: int, payload: dict):
        """One differential traffic round, shadow-routed here."""
        round_no = int(payload["round"])
        packets = int(payload["packets"])
        extra = int(payload.get("extra", 0))
        frames = self.generator.packet_stream(self.live_flows, packets)
        if extra:
            # Never-connected flows: the GPT still maps them somewhere
            # (one-sided error, §3.3) and the exact FIB refuses them.
            frames.extend(self.generator.packet_stream(
                self.generator.flows(extra), min(64, packets)
            ))
        ingress_rng = np.random.default_rng(
            self.seed * 65537 + 11 + round_no
        )
        ingress = [
            int(n) for n in ingress_rng.integers(
                self.num_nodes, size=len(frames)
            )
        ]
        shadow: List[object] = []
        for lo in range(0, len(frames), APPLY_STEP_FRAMES):
            shadow.extend(_shadow_route(
                self.gateway,
                frames[lo:lo + APPLY_STEP_FRAMES],
                ingress[lo:lo + APPLY_STEP_FRAMES],
            ))
            yield
        self.derived[index] = ("traffic", frames, ingress, shadow)
        self.counters["traffic_frames"] += len(frames)
        self._last_summary = {"frames": len(frames)}

    def fingerprints(self) -> List[int]:
        """Per-node GPT replica CRCs of this shadow's cluster."""
        cluster = self.gateway.cluster
        if cluster is None:
            return []
        return [
            serialize.fingerprint(node.gpt.setsep) for node in cluster.nodes
        ]

    def charges_crc(self) -> int:
        """CRC of the shadow's global charging dict (order-canonical)."""
        charged = sorted(
            (int(t), int(v))
            for t, v in self.gateway.stats.bytes_charged.items()
            if int(v)
        )
        return zlib.crc32(repr(charged).encode("ascii"))

    def summary(self) -> dict:
        return {
            "live_flows": len(self.live_flows),
            "counters": dict(self.counters),
            "gpt_fingerprints": self.fingerprints(),
            "charges_crc": self.charges_crc(),
            "bootstrap_index": self.bootstrap_index,
        }

    def reference_setsep(self):
        cluster = self.gateway.cluster
        assert cluster is not None, "shadow not bootstrapped"
        return serialize.loads(serialize.dumps(cluster.nodes[0].gpt.setsep))


class ReplicaServer:
    """One controller replica as a socket-served process.

    Single-threaded selectors loop, like the node daemon: peer
    replication RPCs (``MSG_VOTE``/``MSG_APPEND``) and client requests
    (``MSG_SUBMIT``/``MSG_QUERY``) arrive on the listener; between
    requests the loop ticks the core (elections, heartbeats, lease
    checks) and applies newly committed entries to the shadow — and,
    on the leader, to the daemons.
    """

    def __init__(
        self,
        replica_id: int,
        replica_addresses: Sequence[Tuple[str, int]],
        daemon_addresses: Sequence[Tuple[str, int]],
        num_nodes: int,
        seed: int,
        observer_grace: float = 0.0,
        election_timeout: Tuple[float, float] = ELECTION_TIMEOUT,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        lease_duration: float = LEASE_DURATION,
    ) -> None:
        self.replica_id = replica_id
        self.replica_addresses = [
            (str(h), int(p)) for h, p in replica_addresses
        ]
        self.daemon_addresses = [
            (str(h), int(p)) for h, p in daemon_addresses
        ]
        self.host, self.port = self.replica_addresses[replica_id]
        self.core = Replica(
            replica_id,
            [i for i in range(len(self.replica_addresses))
             if i != replica_id],
            MonotonicClock(),
            seed=seed,
            election_timeout=election_timeout,
            heartbeat_interval=heartbeat_interval,
            lease_duration=lease_duration,
            observer_grace=observer_grace,
            first_election_delay=(
                FIRST_ELECTION_STAGGER * (replica_id + 1)
            ),
        )
        self.shadow = ShadowMachine(num_nodes, seed)
        self._peer_socks: Dict[int, FramedSocket] = {}
        self._ctl: Optional[RuntimeController] = None
        self._ctl_term = -1
        self._executed = 0
        self._applied_index = 0
        self._pending_applies: deque = deque()
        self._apply_entry = None
        self._apply_gen = None
        self._results: Dict[int, dict] = {}
        self._running = False
        trace = os.environ.get("REPRO_REPLICA_TRACE")
        self._trace_file = (
            open(f"{trace}.r{replica_id}", "a", buffering=1)
            if trace else None
        )
        self._trace_role: Tuple[Role, int] = (self.core.role, self.core.term)

    def _trace(self, event: str) -> None:
        if self._trace_file is not None:
            self._trace_file.write(f"{time.monotonic():9.3f} {event}\n")

    def _trace_transitions(self) -> None:
        if self._trace_file is None:
            return
        now = (self.core.role, self.core.term)
        if now != self._trace_role:
            self._trace(
                f"role {self._trace_role[0].name}/t{self._trace_role[1]}"
                f" -> {now[0].name}/t{now[1]}"
                f" leader={self.core.leader_id}"
                f" commit={self.core.commit_index}"
                f" applied={self._applied_index} exec={self._executed}"
            )
            self._trace_role = now

    # -- peer links -----------------------------------------------------

    def _peer_request(
        self, peer: int, msg_type: int, payload: bytes
    ) -> Tuple[int, bytes]:
        sock = self._peer_socks.get(peer)
        if sock is None:
            host, port = self.replica_addresses[peer]
            sock = FramedSocket.connect(host, port)
            sock.settimeout(PEER_TIMEOUT)
            self._peer_socks[peer] = sock
        try:
            return sock.request(msg_type, payload)
        except (FramingError, OSError):
            self._peer_socks.pop(peer, None)
            sock.close()
            raise

    def _flush(self, messages: Sequence[Message]) -> None:
        """Ship outbound core messages; feed replies back into the core."""
        queue = deque(messages)
        while queue:
            message = queue.popleft()
            msg_type = MSG_VOTE if message.kind == VOTE else MSG_APPEND
            try:
                rsp_type, rsp = self._peer_request(
                    message.dest, msg_type,
                    protocol.encode_json(message.payload),
                )
            except (FramingError, OSError):
                continue  # unreachable peer: the protocol retries
            if rsp_type == RSP_VOTE:
                queue.extend(self.core.handle(
                    VOTE_REPLY, protocol.decode_json(rsp)
                ))
            elif rsp_type == RSP_APPEND:
                queue.extend(self.core.handle(
                    APPEND_REPLY, protocol.decode_json(rsp)
                ))

    # -- commit application --------------------------------------------

    def _drive(self) -> None:
        # The core defers campaigning while this replica still owes the
        # shadow committed entries: a backlogged winner could not
        # execute anything for a long time, and mid-drain campaigns are
        # what livelocked elections under CPU contention.
        self.core.apply_backlog = (
            self._apply_gen is not None
            or bool(self._pending_applies)
            or self.core.commit_index > self._applied_index
        )
        self._flush(self.core.tick())
        self._trace_transitions()
        self._apply_committed()

    def _apply_committed(self) -> None:
        # Shadow application costs real CPU (it replays every routed
        # frame and churn op).  Applying an unbounded backlog — or even
        # one large entry — in a single call would block this
        # single-threaded loop long enough to miss votes and appends,
        # so application is driven through the shadow's resumable
        # generator under a time budget; _applied_index gates wire
        # execution so a leader never executes an entry its shadow has
        # not derived yet.
        self._pending_applies.extend(self.core.take_applies())
        deadline = time.monotonic() + APPLY_BUDGET
        while True:
            if self._apply_gen is None:
                if not self._pending_applies:
                    break
                self._apply_entry = self._pending_applies.popleft()
                self._apply_gen = self.shadow.apply_steps(self._apply_entry)
            try:
                next(self._apply_gen)
            except StopIteration:
                self._applied_index = self._apply_entry.index
                self._trace(
                    f"applied #{self._apply_entry.index}"
                    f" {self._apply_entry.verb}"
                )
                self._apply_gen = None
                self._apply_entry = None
            if time.monotonic() >= deadline:
                break
        if self.core.role is Role.LEADER:
            try:
                self._wire_execute()
            except StaleTermError:
                # A successor claimed a newer term on the daemons while
                # we were mid-batch; stop executing — the new leader
                # owns the remaining suffix.
                pass
        elif self._ctl is not None:
            self._ctl.close()
            self._ctl = None
            self._ctl_term = -1

    def _controller(self) -> RuntimeController:
        term = self.core.term
        if self._ctl is not None:
            if self._ctl_term != term:
                self._ctl.claim_leadership(term, self.replica_id)
                self._ctl_term = term
            return self._ctl
        ctl = RuntimeController(
            self.daemon_addresses, guard=_CoreGuard(self.core)
        )
        ctl.claim = (term, self.replica_id)
        ctl.connect()
        already = max(self._executed, self.core.executed_hint)
        if self.shadow.bootstrap_index and (
            already >= self.shadow.bootstrap_index
        ):
            # The daemons were bootstrapped by a previous leader; adopt
            # the shadow-derived reference instead of re-shipping.
            ctl.adopt_reference(self.shadow.reference_setsep(), epoch=1)
        self._ctl = ctl
        self._ctl_term = term
        return ctl

    def _heartbeat_between_chunks(self) -> None:
        """Keep the lease alive while a large wire batch is in flight.

        Wire execution is synchronous RPC against the daemons; without
        interleaved heartbeats a big traffic entry would starve the
        followers long enough for them to elect a successor — and a
        successor re-executing a half-applied traffic entry double
        charges bearers.  Abort the batch if leadership was lost anyway.
        """
        self._flush(self.core.tick())
        if self.core.role is not Role.LEADER:
            raise StaleTermError("leadership lost during wire execution")

    def _wire_execute(self) -> None:
        """Execute the committed-but-unexecuted suffix on the daemons."""
        start = max(self._executed, self.core.executed_hint)
        # Never run ahead of the local shadow: derived payloads for an
        # unapplied entry do not exist yet and would be silently treated
        # as noops.
        end = min(self.core.commit_index, self._applied_index)
        if start >= end:
            return
        ctl = self._controller()
        for index in range(start + 1, end + 1):
            derived = self.shadow.derived.get(index)
            if derived is None:  # noop entries have no wire effect
                self._executed = index
                self.core.note_executed(index)
                continue
            kind = derived[0]
            self._trace(f"wire #{index} {kind} start")
            if kind == "bootstrap":
                bootstrap = ctl.bootstrap_from_gateway(self.shadow.gateway)
                result = {"verb": "bootstrap", **bootstrap}
            elif kind == "storm":
                totals: Dict[str, int] = {}
                for lo in range(0, len(derived[1]), WIRE_CHUNK):
                    chunk = ctl.push_updates(
                        derived[1][lo:lo + WIRE_CHUNK]
                    )
                    for name, count in chunk.items():
                        totals[name] = totals.get(name, 0) + count
                    self._heartbeat_between_chunks()
                result = {"verb": "storm", "wire": totals,
                          "ops": len(derived[1])}
            else:
                _, frames, ingress, shadow_outcomes = derived
                wire = []
                for lo in range(0, len(frames), WIRE_CHUNK):
                    wire.extend(ctl.route_frames(
                        frames[lo:lo + WIRE_CHUNK],
                        ingress[lo:lo + WIRE_CHUNK],
                    ))
                    self._heartbeat_between_chunks()
                result = {
                    "verb": "traffic",
                    **_compare_frames(shadow_outcomes, wire),
                }
            self._results[index] = result
            self._executed = index
            self._trace(f"wire #{index} {kind} done")
            self.core.note_executed(index)
            # Ship the executed hint right away: if a successor were
            # elected between this entry's wire effects and the next
            # scheduled heartbeat, it would re-execute the entry — and
            # traffic entries double-charge bearers when replayed.
            self._flush(self.core.advertise_executed())

    # -- serving --------------------------------------------------------

    def serve_forever(self, ready=None) -> None:
        import selectors

        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((self.host, self.port))
        lsock.listen(64)
        self.port = lsock.getsockname()[1]
        if ready is not None:
            ready(self.port)
        sel = selectors.DefaultSelector()
        sel.register(lsock, selectors.EVENT_READ, None)
        conns: List[FramedSocket] = []
        self._running = True
        try:
            while self._running:
                for key, _events in sel.select(timeout=0.02):
                    if key.data is None:
                        conn, _addr = lsock.accept()
                        framed = FramedSocket(conn)
                        sel.register(conn, selectors.EVENT_READ, framed)
                        conns.append(framed)
                        continue
                    framed = key.data
                    try:
                        msg_type, payload = framed.recv()
                    except (FramingError, OSError):
                        sel.unregister(framed.sock)
                        framed.close()
                        conns.remove(framed)
                        continue
                    rsp_type, rsp_payload = self._dispatch(msg_type, payload)
                    try:
                        framed.send(rsp_type, rsp_payload)
                    except OSError:
                        sel.unregister(framed.sock)
                        framed.close()
                        conns.remove(framed)
                    if not self._running:
                        break
                self._drive()
        finally:
            for framed in conns:
                framed.close()
            sel.close()
            lsock.close()
            for sock in self._peer_socks.values():
                sock.close()
            self._peer_socks.clear()
            if self._ctl is not None:
                self._ctl.close()

    def _dispatch(self, msg_type: int, payload: bytes) -> Tuple[int, bytes]:
        try:
            if msg_type == MSG_VOTE:
                doc = protocol.decode_json(payload)
                replies = self.core.handle(VOTE, doc)
                self._trace(
                    f"vote req from r{doc.get('candidate')}"
                    f" t{doc.get('term')}"
                    f" -> granted={replies[0].payload.get('granted')}"
                )
                return RSP_VOTE, protocol.encode_json(replies[0].payload)
            if msg_type == MSG_APPEND:
                replies = self.core.handle(
                    APPEND, protocol.decode_json(payload)
                )
                # The ack must reach the leader *before* we apply heavy
                # committed entries to the shadow — the serve loop
                # drives application right after the reply is sent.
                # Applying first would stall the leader's lease.
                return RSP_APPEND, protocol.encode_json(replies[0].payload)
            if msg_type == MSG_SUBMIT:
                return self._on_submit(protocol.decode_json(payload))
            if msg_type == MSG_QUERY:
                return self._on_query(protocol.decode_json(payload))
            if msg_type == MSG_SHUTDOWN:
                self._running = False
                return RSP_OK, protocol.encode_json(
                    {"replica": self.replica_id}
                )
            return RSP_ERR, protocol.encode_json(
                {"error": f"replica cannot serve type {msg_type:#x}"}
            )
        except Exception as exc:  # noqa: BLE001 - a replica never dies
            return RSP_ERR, protocol.encode_json(
                {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _redirect(self) -> Tuple[int, bytes]:
        leader = self.core.leader_id
        return RSP_REDIRECT, protocol.encode_json({
            "leader": None if leader == self.replica_id else leader,
            "term": self.core.term,
        })

    def _on_submit(self, doc: dict) -> Tuple[int, bytes]:
        if self.core.role is not Role.LEADER:
            self._trace(
                f"submit {doc.get('cid')} redirect"
                f" leader={self.core.leader_id}"
            )
            return self._redirect()
        cid = str(doc["cid"])
        self._trace(f"submit {cid} accepted")
        index, outbound = self.core.submit(
            cid, str(doc["verb"]), dict(doc.get("payload", {}))
        )
        self._flush(outbound)
        # Generous: before this submit's index is executed the leader
        # may have to shadow-apply a backlog and re-execute a whole
        # storm entry on the wire — while a respawned observer replays
        # the entire log on the same contended CPU.  Minutes at the
        # CI-scale population, not a protocol failure.
        deadline = time.monotonic() + 300.0
        while (
            self.core.commit_index < index or self._executed < index
        ):
            if self.core.role is not Role.LEADER:
                return self._redirect()
            if time.monotonic() > deadline:
                return RSP_ERR, protocol.encode_json(
                    {"error": f"commit timeout for {cid!r}"}
                )
            self._drive()
            time.sleep(0.005)
        return RSP_RESULT, protocol.encode_json({
            "index": index,
            "term": self.core.entry(index).term,
            "cid": cid,
            "result": self._results.get(index, {"replayed": True}),
        })

    def _on_query(self, doc: dict) -> Tuple[int, bytes]:
        what = str(doc.get("what", "status"))
        if what == "status":
            status = self.core.status()
            status["shadow"] = self.shadow.summary()
            status["committed_cids"] = self.core.committed_cids()
            status["executed"] = self._executed
            status["applied"] = self._applied_index
            return RSP_RESULT, protocol.encode_json(status)
        if what == "audit":
            if self.core.role is not Role.LEADER:
                return self._redirect()
            from repro.runtime.launcher import _audit_state

            audit = _audit_state(self._controller(), self.shadow.gateway)
            audit.pop("statuses")
            return RSP_RESULT, protocol.encode_json(audit)
        return RSP_ERR, protocol.encode_json(
            {"error": f"unknown query {what!r}"}
        )


def _replica_entry(config: dict, conn) -> None:
    """Child-process body: serve one replica, announce the bound port."""

    def ready(port: int) -> None:
        conn.send(port)
        conn.close()

    ReplicaServer(**config).serve_forever(ready=ready)


def _free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ephemeral ports (bound briefly, then released).

    Replicas must know each other's addresses before any of them binds,
    and a respawned replica must come back on its old port — so ports
    are pre-allocated here rather than bound-then-announced.
    """
    socks = []
    for _ in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        socks.append(sock)
    ports = [sock.getsockname()[1] for sock in socks]
    for sock in socks:
        sock.close()
    return ports


class ReplicaSet:
    """R controller replica child processes on loopback."""

    def __init__(
        self,
        daemon_addresses: Sequence[Tuple[str, int]],
        num_nodes: int,
        seed: int,
        replicas: int = 3,
        host: str = "127.0.0.1",
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.num = replicas
        self.host = host
        self.seed = seed
        self.num_nodes = num_nodes
        self.daemon_addresses = list(daemon_addresses)
        self.addresses: List[Tuple[str, int]] = [
            (host, port) for port in _free_ports(replicas, host)
        ]
        self.processes: List[Optional[multiprocessing.Process]] = (
            [None] * replicas
        )
        self.respawns = 0

    def start(self) -> "ReplicaSet":
        for replica_id in range(self.num):
            self._spawn(replica_id, observer_grace=0.0)
        return self

    def _spawn(self, replica_id: int, observer_grace: float) -> None:
        parent, child = multiprocessing.Pipe(duplex=False)
        config = {
            "replica_id": replica_id,
            "replica_addresses": [list(a) for a in self.addresses],
            "daemon_addresses": [list(a) for a in self.daemon_addresses],
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "observer_grace": observer_grace,
        }
        process = multiprocessing.Process(
            target=_replica_entry, args=(config, child), daemon=True
        )
        process.start()
        child.close()
        if not parent.poll(60.0):
            process.kill()
            raise RuntimeError("replica did not announce its port in time")
        parent.recv()
        parent.close()
        self.processes[replica_id] = process

    def kill(self, replica_id: int) -> None:
        """SIGKILL a replica — the control-plane §7 drill."""
        process = self.processes[replica_id]
        assert process is not None
        process.kill()
        process.join(timeout=10.0)

    def respawn(self, replica_id: int) -> None:
        """Restart a killed replica as a quiescent observer.

        Its volatile log is gone; it rejoins with an observer grace
        longer than any election timeout plus lease, then catches up
        from the leader's append backoff.
        """
        self._spawn(replica_id, observer_grace=OBSERVER_GRACE)
        self.respawns += 1

    def stop(self) -> None:
        for process in self.processes:
            if process is not None and process.is_alive():
                process.terminate()
        for process in self.processes:
            if process is not None:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)

    def leaked(self) -> List[int]:
        return [
            replica_id
            for replica_id, process in enumerate(self.processes)
            if process is not None and process.is_alive()
        ]

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


class ReplicaClient:
    """Leader discovery + exactly-once submission for the harness.

    Finds the leader by probing replicas (followers answer with the
    redirect message), retries a submission under the same ``cid``
    across failovers (the log dedups), and counts discovery sweeps —
    the drill's bounded failover metric.
    """

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        poll_interval: float = 0.1,
        sweep_budget: int = 800,
    ) -> None:
        self.addresses = [(str(h), int(p)) for h, p in addresses]
        self.poll_interval = poll_interval
        self.sweep_budget = sweep_budget
        self.leader_guess = 0
        self._socks: Dict[int, FramedSocket] = {}
        trace = os.environ.get("REPRO_REPLICA_TRACE")
        self._trace_file = (
            open(f"{trace}.client", "a", buffering=1) if trace else None
        )

    def _trace(self, event: str) -> None:
        if self._trace_file is not None:
            self._trace_file.write(f"{time.monotonic():9.3f} {event}\n")

    def close(self) -> None:
        for sock in self._socks.values():
            sock.close()
        self._socks.clear()

    def _request(
        self, replica_id: int, msg_type: int, payload: bytes
    ) -> Tuple[int, bytes]:
        sock = self._socks.get(replica_id)
        if sock is None:
            host, port = self.addresses[replica_id]
            sock = FramedSocket.connect(host, port)
            # Must outlive a replica's worst _on_submit wait, or the
            # client abandons a leader that is still executing.
            sock.settimeout(360.0)
            self._socks[replica_id] = sock
        try:
            return sock.request(msg_type, payload)
        except (FramingError, OSError):
            self._socks.pop(replica_id, None)
            sock.close()
            raise

    def _leader_call(
        self, msg_type: int, payload: bytes
    ) -> Tuple[dict, int]:
        """Deliver to the current leader; returns ``(result, sweeps)``."""
        sweeps = 0
        while sweeps < self.sweep_budget:
            sweeps += 1
            order = [self.leader_guess] + [
                i for i in range(len(self.addresses))
                if i != self.leader_guess
            ]
            for replica_id in order:
                try:
                    rsp_type, rsp = self._request(
                        replica_id, msg_type, payload
                    )
                except (FramingError, OSError) as exc:
                    self._trace(
                        f"sweep {sweeps} r{replica_id}"
                        f" {type(exc).__name__}: {exc}"
                    )
                    continue  # dead or restarting replica
                if rsp_type == RSP_RESULT:
                    self.leader_guess = replica_id
                    return protocol.decode_json(rsp), sweeps
                if rsp_type == RSP_REDIRECT:
                    doc = protocol.decode_json(rsp)
                    leader = doc.get("leader")
                    self._trace(
                        f"sweep {sweeps} r{replica_id} redirect"
                        f" leader={leader} term={doc.get('term')}"
                    )
                    if leader is not None:
                        self.leader_guess = int(leader)
                        break  # retry the hinted leader right away
                    continue
                if rsp_type == RSP_ERR:
                    raise RuntimeError(
                        protocol.decode_json(rsp).get("error", "replica error")
                    )
            time.sleep(self.poll_interval)
        raise TimeoutError(
            f"no leader served the request within {self.sweep_budget} sweeps"
        )

    def submit(
        self, cid: str, verb: str, payload: Optional[dict] = None
    ) -> Tuple[dict, int]:
        """Replicate one verb; exactly-once under retry via ``cid``."""
        body = protocol.encode_json({
            "cid": cid, "verb": verb, "payload": payload or {},
        })
        return self._leader_call(MSG_SUBMIT, body)

    def query_leader(self, what: str) -> Tuple[dict, int]:
        return self._leader_call(
            MSG_QUERY, protocol.encode_json({"what": what})
        )

    def query_replica(self, replica_id: int, what: str = "status") -> dict:
        rsp_type, rsp = self._request(
            replica_id, MSG_QUERY, protocol.encode_json({"what": what})
        )
        doc = protocol.decode_json(rsp)
        if rsp_type != RSP_RESULT:
            raise RuntimeError(f"replica {replica_id} answered {doc}")
        return doc

    def shutdown_replica(self, replica_id: int) -> None:
        try:
            self._request(replica_id, MSG_SHUTDOWN, b"")
        except (FramingError, OSError):
            pass


def _shutdown_daemons(addresses: Sequence[Tuple[str, int]]) -> List[int]:
    """Ask every daemon to exit (direct, leader-independent)."""
    acked: List[int] = []
    for node_id, (host, port) in enumerate(addresses):
        try:
            sock = FramedSocket.connect(host, port)
        except OSError:
            continue
        try:
            rsp_type, _rsp = sock.request(MSG_SHUTDOWN, b"")
            if rsp_type == RSP_OK:
                acked.append(node_id)
        except (FramingError, OSError):
            pass
        finally:
            sock.close()
    return acked


def run_replicated_workload(
    num_nodes: int = 4,
    replicas: int = 3,
    seed: int = 7,
    flows: int = 2000,
    packets: int = 4000,
    updates: int = 1000,
    kill_leader: int = 2,
    storm_rounds: Optional[int] = None,
) -> Dict[str, object]:
    """The control-plane failover drill: SIGKILL leaders mid-storm.

    Spawns ``num_nodes`` daemons and ``replicas`` controller replicas,
    replicates bootstrap + a ``updates``-operation §4.5 storm (split
    into rounds) + two differential traffic phases, and SIGKILLs the
    current leader at ``kill_leader`` deterministic round boundaries
    (respawning it as an observer each time).  Gates: zero divergence,
    byte-identical frames, identical charging/CRCs, every acked verb
    committed on every replica, identical shadows across replicas.
    """
    if kill_leader < 0:
        raise ValueError("kill_leader must be non-negative")
    if replicas < 2 * 1 + 1 and kill_leader:
        raise ValueError("leader kills need at least 3 replicas")
    if storm_rounds is None:
        # ~STORM_SLICE ops per committed entry at scale, at least 12
        # rounds for small runs so kill points stay well separated.
        storm_rounds = max(
            kill_leader + 1,
            min(updates, max(12, -(-updates // STORM_SLICE))),
        ) if updates else kill_leader + 1
    round_sizes = [updates // storm_rounds] * storm_rounds
    for i in range(updates % storm_rounds):
        round_sizes[i] += 1
    kill_rounds = sorted({
        (i + 1) * storm_rounds // (kill_leader + 1)
        for i in range(kill_leader)
    }) if kill_leader else []

    def _phase_slices(total: int) -> List[int]:
        """Split a traffic phase into <= TRAFFIC_SLICE frame entries."""
        if total <= 0:
            return []
        count = -(-total // TRAFFIC_SLICE)
        sizes = [total // count] * count
        for i in range(total % count):
            sizes[i] += 1
        return sizes

    first = packets // 2
    phase_sizes = [_phase_slices(first), _phase_slices(packets - first)]

    report: Dict[str, object] = {
        "config": {
            "architecture": "scalebricks",
            "nodes": num_nodes,
            "replicas": replicas,
            "seed": seed,
            "flows": flows,
            "packets": packets,
            "updates": updates,
            "kill_leader": kill_leader,
            "storm_rounds": storm_rounds,
            "traffic_entries": [len(p) for p in phase_sizes],
        },
    }
    incidental: Dict[str, object] = {
        "kill_rounds": kill_rounds,
        "killed_replicas": [],
        "failover_sweeps": [],
        "leaders": [],
        "terms": [],
    }
    acked_cids: List[str] = []
    runtime = LocalRuntime(num_nodes)
    with runtime:
        replica_set = ReplicaSet(
            runtime.addresses, num_nodes, seed, replicas=replicas
        )
        client = ReplicaClient(replica_set.addresses)
        try:
            with replica_set:
                boot, _ = client.submit(
                    "boot", "bootstrap", {"flows": flows}
                )
                acked_cids.append("boot")
                incidental["leaders"].append(client.leader_guess)
                incidental["terms"].append(boot["term"])

                # Traffic phases are sliced into bounded log entries so
                # no single commit blocks a follower's event loop for
                # more than ~TRAFFIC_SLICE frame replays.  Each slice
                # gets a globally unique round number: the per-round
                # ingress RNG keeps every slice independently seeded.
                traffic_results: List[dict] = []
                traffic_replayed = 0
                traffic_round = 0

                def _run_traffic_phase(phase: int) -> None:
                    nonlocal traffic_round, traffic_replayed
                    sizes = phase_sizes[phase - 1]
                    for i, size in enumerate(sizes, start=1):
                        traffic_round += 1
                        last = phase == 2 and i == len(sizes)
                        cid = f"traffic-{phase}-{i}"
                        result, _ = client.submit(
                            cid, "traffic",
                            {
                                "round": traffic_round,
                                "packets": size,
                                "extra": 8 if last else 0,
                            },
                        )
                        acked_cids.append(cid)
                        if "frames" in result["result"]:
                            traffic_results.append(result["result"])
                        else:
                            traffic_replayed += 1

                _run_traffic_phase(1)

                storm_wire = {"rounds_executed": 0, "replayed_rounds": 0}
                for round_no, size in enumerate(round_sizes, start=1):
                    if round_no in kill_rounds:
                        victim = client.leader_guess
                        client._trace(f"kill r{victim} round {round_no}")
                        replica_set.kill(victim)
                        incidental["killed_replicas"].append(victim)
                        replica_set.respawn(victim)
                    cid = f"storm-{round_no}"
                    result, sweeps = client.submit(
                        cid, "storm",
                        {"round": round_no, "count": size},
                    )
                    acked_cids.append(cid)
                    if round_no in kill_rounds:
                        incidental["failover_sweeps"].append(sweeps)
                        incidental["leaders"].append(client.leader_guess)
                        incidental["terms"].append(result["term"])
                    if result["result"].get("replayed"):
                        storm_wire["replayed_rounds"] += 1
                    else:
                        storm_wire["rounds_executed"] += 1

                _run_traffic_phase(2)

                audit, _ = client.query_leader("audit")

                # Let the final commit index reach the followers, then
                # collect every replica's view for the agreement gates.
                statuses: Dict[int, dict] = {}
                # The last respawned observer replays the *entire* log
                # (bootstrap + every storm round + traffic) at contended
                # CPU speed — at CI scale that is minutes, not seconds.
                deadline = time.monotonic() + 300.0
                leader_status, _ = client.query_leader("status")
                target = leader_status["commit_index"]
                while time.monotonic() < deadline:
                    statuses = {
                        rid: client.query_replica(rid)
                        for rid in range(replicas)
                    }
                    if all(
                        s["commit_index"] >= target
                        and s["applied"] >= target
                        for s in statuses.values()
                    ):
                        break
                    time.sleep(0.25)  # leave the CPU to the stragglers
                    time.sleep(0.1)

                lost = {
                    rid: [
                        cid for cid in acked_cids
                        if cid not in status["committed_cids"]
                    ]
                    for rid, status in statuses.items()
                }
                lost_total = sum(len(v) for v in lost.values())
                shadows = [
                    statuses[rid]["shadow"] for rid in range(replicas)
                ]
                shadows_identical = all(
                    s["gpt_fingerprints"] == shadows[0]["gpt_fingerprints"]
                    and s["charges_crc"] == shadows[0]["charges_crc"]
                    and s["counters"] == shadows[0]["counters"]
                    for s in shadows[1:]
                )
                logs_identical = all(
                    statuses[rid]["committed_cids"]
                    == statuses[0]["committed_cids"]
                    for rid in range(1, replicas)
                )

                incidental["final_roles"] = {
                    str(rid): statuses[rid]["role"]
                    for rid in range(replicas)
                }
                incidental["storm_wire"] = storm_wire
                incidental["traffic_replayed"] = traffic_replayed
                deterministic = {
                    "bootstrap": boot["result"],
                    "traffic": {
                        "frames": sum(
                            t["frames"] for t in traffic_results
                        ),
                        "delivered": sum(
                            t["delivered"] for t in traffic_results
                        ),
                        "dropped": sum(
                            t["dropped"] for t in traffic_results
                        ),
                        "divergences": sum(
                            t["divergences"] for t in traffic_results
                        ),
                        "byte_identical": bool(all(
                            t["byte_identical"] for t in traffic_results
                        )),
                    },
                    "storm": shadows[0]["counters"],
                    "audit": audit,
                    "committed_verbs": len(acked_cids),
                    "lost_committed_verbs": lost_total,
                    "replica_logs_identical": bool(logs_identical),
                    "replica_shadows_identical": bool(shadows_identical),
                }
                deterministic["ok"] = bool(
                    deterministic["traffic"]["divergences"] == 0
                    and deterministic["traffic"]["byte_identical"]
                    and audit["charging_identical"]
                    and audit["gpt_replicas_identical"]
                    and lost_total == 0
                    and logs_identical
                    and shadows_identical
                )
                report["deterministic"] = deterministic
                report["incidental"] = incidental
                for rid in range(replicas):
                    client.shutdown_replica(rid)
        finally:
            client.close()
            _shutdown_daemons(runtime.addresses)
            replica_set.stop()
        runtime.stop()
        report["leaked_processes"] = (
            len(runtime.leaked()) + len(replica_set.leaked())
        )
    re_elected = (
        len(set(incidental["terms"])) >= min(1, kill_leader) + 1
        if kill_leader else True
    )
    report["re_elected"] = bool(re_elected)
    report["ok"] = bool(
        report.get("deterministic", {}).get("ok")
        and report["leaked_processes"] == 0
        and re_elected
    )
    return report
