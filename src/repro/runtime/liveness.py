"""Heartbeat-driven liveness detection (paper §7, over real sockets).

The controller probes every daemon with ``MSG_PING``; this module keeps
the per-node state machine:

    ALIVE --miss--> SUSPECT --(miss_threshold consecutive misses)--> DEAD

Any successful probe resets a SUSPECT node to ALIVE.  DEAD is sticky —
a crashed daemon that comes back needs explicit :meth:`reset` (after
re-bootstrap), because its replica and FIB are gone.  State transitions
are driven purely by probe outcomes, never by wall-clock reads, so a
run's detection latency is an exact, reproducible number of polls.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.obs.metrics import LATENCY_BUCKETS_US, MetricsRegistry


class NodeState(enum.Enum):
    """Liveness verdict for one daemon."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class HeartbeatMonitor:
    """Tracks consecutive heartbeat misses per node.

    Args:
        num_nodes: daemons to track (ids ``0..num_nodes-1``).
        miss_threshold: consecutive misses that declare a node DEAD.
        registry: metrics registry for heartbeat RTTs and miss counts.
        fence_after: auto-fence policy knob — consecutive misses at
            which a still-SUSPECT node becomes a *fence candidate*
            (:meth:`fence_candidates`).  ``None`` (the default) disables
            the policy; the operator control plane reads the candidate
            list after each poll and force-kills the stragglers instead
            of waiting the full ``miss_threshold`` for a natural DEAD
            declaration.
    """

    def __init__(
        self,
        num_nodes: int,
        miss_threshold: int = 3,
        registry: Optional[MetricsRegistry] = None,
        fence_after: Optional[int] = None,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        if fence_after is not None and not (
            1 <= fence_after <= miss_threshold
        ):
            raise ValueError("fence_after must be in [1, miss_threshold]")
        self.miss_threshold = miss_threshold
        self.fence_after = fence_after
        self.registry = registry if registry is not None else MetricsRegistry()
        self._misses: Dict[int, int] = {n: 0 for n in range(num_nodes)}
        self._dead: Dict[int, bool] = {n: False for n in range(num_nodes)}
        self._h_rtt = self.registry.histogram(
            "runtime.heartbeat_rtt_us", buckets=LATENCY_BUCKETS_US,
            description="round-trip time of successful heartbeat probes",
        )
        self._c_misses = self.registry.counter(
            "runtime.heartbeat.misses", "failed heartbeat probes"
        )
        self._c_deaths = self.registry.counter(
            "runtime.heartbeat.deaths", "nodes declared dead"
        )

    def track(self, node_id: int) -> None:
        """Start tracking a node that joined after construction."""
        self._misses.setdefault(node_id, 0)
        self._dead.setdefault(node_id, False)

    def untrack(self, node_id: int) -> None:
        """Stop tracking a node that drained out gracefully."""
        self._misses.pop(node_id, None)
        self._dead.pop(node_id, None)

    def record_success(self, node_id: int, rtt_s: float) -> None:
        """A probe came back; SUSPECT resets, DEAD stays dead."""
        self._h_rtt.observe(rtt_s * 1e6)
        if not self._dead[node_id]:
            self._misses[node_id] = 0

    def record_miss(self, node_id: int) -> NodeState:
        """A probe failed; returns the node's state afterwards."""
        self._c_misses.inc()
        if self._dead[node_id]:
            return NodeState.DEAD
        self._misses[node_id] += 1
        if self._misses[node_id] >= self.miss_threshold:
            self._dead[node_id] = True
            self._c_deaths.inc()
            return NodeState.DEAD
        return NodeState.SUSPECT

    def force_dead(self, node_id: int) -> None:
        """Declare a node DEAD immediately (fencing, §7 force-kill).

        Idempotent: fencing an already-DEAD node changes nothing and
        does not double-count the death.
        """
        if not self._dead.get(node_id, False):
            self._dead[node_id] = True
            self._misses[node_id] = 0
            self._c_deaths.inc()

    def reset(self, node_id: int) -> None:
        """Forget a node's death (it was re-bootstrapped)."""
        self._misses[node_id] = 0
        self._dead[node_id] = False

    def state(self, node_id: int) -> NodeState:
        """Current liveness verdict."""
        if self._dead[node_id]:
            return NodeState.DEAD
        if self._misses[node_id]:
            return NodeState.SUSPECT
        return NodeState.ALIVE

    def misses(self, node_id: int) -> int:
        """Consecutive misses so far (0 once declared dead or alive)."""
        return self._misses[node_id]

    def dead_nodes(self) -> List[int]:
        """Every node currently declared DEAD, ascending."""
        return sorted(n for n, dead in self._dead.items() if dead)

    def suspect_nodes(self) -> List[int]:
        """Every node currently SUSPECT (missed, not yet dead)."""
        return sorted(
            n for n, misses in self._misses.items()
            if misses and not self._dead[n]
        )

    def fence_candidates(self) -> List[int]:
        """SUSPECT nodes at or past the auto-fence threshold.

        Empty unless ``fence_after`` was configured.  Candidates stay
        listed until they recover, are fenced (:meth:`force_dead`) or
        die naturally.
        """
        if self.fence_after is None:
            return []
        return sorted(
            n for n, misses in self._misses.items()
            if misses >= self.fence_after and not self._dead[n]
        )

    def tracked(self) -> List[int]:
        """Every node under observation, ascending."""
        return sorted(self._misses)
