"""Heartbeat-driven liveness detection (paper §7, over real sockets).

The controller probes every daemon with ``MSG_PING``; this module keeps
the per-node state machine:

    ALIVE --miss--> SUSPECT --(miss_threshold consecutive misses)--> DEAD

Any successful probe resets a SUSPECT node to ALIVE.  DEAD is sticky —
a crashed daemon that comes back needs explicit :meth:`reset` (after
re-bootstrap), because its replica and FIB are gone.  State transitions
are driven purely by probe outcomes, never by wall-clock reads, so a
run's detection latency is an exact, reproducible number of polls.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.obs.metrics import LATENCY_BUCKETS_US, MetricsRegistry


class NodeState(enum.Enum):
    """Liveness verdict for one daemon."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class HeartbeatMonitor:
    """Tracks consecutive heartbeat misses per node.

    Args:
        num_nodes: daemons to track (ids ``0..num_nodes-1``).
        miss_threshold: consecutive misses that declare a node DEAD.
        registry: metrics registry for heartbeat RTTs and miss counts.
    """

    def __init__(
        self,
        num_nodes: int,
        miss_threshold: int = 3,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        self.miss_threshold = miss_threshold
        self.registry = registry if registry is not None else MetricsRegistry()
        self._misses: Dict[int, int] = {n: 0 for n in range(num_nodes)}
        self._dead: Dict[int, bool] = {n: False for n in range(num_nodes)}
        self._h_rtt = self.registry.histogram(
            "runtime.heartbeat_rtt_us", buckets=LATENCY_BUCKETS_US,
            description="round-trip time of successful heartbeat probes",
        )
        self._c_misses = self.registry.counter(
            "runtime.heartbeat.misses", "failed heartbeat probes"
        )
        self._c_deaths = self.registry.counter(
            "runtime.heartbeat.deaths", "nodes declared dead"
        )

    def track(self, node_id: int) -> None:
        """Start tracking a node that joined after construction."""
        self._misses.setdefault(node_id, 0)
        self._dead.setdefault(node_id, False)

    def untrack(self, node_id: int) -> None:
        """Stop tracking a node that drained out gracefully."""
        self._misses.pop(node_id, None)
        self._dead.pop(node_id, None)

    def record_success(self, node_id: int, rtt_s: float) -> None:
        """A probe came back; SUSPECT resets, DEAD stays dead."""
        self._h_rtt.observe(rtt_s * 1e6)
        if not self._dead[node_id]:
            self._misses[node_id] = 0

    def record_miss(self, node_id: int) -> NodeState:
        """A probe failed; returns the node's state afterwards."""
        self._c_misses.inc()
        if self._dead[node_id]:
            return NodeState.DEAD
        self._misses[node_id] += 1
        if self._misses[node_id] >= self.miss_threshold:
            self._dead[node_id] = True
            self._c_deaths.inc()
            return NodeState.DEAD
        return NodeState.SUSPECT

    def reset(self, node_id: int) -> None:
        """Forget a node's death (it was re-bootstrapped)."""
        self._misses[node_id] = 0
        self._dead[node_id] = False

    def state(self, node_id: int) -> NodeState:
        """Current liveness verdict."""
        if self._dead[node_id]:
            return NodeState.DEAD
        if self._misses[node_id]:
            return NodeState.SUSPECT
        return NodeState.ALIVE

    def misses(self, node_id: int) -> int:
        """Consecutive misses so far (0 once declared dead or alive)."""
        return self._misses[node_id]

    def dead_nodes(self) -> List[int]:
        """Every node currently declared DEAD, ascending."""
        return sorted(n for n, dead in self._dead.items() if dead)

    def tracked(self) -> List[int]:
        """Every node under observation, ascending."""
        return sorted(self._misses)
