"""The scale-tier smoke drill: shm sharing, delta-log rejoin, hard gates.

CI's ``runtime-smoke`` job proves the socket runtime's differential
correctness; this module proves the *scale tier* (shared-memory GPT
snapshots, epoch delta logs) holds its contract, cheaply enough to run on
every push:

**Part A — one segment, many attachers, at ~10⁶ keys.**  A synthesized
million-key separator is published once and attached by child processes
exactly the way daemons attach it (copy-on-write, fingerprint-checked,
no CRC pass).  Gates: every attacher parses the identical structure
(fingerprints equal), attaching beats deserialising the same bytes by at
least :data:`COLD_START_GATE` (the reason ``MSG_STATE_REF`` exists), and
closing the publisher leaves ``/dev/shm`` clean.

**Part B — kill, repair, storm, rejoin, at demo scale.**  A live cluster
is bootstrapped over shm, one daemon is SIGKILLed and repaired, an update
storm runs while it is gone, a fresh process rejoins via
:meth:`~repro.runtime.controller.RuntimeController.rejoin_node` and
replays the delta log.  Gates: the rejoined replica is byte-identical to
the shadow (and stays so through another storm), routed traffic does not
diverge, **zero** full snapshots crossed the wire
(``runtime.snapshot_bytes == 0`` — everything travelled by reference),
and neither processes nor segments leak.

Synthesized separators (:func:`synthesize_separator`) have random array
contents: structurally valid, lookup-safe, byte-stable for a seed — but
mapping keys to arbitrary values, which is irrelevant here and lets the
drill reach sizes the construction search cannot at smoke cost.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, Optional, Tuple

import multiprocessing

import numpy as np

from repro.core import serialize, shm
from repro.core import separator as separator_registry
from repro.core.fallback import FallbackTable
from repro.core.params import (
    BUCKETS_PER_BLOCK,
    CANDIDATES_PER_BUCKET,
    GROUPS_PER_BLOCK,
    KEYS_PER_BLOCK,
    SetSepParams,
)
from repro.core.setsep import SetSep

#: Attach must beat deserialising the same bytes by this factor (Part A).
COLD_START_GATE = 3.0


def synthesize_separator(
    num_keys: int,
    backend: Optional[str] = None,
    value_bits: int = 2,
    seed: int = 1,
):
    """A structurally valid separator sized for ``num_keys``, no search.

    Array contents are drawn uniformly at random (within each field's
    legal range), so lookups are safe and dumps are deterministic per
    seed — only the key→value mapping is meaningless.  This is what lets
    smoke tests and perf-lab benchmarks exercise million-to-16M-key
    structures that the real construction search would take minutes to
    build.
    """
    backend = separator_registry.resolve_backend(backend)
    num_blocks = max(1, math.ceil(num_keys / KEYS_PER_BLOCK))
    rng = np.random.default_rng(seed)
    if backend == "othello":
        from repro.othello.params import OthelloParams
        from repro.othello.structure import OthelloSeparator

        params = OthelloParams(value_bits=value_bits)
        vps = params.vertices_per_side
        return OthelloSeparator(
            params,
            num_blocks,
            seeds=rng.integers(0, 1 << 32, size=num_blocks, dtype=np.uint32),
            array_a=rng.integers(
                0, 1 << 32, size=(num_blocks, vps), dtype=np.uint32
            ),
            array_b=rng.integers(
                0, 1 << 32, size=(num_blocks, vps), dtype=np.uint32
            ),
        )
    params = SetSepParams(value_bits=value_bits)
    num_buckets = num_blocks * BUCKETS_PER_BLOCK
    num_groups = num_blocks * GROUPS_PER_BLOCK
    return SetSep(
        params,
        num_blocks,
        choices=rng.integers(
            0, CANDIDATES_PER_BUCKET, size=num_buckets, dtype=np.uint8
        ),
        indices=rng.integers(
            0, (1 << params.index_bits) - 1,
            size=(num_groups, params.value_bits), dtype=np.uint16,
        ),
        arrays=rng.integers(
            0, 1 << 32, size=(num_groups, params.value_bits), dtype=np.uint32
        ),
        failed_groups=np.zeros(num_groups, dtype=bool),
        fallback=FallbackTable(),
    )


def _pss_kb() -> int:
    """This process's proportional set size in KiB (0 if unreadable)."""
    try:
        with open("/proc/self/smaps_rollup", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _attach_child(name: str, fingerprint: int, probe_keys, conn) -> None:
    """Child body: attach the segment like a daemon would, report back."""
    before_kb = _pss_kb()
    started = time.perf_counter()
    attachment = shm.attach(name, expected_fingerprint=fingerprint)
    attach_ms = (time.perf_counter() - started) * 1e3
    values = attachment.separator.lookup_batch(probe_keys)
    conn.send({
        "attach_ms": attach_ms,
        "fingerprint": attachment.fingerprint,
        "checksum": int(values.sum()),
        "pss_delta_kb": _pss_kb() - before_kb,
    })
    conn.close()
    attachment.close()


def _time_best(fn, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _segment_sharing_drill(
    keys: int, attachers: int, seed: int, backend: Optional[str]
) -> Dict[str, object]:
    """Part A: publish one ~``keys``-key segment, attach it N ways."""
    separator = synthesize_separator(keys, backend=backend, seed=seed)
    payload = serialize.dumps(separator)
    expected = serialize.fingerprint_bytes(payload)
    # The wire path a rejoining daemon would otherwise pay: deserialise
    # (CRC pass + array copies) the same bytes.
    wire_load_s = _time_best(lambda: serialize.loads(payload))
    publisher = shm.SegmentPublisher(
        prefix=f"{shm.SEGMENT_PREFIX}smoke-{os.getpid():x}-"
    )
    probe = np.arange(1, 4097, dtype=np.uint64) * np.uint64(
        0x9E3779B97F4A7C15
    )
    try:
        segment = publisher.publish(payload)

        def _attach_once() -> None:
            shm.attach(segment.name, expected_fingerprint=expected).close()

        attach_s = _time_best(_attach_once)
        reference = int(separator.lookup_batch(probe).sum())
        reports: List[dict] = []
        for _ in range(attachers):
            parent, child = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=_attach_child,
                args=(segment.name, expected, probe, child),
                daemon=True,
            )
            process.start()
            child.close()
            if not parent.poll(60.0):
                process.kill()
                raise RuntimeError("attacher child did not report in time")
            reports.append(parent.recv())
            parent.close()
            process.join(timeout=10.0)
    finally:
        publisher.close()
    speedup = wire_load_s / max(attach_s, 1e-9)
    return {
        "keys": keys,
        "payload_bytes": len(payload),
        "fingerprint": expected,
        "wire_load_ms": round(wire_load_s * 1e3, 3),
        "attach_ms": round(attach_s * 1e3, 3),
        "cold_start_speedup": round(speedup, 2),
        "attachers": reports,
        "gates": {
            "fingerprints_identical": all(
                r["fingerprint"] == expected for r in reports
            ),
            "lookups_identical": all(
                r["checksum"] == reference for r in reports
            ),
            "cold_start": speedup >= COLD_START_GATE,
            "segments_unlinked": not shm.list_segments(publisher.prefix),
        },
    }


def _rejoin_drill(
    num_nodes: int, flows: int, updates: int, seed: int
) -> Dict[str, object]:
    """Part B: bootstrap over shm, kill/repair/storm, rejoin by delta log."""
    from repro.cluster.architectures import Architecture
    from repro.epc.gateway import EpcGateway
    from repro.epc.packets import parse_ip
    from repro.epc.traffic import FlowGenerator
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.controller import RuntimeController
    from repro.runtime.launcher import DEMO_GATEWAY_IP, LocalRuntime
    from repro.runtime.protocol import OP_INSERT, UpdateOp

    victim = num_nodes - 1
    runtime = LocalRuntime(num_nodes)
    with runtime:
        gateway = EpcGateway(
            Architecture.SCALEBRICKS, num_nodes,
            parse_ip(DEMO_GATEWAY_IP), registry=MetricsRegistry(),
        )
        generator = FlowGenerator(seed)
        live_flows = generator.populate(gateway, flows)
        gateway.start()
        controller = RuntimeController(
            runtime.addresses, miss_threshold=2, ping_timeout=0.5,
            use_shm=True,
        )
        controller.killer = runtime.kill
        controller.connect()
        bootstrap = controller.bootstrap_from_gateway(gateway)

        def storm(count: int, salt: int) -> int:
            rng = np.random.default_rng(seed * 65537 + salt)
            ops: List[UpdateOp] = []
            for _ in range(count):
                flow = live_flows[int(rng.integers(len(live_flows)))]
                target = int(rng.integers(num_nodes))
                record = gateway.controller.record_for_key(flow.key())
                assert record is not None
                if record.handling_node == target:
                    continue
                moved = gateway.rehome_flow(flow, target)
                ops.append(UpdateOp(
                    OP_INSERT, moved.key, target, moved.teid,
                    moved.base_station_ip,
                ))
            controller.push_updates(ops)
            return len(ops)

        try:
            storm(updates // 3, 1)
            controller.kill_node(victim)
            controller.await_detection(victim)
            controller.handle_node_failure(victim, gateway)
            stormed_down = storm(updates - updates // 3, 2)
            log_records = (
                controller.deltalog.record_count
                if controller.deltalog is not None else 0
            )
            address = runtime.respawn(victim)
            rejoin = controller.rejoin_node(gateway, victim, address)

            def replicas_identical() -> bool:
                shadow_crc = serialize.fingerprint(
                    gateway.cluster.nodes[0].gpt.setsep
                )
                return all(
                    int(status["gpt_crc"]) == shadow_crc
                    for status in controller.status_all().values()
                )

            converged = replicas_identical()
            # Post-rejoin traffic, ingress pinned to the rejoined node.
            frames = generator.packet_stream(live_flows, 200)
            shadow = [
                gateway.process_downstream(frame, ingress=victim)
                for frame in frames
            ]
            wire = controller.route_frames(frames, [victim] * len(frames))
            divergences = sum(
                1
                for (_result, out), outcome in zip(shadow, wire)
                if (out or b"") != (outcome.out or b"")
            )
            storm(updates // 3, 3)
            still_converged = replicas_identical()
            counters = {
                name: controller.registry.counter(name).value
                for name in (
                    "runtime.snapshot_bytes",
                    "runtime.tx.snapshot",
                    "runtime.tx.swap",
                    "runtime.tx.state_ref",
                    "runtime.stateref.fallbacks",
                )
            }
        finally:
            controller.shutdown_all()
        runtime.stop()
        leaked_processes = len(runtime.leaked())
    leaked_segments = shm.list_segments(
        f"{shm.SEGMENT_PREFIX}{os.getpid():x}-"
    )
    return {
        "nodes": num_nodes,
        "flows": flows,
        "bootstrap": bootstrap,
        "stormed_while_down": stormed_down,
        "deltalog_records_at_rejoin": log_records,
        "rejoin": rejoin.to_dict(),
        "post_rejoin_divergences": divergences,
        "counters": counters,
        "gates": {
            "bootstrap_by_reference": bootstrap["shm_attached"] == num_nodes,
            "rejoin_by_reference": rejoin.detail["transport"] == "shm",
            "replicas_identical_after_rejoin": converged,
            "replicas_identical_after_storm": still_converged,
            "no_divergence": divergences == 0,
            "zero_wire_snapshots": (
                counters["runtime.snapshot_bytes"] == 0
                and counters["runtime.tx.snapshot"] == 0
                and counters["runtime.tx.swap"] == 0
            ),
            "no_leaked_processes": leaked_processes == 0,
            "no_leaked_segments": not leaked_segments,
        },
    }


def run_scale_smoke(
    keys: int = 1_000_000,
    attachers: int = 2,
    nodes: int = 2,
    flows: int = 400,
    updates: int = 300,
    seed: int = 7,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Run both drills; ``report["ok"]`` is the AND of every hard gate.

    On hosts without ``/dev/shm`` the report carries
    ``shm_available: false`` and only checks that the wire fallback still
    exists (nothing else is gateable there).
    """
    report: Dict[str, object] = {
        "shm_available": shm.available(),
        "seed": seed,
        "backend": separator_registry.resolve_backend(backend),
    }
    if not shm.available():
        report["ok"] = True
        report["skipped"] = "no /dev/shm on this host"
        return report
    sharing = _segment_sharing_drill(keys, attachers, seed, backend)
    rejoin = _rejoin_drill(nodes, flows, updates, seed)
    report["segment_sharing"] = sharing
    report["rejoin_drill"] = rejoin
    gates: Dict[str, bool] = {}
    for part, doc in (("sharing", sharing), ("rejoin", rejoin)):
        for name, passed in doc["gates"].items():
            gates[f"{part}.{name}"] = bool(passed)
    report["gates"] = gates
    report["ok"] = all(gates.values())
    return report
