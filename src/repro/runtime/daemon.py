"""The per-node daemon: one real process of the ScaleBricks cluster.

A ``NodeDaemon`` is everything one appliance node runs, behind a TCP
listener instead of Python method calls:

* a **GPT replica** bootstrapped from a separator snapshot — either
  backend's payload kind, shipped whole on the wire (``MSG_SNAPSHOT``) or
  attached from a controller-published shared-memory segment
  (``MSG_STATE_REF``, :mod:`repro.core.shm`) — and kept current by
  applying §4.5 update-record broadcasts from its peers (``MSG_DELTA``);
* its **RIB slice** — the blocks this node owns (``block % N``); for
  updates on owned keys it plays the §4.5 *owner* role: recompute the
  group on its own replica, push FIB changes to handling nodes, ship the
  delta to every peer;
* its **partial FIB** — exact entries for exactly the flows it handles,
  which is what rejects one-sided-error packets (§3.2);
* the **data path**: raw Ethernet frames arrive (``MSG_ROUTE``), are
  parsed by the vectorised codec, looked up in the local GPT replica and
  either handled here or forwarded once to the handling daemon
  (``MSG_FORWARD``) — never more than one internal hop, the paper's
  core forwarding property.

The daemon is single-threaded and event-driven; determinism comes from
the controller serialising its requests and from the owner completing
all sub-requests (FIB pushes, delta ships) before acknowledging an
update batch.  A :class:`repro.chaos.transport.TransportFaultBudgets`
plan, armed over the wire, injects drop/delay/duplicate faults at the
socket boundary for delta ships and forwarded frames.
"""

from __future__ import annotations

import selectors
import socket
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.chaos import transport as tfaults
from repro.core import serialize, shm
from repro.core import separator as separator_registry
from repro.core.hashfamily import canonical_key
from repro.epc import fastpath
from repro.gpt.gpt import GlobalPartitionTable
from repro.obs.metrics import MetricsRegistry
from repro.runtime import protocol
from repro.runtime.framing import FramedSocket, FramingError, pack_frame_list, unpack_frame_list
from repro.runtime.protocol import (
    MSG_ADOPT,
    MSG_CLAIM,
    MSG_DELTA,
    MSG_DOWN,
    MSG_FIB,
    MSG_FORWARD,
    MSG_NAMES,
    MSG_SNAPSHOT,
    MSG_STATE_REF,
    MSG_SWAP,
    MSG_UPDATE,
    OP_INSERT,
    OP_REMOVE,
    RSP_ERR,
    RSP_FORWARD,
    RSP_OK,
    RSP_PONG,
    RSP_REDIRECT,
    RSP_ROUTE,
    RSP_STATUS,
    RSP_UPDATE,
    RouteOutcome,
    STATUS_DELIVERED,
    STATUS_LOST,
    STATUS_MALFORMED,
    STATUS_NODE_DOWN,
    STATUS_UNKNOWN,
    UpdateOp,
)


class NodeDaemon:
    """One cluster node as a socket-served process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else MetricsRegistry()
        # Topology (set by HELLO).
        self.node_id: int = -1
        self.num_nodes: int = 0
        self.peers: List[Tuple[str, int]] = []
        self.gateway_ip: int = 0
        # Forwarding state (set by SNAPSHOT/SWAP).
        self.gpt: Optional[GlobalPartitionTable] = None
        self.fib: Dict[int, int] = {}          # key -> teid
        self.bs: Dict[int, int] = {}           # key -> base-station IP
        #: RIB slice: block -> {key: (handling node, value)}, insertion
        #: order per block mirrors the in-process RIB exactly — group
        #: rebuild inputs must match byte for byte.
        self.slice: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.charges: Dict[int, int] = {}      # teid -> bytes charged
        #: Peers the controller has declared dead (MSG_DOWN): no FIB or
        #: delta ships are attempted toward them.
        self.down: set = set()
        # Transport fault injection.
        self.faults = tfaults.TransportFaultBudgets()
        self._delayed_deltas: List[Tuple[int, bytes]] = []
        self._delayed_forwards: List[Tuple[int, bytes]] = []
        self._peer_socks: Dict[int, FramedSocket] = {}
        self._running = False
        # Leader fencing (replicated controllers).  A controller claims
        # leadership per connection (MSG_CLAIM); once any claim has been
        # seen, state-mutating requests on a connection whose claimed
        # term is below the highest one get RSP_REDIRECT instead of
        # execution, so a deposed leader cannot mutate this node.  A
        # legacy single controller never claims and is never redirected.
        self.claimed_term = 0
        self.claimed_leader: Optional[int] = None
        self._conn_terms: Dict[int, int] = {}
        #: Live shared-memory attachment backing the GPT (MSG_STATE_REF).
        self._attached: Optional[shm.AttachedSegment] = None
        #: Attach mode for MSG_STATE_REF ("cow" shares pages, "copy"
        #: privatises the whole snapshot like the wire path would).
        self.shm_mode = "cow"
        self._c_snapshot_bytes = self.registry.counter(
            "runtime.snapshot_bytes",
            "separator snapshot bytes received on the wire",
        )
        self._c_stateref_attached = self.registry.counter(
            "runtime.stateref.attached",
            "state epochs adopted by shared-memory attach",
        )
        self._c_stateref_replayed = self.registry.counter(
            "runtime.stateref.replayed",
            "delta-log records replayed during state_ref catch-up",
        )
        self._c_deltas_applied = self.registry.counter(
            "runtime.deltas.applied", "GPT deltas applied to this replica"
        )
        self._c_groups_rebuilt = self.registry.counter(
            "runtime.groups_rebuilt", "owner-side group recomputations"
        )
        self._c_frames_local = self.registry.counter(
            "runtime.frames.local", "frames handled at their ingress node"
        )
        self._c_frames_forwarded = self.registry.counter(
            "runtime.frames.forwarded", "frames forwarded to a peer daemon"
        )
        self._c_frames_received = self.registry.counter(
            "runtime.frames.received", "forwarded frames received from peers"
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve_forever(
        self, ready: Optional[Callable[[int], None]] = None
    ) -> None:
        """Bind, announce the port via ``ready`` and serve until SHUTDOWN."""
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((self.host, self.port))
        lsock.listen(64)
        self.port = lsock.getsockname()[1]
        if ready is not None:
            ready(self.port)
        sel = selectors.DefaultSelector()
        sel.register(lsock, selectors.EVENT_READ, None)
        conns: List[FramedSocket] = []
        self._running = True
        try:
            while self._running:
                for key, _events in sel.select(timeout=0.5):
                    if key.data is None:
                        conn, _addr = lsock.accept()
                        framed = FramedSocket(conn)
                        sel.register(conn, selectors.EVENT_READ, framed)
                        conns.append(framed)
                        continue
                    framed = key.data
                    try:
                        msg_type, payload = framed.recv()
                    except (FramingError, OSError):
                        sel.unregister(framed.sock)
                        framed.close()
                        conns.remove(framed)
                        self._conn_terms.pop(id(framed), None)
                        continue
                    rsp_type, rsp_payload = self._dispatch(
                        msg_type, payload, conn=framed
                    )
                    try:
                        framed.send(rsp_type, rsp_payload)
                    except OSError:
                        sel.unregister(framed.sock)
                        framed.close()
                        conns.remove(framed)
                        self._conn_terms.pop(id(framed), None)
                    if not self._running:
                        break
        finally:
            for framed in conns:
                framed.close()
            sel.close()
            lsock.close()
            for sock in self._peer_socks.values():
                sock.close()
            self._peer_socks.clear()

    #: Requests that mutate node state and therefore honour leader
    #: claims: a connection with a stale claimed term is redirected.
    _FENCED_TYPES = frozenset(
        (MSG_SNAPSHOT, MSG_STATE_REF, MSG_SWAP, MSG_UPDATE, MSG_ADOPT,
         MSG_DOWN)
    )

    def _dispatch(
        self, msg_type: int, payload: bytes, conn=None
    ) -> Tuple[int, bytes]:
        name = MSG_NAMES.get(msg_type)
        if name is None:
            return RSP_ERR, protocol.encode_json(
                {"error": f"unknown message type {msg_type:#x}"}
            )
        self.registry.counter(f"runtime.rx.{name}").inc()
        if msg_type == MSG_CLAIM:
            return self._on_claim(payload, conn)
        if (
            msg_type in self._FENCED_TYPES
            and self.claimed_term > 0
            and self._conn_terms.get(id(conn), 0) < self.claimed_term
        ):
            self.registry.counter("runtime.claims.redirected").inc()
            return RSP_REDIRECT, protocol.encode_json(
                {"leader": self.claimed_leader, "term": self.claimed_term}
            )
        handler = getattr(self, f"_on_{name}", None)
        if handler is None:
            return RSP_ERR, protocol.encode_json(
                {"error": f"message {name!r} has no daemon handler"}
            )
        try:
            return handler(payload)
        except Exception as exc:  # noqa: BLE001 - a PFE never dies
            return RSP_ERR, protocol.encode_json(
                {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _on_claim(self, payload: bytes, conn=None) -> Tuple[int, bytes]:
        """A controller claims leadership of this daemon's control link."""
        doc = protocol.decode_json(payload)
        term = int(doc["term"])
        leader = int(doc["leader"])
        if term < self.claimed_term:
            return RSP_REDIRECT, protocol.encode_json(
                {"leader": self.claimed_leader, "term": self.claimed_term}
            )
        self.claimed_term = term
        self.claimed_leader = leader
        if conn is not None:
            self._conn_terms[id(conn)] = term
        return RSP_OK, protocol.encode_json(
            {"accepted": True, "term": term, "leader": leader}
        )

    # ------------------------------------------------------------------
    # Peer links
    # ------------------------------------------------------------------

    def _peer(self, node_id: int) -> FramedSocket:
        """Cached connection to a peer daemon (lazily dialled)."""
        sock = self._peer_socks.get(node_id)
        if sock is None:
            host, port = self.peers[node_id]
            sock = FramedSocket.connect(host, port)
            self._peer_socks[node_id] = sock
        return sock

    def _peer_request(
        self, node_id: int, msg_type: int, payload: bytes
    ) -> Tuple[int, bytes]:
        """Request/response with a peer; a dead link is dropped and raised."""
        sock = self._peer(node_id)
        try:
            return sock.request(msg_type, payload)
        except (FramingError, OSError):
            self._peer_socks.pop(node_id, None)
            sock.close()
            raise

    # ------------------------------------------------------------------
    # Control plane handlers
    # ------------------------------------------------------------------

    def _on_hello(self, payload: bytes) -> Tuple[int, bytes]:
        doc = protocol.decode_json(payload)
        self.node_id = int(doc["node_id"])
        self.num_nodes = int(doc["num_nodes"])
        self.peers = [(str(h), int(p)) for h, p in doc["peers"]]
        self.gateway_ip = int(doc["gateway_ip"])
        return RSP_OK, protocol.encode_json({"node_id": self.node_id})

    def _install_state(
        self, header: dict, setsep, attachment: Optional[shm.AttachedSegment]
    ) -> dict:
        """Adopt a fully-built control plane (make-before-break).

        ``setsep`` is a separator replica of either backend — deserialised
        from wire bytes or parsed out of a shared-memory attachment — and
        ``header`` carries this daemon's FIB slice, RIB slice and topology.
        Everything is built before any reference is swapped; a failure
        leaves the old plane live.  Returns ack detail fields.
        """
        num_nodes = int(header["num_nodes"])
        gpt = GlobalPartitionTable(num_nodes, setsep)
        fib: Dict[int, int] = {}
        bs: Dict[int, int] = {}
        for key, _node, value, bs_ip in header["fib"]:
            fib[int(key)] = int(value)
            bs[int(key)] = int(bs_ip)
        rib_slice: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for key, node, value in header["rib"]:
            block = gpt.block_of(int(key))
            rib_slice.setdefault(block, {})[int(key)] = (int(node), int(value))
        self.gpt = gpt
        self.fib = fib
        self.bs = bs
        self.slice = rib_slice
        self.num_nodes = num_nodes
        previous, self._attached = self._attached, attachment
        if previous is not None:
            previous.close()
        if "peers" in header:
            self.peers = [(str(h), int(p)) for h, p in header["peers"]]
            for sock in self._peer_socks.values():
                sock.close()
            self._peer_socks.clear()
        return {
            "fib_entries": len(fib),
            "rib_entries": len(header["rib"]),
        }

    def _load_state(self, payload: bytes) -> Tuple[int, bytes]:
        """Bootstrap/replace this replica from a full wire snapshot.

        The payload's snapshot section is either backend's serialised form
        (:func:`repro.core.serialize.loads` dispatches on the magic).
        """
        header, snapshot = protocol.decode_state(payload)
        setsep = serialize.loads(snapshot)
        detail = self._install_state(header, setsep, None)
        self._c_snapshot_bytes.inc(len(snapshot))
        detail["snapshot_bytes"] = len(snapshot)
        return RSP_OK, protocol.encode_json(detail)

    _on_snapshot = _load_state
    _on_swap = _load_state

    def _on_state_ref(self, payload: bytes) -> Tuple[int, bytes]:
        """Adopt state by shared-memory reference instead of wire bytes.

        The payload reuses the state framing: the JSON header additionally
        carries ``segment`` (name + expected fingerprint) and the snapshot
        section holds *catch-up records* — the controller's delta log since
        the segment's floor — rather than a snapshot.  The daemon maps the
        segment copy-on-write, parses it zero-copy, replays the records,
        then swaps planes.  Any failure (missing segment, fingerprint
        mismatch) is reported as RSP_ERR and the controller falls back to
        the full-snapshot wire path.
        """
        header, catchup = protocol.decode_state(payload)
        segment = header["segment"]
        attachment = shm.attach(
            str(segment["name"]),
            expected_fingerprint=int(segment["fingerprint"]),
            mode=self.shm_mode,
        )
        try:
            setsep = attachment.separator
            replayed = 0
            for record, _params in separator_registry.parse_update_stream(
                catchup, separator_registry.backend_of(setsep)
            ):
                setsep.apply_delta(record)
                replayed += 1
            detail = self._install_state(header, setsep, attachment)
        except Exception:
            attachment.close()
            raise
        self._c_stateref_attached.inc()
        self._c_stateref_replayed.inc(replayed)
        detail.update({
            "segment": attachment.name,
            "mode": attachment.mode,
            "replayed": replayed,
        })
        return RSP_OK, protocol.encode_json(detail)

    def _on_adopt(self, payload: bytes) -> Tuple[int, bytes]:
        assert self.gpt is not None, "adopt before snapshot"
        doc = protocol.decode_json(payload)
        adopted = 0
        for key, node, value in doc["entries"]:
            block = self.gpt.block_of(int(key))
            self.slice.setdefault(block, {})[int(key)] = (int(node), int(value))
            adopted += 1
        return RSP_OK, protocol.encode_json({"adopted": adopted})

    def _on_down(self, payload: bytes) -> Tuple[int, bytes]:
        doc = protocol.decode_json(payload)
        self.down = {int(n) for n in doc["down"]}
        if "peers" in doc:
            # A rejoin re-announces the topology: the revived node listens
            # on a fresh port, so cached links must be re-dialled.
            self.peers = [(str(h), int(p)) for h, p in doc["peers"]]
            for sock in self._peer_socks.values():
                sock.close()
            self._peer_socks.clear()
        else:
            for node_id in list(self._peer_socks):
                if node_id in self.down:
                    self._peer_socks.pop(node_id).close()
        return RSP_OK, protocol.encode_json({"down": sorted(self.down)})

    def _on_fault(self, payload: bytes) -> Tuple[int, bytes]:
        self.faults = tfaults.TransportFaultBudgets.from_dict(
            protocol.decode_json(payload)
        )
        return RSP_OK, protocol.encode_json(
            {"pending": self.faults.pending()}
        )

    def _on_ping(self, payload: bytes) -> Tuple[int, bytes]:
        return RSP_PONG, payload

    def _on_shutdown(self, payload: bytes) -> Tuple[int, bytes]:
        self._running = False
        return RSP_OK, protocol.encode_json({"node_id": self.node_id})

    def _on_status(self, payload: bytes) -> Tuple[int, bytes]:
        gpt_crc = 0
        gpt_bytes = 0
        if self.gpt is not None:
            # One serialisation serves both: the fingerprint *is* the
            # snapshot's trailing CRC (serialize.fingerprint would dump a
            # second time to read the same four bytes).
            snapshot = serialize.dumps(self.gpt.setsep)
            gpt_crc = serialize.fingerprint_bytes(snapshot)
            gpt_bytes = len(snapshot)
        return RSP_STATUS, protocol.encode_json({
            "node_id": self.node_id,
            "num_nodes": self.num_nodes,
            "fib_entries": len(self.fib),
            "rib_entries": sum(len(b) for b in self.slice.values()),
            "charges": {str(teid): total
                        for teid, total in self.charges.items()},
            "counters": self.registry.counters(),
            "gpt_backend": (
                separator_registry.backend_of(self.gpt.setsep)
                if self.gpt is not None else None
            ),
            "gpt_crc": gpt_crc,
            "gpt_bytes": gpt_bytes,
            "claimed_term": self.claimed_term,
            "claimed_leader": self.claimed_leader,
            "faults_applied": self.faults.applied,
            "delayed_deltas": len(self._delayed_deltas),
            "delayed_forwards": len(self._delayed_forwards),
            "shm_segment": (
                self._attached.name if self._attached is not None else None
            ),
            "shm_mode": (
                self._attached.mode if self._attached is not None else None
            ),
        })

    # ------------------------------------------------------------------
    # §4.5 update protocol: the owner role
    # ------------------------------------------------------------------

    def _group_contents(
        self, block: int, group: int
    ) -> Tuple[List[int], List[int]]:
        """(keys, nodes) of one group, in RIB-slice insertion order."""
        bucket = self.slice.get(block)
        if not bucket:
            return [], []
        keys = np.fromiter(bucket.keys(), dtype=np.uint64, count=len(bucket))
        member = self.gpt.setsep.groups_of(keys) == group
        return (
            [int(k) for k in keys[member]],
            [entry[0] for entry, hit in zip(bucket.values(), member) if hit],
        )

    def _on_update(self, payload: bytes) -> Tuple[int, bytes]:
        assert self.gpt is not None, "update before snapshot"
        ops = protocol.decode_updates(payload)
        params = self.gpt.setsep.params
        fib_batches: Dict[int, List[UpdateOp]] = {}
        delta_wires: Dict[int, List[bytes]] = {}
        #: Canonical per-record wire bytes for the controller's delta log —
        #: one copy per rebuilt group, independent of per-peer transport
        #: fault verdicts (the log must mirror the owner's applied state).
        log_wires: List[bytes] = []
        acc = {
            "updates": 0, "fib_messages": 0, "groups_rebuilt": 0,
            "delta_broadcasts": 0, "delta_bits": 0,
            "deltas_dropped": 0, "deltas_delayed": 0,
            "deltas_duplicated": 0,
        }
        for op in ops:
            key = canonical_key(op.key)
            block = self.gpt.block_of(key)
            bucket = self.slice.setdefault(block, {})
            if op.op == OP_INSERT:
                previous = bucket.get(key)
                bucket[key] = (op.node, op.value)
                if previous is not None and previous[0] != op.node:
                    fib_batches.setdefault(previous[0], []).append(
                        UpdateOp(OP_REMOVE, key)
                    )
                    acc["fib_messages"] += 1
                fib_batches.setdefault(op.node, []).append(
                    UpdateOp(OP_INSERT, key, op.node, op.value, op.bs_ip)
                )
                acc["fib_messages"] += 1
                removed: Tuple[int, ...] = ()
            else:
                previous = bucket.pop(key, None)
                if previous is None:
                    continue  # unknown key: not an update (engine parity)
                fib_batches.setdefault(previous[0], []).append(
                    UpdateOp(OP_REMOVE, key)
                )
                acc["fib_messages"] += 1
                removed = (key,)
            acc["updates"] += 1
            group = self.gpt.group_of(key)
            # Incremental backends (Othello) skip the O(group) contents
            # enumeration once their owner-side graph is warm; the
            # record is byte-identical either way (engine parity).
            needs_full = getattr(
                self.gpt.setsep, "needs_full_contents", None
            )
            if needs_full is None or needs_full(group):
                group_keys, group_nodes = self._group_contents(block, group)
            elif removed:
                group_keys, group_nodes = [], []
            else:
                group_keys, group_nodes = [key], [op.node]
            delta = self.gpt.rebuild_group(
                group, group_keys, group_nodes, removed_keys=removed
            )
            acc["groups_rebuilt"] += 1
            self._c_groups_rebuilt.inc()
            wire = delta.wire_bytes(params)
            bits = delta.size_bits(params)
            log_wires.append(wire)
            for peer in range(self.num_nodes):
                if peer == self.node_id or peer in self.down:
                    continue
                verdict = self.faults.verdict("delta")
                if verdict == tfaults.DROP:
                    acc["deltas_dropped"] += 1
                    continue
                if verdict == tfaults.DELAY:
                    self._delayed_deltas.append((peer, wire))
                    acc["deltas_delayed"] += 1
                    continue
                delta_wires.setdefault(peer, []).append(wire)
                if verdict == tfaults.DUPLICATE:
                    delta_wires[peer].append(wire)
                    acc["deltas_duplicated"] += 1
                acc["delta_broadcasts"] += 1
                acc["delta_bits"] += bits
        # One FIB batch per handling node, one delta batch per peer —
        # same per-key ordering as shipping each individually.
        for target in sorted(fib_batches):
            if target in self.down:
                continue
            batch = fib_batches[target]
            if target == self.node_id:
                self._apply_fib(batch)
            else:
                rsp_type, rsp = self._peer_request(
                    target, MSG_FIB, protocol.encode_updates(batch)
                )
                protocol.expect(rsp_type, RSP_OK, rsp)
        for peer in sorted(delta_wires):
            if peer in self.down:
                continue
            rsp_type, rsp = self._peer_request(
                peer, MSG_DELTA, b"".join(delta_wires[peer])
            )
            protocol.expect(rsp_type, RSP_OK, rsp)
        # Accounting JSON plus the batch's canonical records, state-framed:
        # the controller appends the records to its epoch delta log.
        return RSP_UPDATE, protocol.encode_state(acc, b"".join(log_wires))

    def _apply_fib(self, ops: List[UpdateOp]) -> None:
        for op in ops:
            key = canonical_key(op.key)
            if op.op == OP_INSERT:
                self.fib[key] = op.value
                self.bs[key] = op.bs_ip
            else:
                self.fib.pop(key, None)
                self.bs.pop(key, None)

    def _on_fib(self, payload: bytes) -> Tuple[int, bytes]:
        ops = protocol.decode_updates(payload)
        self._apply_fib(ops)
        return RSP_OK, protocol.encode_json({"applied": len(ops)})

    def _on_delta(self, payload: bytes) -> Tuple[int, bytes]:
        assert self.gpt is not None, "delta before snapshot"
        applied = 0
        records = separator_registry.parse_update_stream(
            payload, separator_registry.backend_of(self.gpt.setsep)
        )
        for record, _params in records:
            self.gpt.apply_delta(record)
            applied += 1
        self._c_deltas_applied.inc(applied)
        return RSP_OK, protocol.encode_json({"applied": applied})

    def _on_flush(self, payload: bytes) -> Tuple[int, bytes]:
        """Deliver every delayed delta and forward, in FIFO ship order."""
        deltas, self._delayed_deltas = self._delayed_deltas, []
        per_peer: Dict[int, List[bytes]] = {}
        for peer, wire in deltas:
            per_peer.setdefault(peer, []).append(wire)
        for peer in sorted(per_peer):
            rsp_type, rsp = self._peer_request(
                peer, MSG_DELTA, b"".join(per_peer[peer])
            )
            protocol.expect(rsp_type, RSP_OK, rsp)
        forwards, self._delayed_forwards = self._delayed_forwards, []
        for peer, frame_payload in forwards:
            # Late delivery: the handler charges and encapsulates, but
            # the original ROUTE response already went out without it.
            self._peer_request(peer, MSG_FORWARD, frame_payload)
        return RSP_OK, protocol.encode_json({
            "flushed_deltas": len(deltas),
            "flushed_forwards": len(forwards),
        })

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _handle_frames(self, frames: List[bytes]) -> List[RouteOutcome]:
        """Terminal handling: FIB check, charge, GTP-U encapsulation."""
        assert self.gpt is not None, "frames before snapshot"
        parsed = fastpath.parse_frames(frames)
        if parsed.degenerate:
            raise ValueError("degenerate frame batch (TTL/oversize) refused")
        outcomes: List[Optional[RouteOutcome]] = [None] * len(frames)
        for i in np.nonzero(parsed.malformed)[0]:
            outcomes[int(i)] = RouteOutcome(STATUS_MALFORMED, -1, 0, None)
        accepted_idx: List[int] = []
        teids: List[int] = []
        bs_ips: List[int] = []
        for i in np.nonzero(parsed.valid)[0]:
            key = int(parsed.keys[int(i)])
            teid = self.fib.get(key)
            if teid is None:
                # One-sided error: the GPT pointed here, the exact FIB
                # says otherwise — reject (§3.2).
                outcomes[int(i)] = RouteOutcome(
                    STATUS_UNKNOWN, self.node_id, 0, None
                )
                continue
            accepted_idx.append(int(i))
            teids.append(teid)
            bs_ips.append(self.bs.get(key, 0))
        if accepted_idx:
            idx = np.asarray(accepted_idx, dtype=np.int64)
            teid_arr = np.asarray(teids, dtype=np.int64)
            sizes = parsed.l3_len[idx]
            for pos, teid in enumerate(teids):
                self.charges[teid] = (
                    self.charges.get(teid, 0) + int(sizes[pos])
                )
            tunnelled = fastpath.encapsulate_batch(
                parsed, idx, teid_arr,
                np.asarray(bs_ips, dtype=np.int64), self.gateway_ip,
            )
            for pos, i in enumerate(accepted_idx):
                outcomes[i] = RouteOutcome(
                    STATUS_DELIVERED, self.node_id, teids[pos],
                    tunnelled[pos],
                )
        return outcomes  # type: ignore[return-value]

    def _on_forward(self, payload: bytes) -> Tuple[int, bytes]:
        frames, _ = unpack_frame_list(payload)
        self._c_frames_received.inc(len(frames))
        outcomes = self._handle_frames(frames)
        return RSP_FORWARD, protocol.encode_outcomes(outcomes)

    def _on_route(self, payload: bytes) -> Tuple[int, bytes]:
        """Ingress role: parse, GPT lookup, handle locally or forward once."""
        assert self.gpt is not None, "route before snapshot"
        frames, _ = unpack_frame_list(payload)
        parsed = fastpath.parse_frames(frames)
        if parsed.degenerate:
            raise ValueError("degenerate frame batch (TTL/oversize) refused")
        outcomes: List[Optional[RouteOutcome]] = [None] * len(frames)
        for i in np.nonzero(parsed.malformed)[0]:
            outcomes[int(i)] = RouteOutcome(STATUS_MALFORMED, -1, 0, None)
        valid_idx = np.nonzero(parsed.valid)[0]
        if valid_idx.size:
            handlers = self.gpt.lookup_batch(parsed.keys[valid_idx])
            for handler in np.unique(handlers):
                handler = int(handler)
                sub_idx = [int(valid_idx[j])
                           for j in np.nonzero(handlers == handler)[0]]
                sub_frames = [frames[i] for i in sub_idx]
                if handler == self.node_id:
                    self._c_frames_local.inc(len(sub_frames))
                    for i, outcome in zip(
                        sub_idx, self._handle_frames(sub_frames)
                    ):
                        outcomes[i] = outcome
                    continue
                for i, outcome in zip(
                    sub_idx, self._forward(handler, sub_frames)
                ):
                    outcomes[i] = outcome
        return RSP_ROUTE, protocol.encode_outcomes(outcomes)

    def _forward(
        self, handler: int, frames: List[bytes]
    ) -> List[RouteOutcome]:
        """Ship a sub-batch to its handling daemon, honouring faults."""
        payload = pack_frame_list(frames)
        verdict = self.faults.verdict("forward")
        if verdict == tfaults.DROP:
            return [RouteOutcome(STATUS_LOST, handler, 0, None)] * len(frames)
        if verdict == tfaults.DELAY:
            self._delayed_forwards.append((handler, payload))
            return [RouteOutcome(STATUS_LOST, handler, 0, None)] * len(frames)
        self._c_frames_forwarded.inc(len(frames))
        try:
            rsp_type, rsp = self._peer_request(handler, MSG_FORWARD, payload)
            body = protocol.expect(rsp_type, RSP_FORWARD, rsp)
            if verdict == tfaults.DUPLICATE:
                self._peer_request(handler, MSG_FORWARD, payload)
            return protocol.decode_outcomes(body)
        except (FramingError, OSError):
            # The handling daemon is gone; the fabric cannot deliver.
            return [
                RouteOutcome(STATUS_NODE_DOWN, handler, 0, None)
            ] * len(frames)


def serve(host: str = "127.0.0.1", port: int = 0,
          ready: Optional[Callable[[int], None]] = None) -> None:
    """Run one daemon in the current process until SHUTDOWN."""
    NodeDaemon(host=host, port=port).serve_forever(ready=ready)
