"""Per-epoch append-only delta log for rejoin catch-up (scale tier).

Before this module, a daemon that died and came back could only be
re-seeded with a full snapshot — O(structure) bytes on the wire even if
only a handful of groups changed while it was gone.  The controller now
keeps, per state epoch:

* a **floor**: the serialised snapshot every live replica started the
  epoch from (the same bytes published to the shared-memory segment);
* an append-only **log** of the update records broadcast since — the
  exact ``GroupDelta``/``OthelloUpdate`` wire bytes the §4.5 owner
  protocol produced, in owner-application order.

``floor + replay(log)`` reconstructs the current replica state
byte-identically (records are group-local absolute writes, so the
per-owner-batch order the log preserves commutes across groups exactly
like live broadcast application does).  A rejoining daemon therefore
attaches the floor (by shm reference or wire) and replays the log —
O(changes), not O(structure).

When the log outgrows the floor, :meth:`DeltaLog.compact` cuts over: the
records are replayed onto the floor once, the result becomes the new
floor, and the log restarts empty.  The controller republishes the new
floor as a fresh shm generation at that point.

The log is reset (new floor, empty log) whenever every replica receives
brand-new state — bootstrap and membership swaps — because a resize
rebuilds the structure and records from the old shape don't apply.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import separator as separator_registry
from repro.core import serialize


class DeltaLog:
    """Snapshot floor + appended update records for one state epoch."""

    def __init__(self, floor: bytes) -> None:
        self._floor = bytes(floor)
        self._chunks: List[bytes] = []
        self._log_bytes = 0
        self._record_count = 0
        #: Compactions performed over this instance's lifetime.
        self.compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def floor(self) -> bytes:
        """The epoch's base snapshot bytes."""
        return self._floor

    @property
    def floor_fingerprint(self) -> int:
        """Trailing-CRC fingerprint of the floor snapshot."""
        return serialize.fingerprint_bytes(self._floor)

    @property
    def floor_bytes(self) -> int:
        return len(self._floor)

    @property
    def log_bytes(self) -> int:
        """Total appended record bytes since the floor."""
        return self._log_bytes

    @property
    def record_count(self) -> int:
        """Appended wire records since the floor."""
        return self._record_count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reset(self, floor: bytes) -> None:
        """Start a new epoch from ``floor`` (bootstrap / membership swap)."""
        self._floor = bytes(floor)
        self._chunks = []
        self._log_bytes = 0
        self._record_count = 0

    def append(self, wire: bytes, records: int = 1) -> None:
        """Append one broadcast chunk (``records`` concatenated records)."""
        if not wire:
            return
        self._chunks.append(bytes(wire))
        self._log_bytes += len(wire)
        self._record_count += records

    def records(self) -> bytes:
        """The concatenated log — a valid ``MSG_DELTA``-style stream."""
        return b"".join(self._chunks)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def should_compact(self) -> bool:
        """Whether the log has outgrown the floor snapshot."""
        return self._log_bytes > self.floor_bytes

    def compact(self) -> bytes:
        """Fold the log into the floor; returns the new floor bytes.

        Replays every record onto a private load of the floor and re-dumps
        it.  After this the log is empty and a catch-up is just the (new)
        floor — callers publishing shm segments push the returned bytes as
        a fresh generation.
        """
        if not self._chunks:
            return self._floor
        separator = serialize.loads(self._floor)
        stream = self.records()
        backend = separator_registry.backend_of(separator)
        for record, _params in separator_registry.parse_update_stream(
            stream, backend
        ):
            separator.apply_delta(record)
        self._floor = serialize.dumps(separator)
        self._chunks = []
        self._log_bytes = 0
        self._record_count = 0
        self.compactions += 1
        return self._floor

    def maybe_compact(self) -> Optional[bytes]:
        """Compact iff the cutover threshold is reached; new floor or None."""
        if self.should_compact():
            return self.compact()
        return None

    def __repr__(self) -> str:
        return (
            f"DeltaLog(floor={self.floor_bytes}B, log={self._log_bytes}B, "
            f"records={self._record_count}, compactions={self.compactions})"
        )
