"""The cluster controller: bootstrap, updates, traffic, liveness, repair.

``RuntimeController`` is the control-plane process of the socket
runtime.  It owns one :class:`~repro.runtime.framing.FramedSocket` per
daemon and drives the whole paper's lifecycle over the wire:

* **bootstrap** — ship each daemon its identity (HELLO), then the full
  state: an SSEP snapshot of the GPT plus its FIB and RIB slices
  (SNAPSHOT), all derived from an in-process
  :class:`~repro.epc.gateway.EpcGateway` acting as the authoritative
  shadow;
* **updates** — batch RIB operations to their owning daemons
  (``block % N``), which run the §4.5 owner protocol for real;
* **traffic** — raw frame batches to per-frame ingress daemons
  (``MSG_ROUTE``), collecting per-frame outcomes;
* **liveness** — heartbeat polls feeding a
  :class:`~repro.runtime.liveness.HeartbeatMonitor`; a daemon declared
  DEAD triggers §7 repair: its RIB slice is adopted by a successor, its
  flows re-homed onto survivors through the live update path, mirrored
  move for move in the shadow gateway via
  :class:`~repro.cluster.failover.FailoverManager`;
* **membership** — graceful drain/join built on
  :func:`repro.cluster.membership.resize` with a make-before-break
  snapshot swap (``MSG_SWAP``): the old forwarding plane serves until
  the replacement state is fully built on every daemon.

The controller mutates the shadow gateway in lockstep with the wire, so
the differential harness (:mod:`repro.runtime.harness`) can assert that
both worlds route, charge and encode byte-identically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.cluster.failover import FailoverManager
from repro.cluster import membership
from repro.cluster.update import UpdateEngine
from repro.core import serialize, shm
from repro.core.hashfamily import canonical_key
from repro.core.separator import Separator
from repro.epc.gateway import EpcGateway
from repro.obs.metrics import MetricsRegistry
from repro.runtime import protocol
from repro.runtime.deltalog import DeltaLog
from repro.runtime.framing import (
    DEFAULT_TIMEOUT,
    FramedSocket,
    FramingError,
    pack_frame_list,
)
from repro.runtime.liveness import HeartbeatMonitor, NodeState
from repro.runtime.protocol import (
    MSG_ADOPT,
    MSG_CLAIM,
    MSG_DOWN,
    MSG_FAULT,
    MSG_FLUSH,
    MSG_HELLO,
    MSG_NAMES,
    MSG_PING,
    MSG_ROUTE,
    MSG_DELTA,
    MSG_SHUTDOWN,
    MSG_SNAPSHOT,
    MSG_STATE_REF,
    MSG_STATUS,
    MSG_SWAP,
    MSG_UPDATE,
    OP_INSERT,
    RSP_OK,
    RSP_PONG,
    RSP_REDIRECT,
    RSP_ROUTE,
    RSP_STATUS,
    RSP_UPDATE,
    RouteOutcome,
    STATUS_NODE_DOWN,
    UpdateOp,
)
from repro.runtime.replication import (
    LeadershipGuard,
    StaleTermError,
    StaticGuard,
)

#: RSP_UPDATE accounting fields the controller aggregates.
_UPDATE_FIELDS = (
    "updates", "fib_messages", "groups_rebuilt", "delta_broadcasts",
    "delta_bits", "deltas_dropped", "deltas_delayed", "deltas_duplicated",
)


@dataclass(frozen=True)
class OpResult:
    """The uniform return of every controller verb.

    Every management operation — drain, join, kill, fence, repair —
    answers the same three questions (was it accepted, which
    configuration epoch did it produce, how many flows moved) plus a
    verb-specific ``detail`` mapping.  The shape is JSON-ready
    (:meth:`to_dict`), which is what the operator API serves.
    """

    verb: str
    node: Optional[int]
    accepted: bool
    epoch: int
    affected_flows: int = 0
    detail: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (detail keys flattened last)."""
        return {
            "verb": self.verb,
            "node": self.node,
            "accepted": self.accepted,
            "epoch": self.epoch,
            "affected_flows": self.affected_flows,
            "detail": dict(self.detail),
        }


class CommandQueue:
    """Serialises controller commands and remembers what ran.

    The socket protocol is strictly request/response per connection, so
    two threads (the API daemon is threaded) driving the same controller
    would interleave frames and corrupt the stream.  Every mutating verb
    runs under one re-entrant lock — commands are effectively a queue of
    one — and the completed ones land in a bounded history that the
    introspection endpoints serve.
    """

    def __init__(self, history: int = 64) -> None:
        self._lock = threading.RLock()
        self._seq = 0
        self._history: Deque[Dict[str, object]] = deque(maxlen=history)

    def run(self, verb: str, fn: Callable[[], OpResult]) -> OpResult:
        """Execute one command exclusively; record its outcome."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            result = fn()
            self._history.append({"seq": seq, **result.to_dict()})
            return result

    def __enter__(self) -> "CommandQueue":
        self._lock.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._lock.release()

    def recent(self) -> List[Dict[str, object]]:
        """The completed commands, oldest first."""
        with self._lock:
            return list(self._history)


class RuntimeController:
    """Drives a cluster of :class:`~repro.runtime.daemon.NodeDaemon`."""

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        registry: Optional[MetricsRegistry] = None,
        miss_threshold: int = 3,
        ping_timeout: float = 2.0,
        fence_after: Optional[int] = None,
        guard: Optional[LeadershipGuard] = None,
        use_shm: bool = False,
    ) -> None:
        self.addresses: List[Tuple[str, int]] = [
            (str(h), int(p)) for h, p in addresses
        ]
        self.num_nodes = len(self.addresses)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.monitor = HeartbeatMonitor(
            self.num_nodes, miss_threshold=miss_threshold,
            registry=self.registry, fence_after=fence_after,
        )
        self.ping_timeout = ping_timeout
        self.down: set = set()
        #: Configuration epoch: bumps on bootstrap and on every
        #: membership change (drain/join/repair).  Daemons built from
        #: different epochs must never be compared.
        self.epoch = 0
        #: Force-kill callback for :meth:`kill_node` / :meth:`fence_node`
        #: (typically :meth:`repro.runtime.launcher.LocalRuntime.kill`).
        #: ``None`` when the controller does not own the processes.
        self.killer: Optional[Callable[[int], None]] = None
        #: Leadership admission for leader-only actions (heartbeat
        #: sweeps, fencing).  A single controller gets the permissive
        #: :class:`StaticGuard`; replicated deployments install a
        #: :class:`~repro.runtime.replication.ReplicaGuard` so a deposed
        #: leader's in-flight actions fail on the term re-check.
        self.guard: LeadershipGuard = guard if guard is not None else StaticGuard()
        #: ``(term, leader_id)`` this controller claims on every daemon
        #: link (``MSG_CLAIM``); ``None`` in single-controller mode.
        self.claim: Optional[Tuple[int, int]] = None
        #: Serialises every mutating verb (the API daemon is threaded).
        self.commands = CommandQueue()
        self._socks: Dict[int, FramedSocket] = {}
        self._ref_setsep: Optional[Separator] = None
        self._ping_seq = 0
        #: Scale tier: publish snapshots as shared-memory segments and ship
        #: daemons a ``MSG_STATE_REF`` instead of the bytes.  Requested via
        #: ``use_shm`` but only honoured where ``/dev/shm`` exists; every
        #: ship still falls back to the wire per daemon on attach failure.
        self.use_shm = bool(use_shm) and shm.available()
        self.publisher: Optional[shm.SegmentPublisher] = (
            shm.SegmentPublisher() if self.use_shm else None
        )
        #: Epoch delta log: the floor snapshot every replica started the
        #: current state epoch from plus the update records broadcast
        #: since — what a rejoining daemon replays instead of receiving a
        #: full snapshot.  Created on bootstrap.
        self.deltalog: Optional[DeltaLog] = None
        #: Which published segment each daemon currently references
        #: (refcounts drive retirement unlinks).
        self._node_segments: Dict[int, str] = {}
        self._c_tx_bytes = self.registry.counter(
            "runtime.tx_bytes", "bytes the controller shipped to daemons"
        )
        self._c_snapshot_bytes = self.registry.counter(
            "runtime.snapshot_bytes",
            "separator snapshot bytes shipped on the wire",
        )
        self._c_stateref_fallbacks = self.registry.counter(
            "runtime.stateref.fallbacks",
            "STATE_REF ships that fell back to wire snapshots",
        )

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Dial every daemon."""
        for node_id in range(self.num_nodes):
            self._sock(node_id)

    def _sock(self, node_id: int) -> FramedSocket:
        sock = self._socks.get(node_id)
        if sock is None:
            host, port = self.addresses[node_id]
            sock = FramedSocket.connect(host, port)
            if self.claim is not None:
                # Fresh dials re-claim leadership before anything else:
                # the daemon fences mutating requests per connection.
                term, leader = self.claim
                rsp_type, rsp = sock.request(
                    MSG_CLAIM,
                    protocol.encode_json({"term": term, "leader": leader}),
                )
                if rsp_type == RSP_REDIRECT:
                    doc = protocol.decode_json(rsp)
                    sock.close()
                    raise StaleTermError(
                        f"daemon {node_id} rejects claim for term {term}; "
                        f"current leader is {doc.get('leader')} "
                        f"(term {doc.get('term')})"
                    )
                protocol.expect(rsp_type, RSP_OK, rsp)
            self._socks[node_id] = sock
        return sock

    def claim_leadership(self, term: int, leader_id: int) -> None:
        """Claim every daemon control link for ``(term, leader_id)``.

        Daemons remember the highest claimed term and answer mutating
        requests on stale-term connections with ``RSP_REDIRECT`` — the
        redirect message node daemons use to follow the leader across
        failovers.  Raises :class:`StaleTermError` if any daemon has
        already been claimed by a newer term.
        """
        self.claim = (int(term), int(leader_id))
        payload = protocol.encode_json(
            {"term": int(term), "leader": int(leader_id)}
        )
        for node_id in sorted(self._socks):
            rsp_type, rsp = self._request(node_id, MSG_CLAIM, payload)
            protocol.expect(rsp_type, RSP_OK, rsp)

    def _request(
        self, node_id: int, msg_type: int, payload: bytes = b""
    ) -> Tuple[int, bytes]:
        """One request/response; counts traffic, drops dead links.

        A ``RSP_REDIRECT`` answer (this controller's claimed term went
        stale while the request was in flight) surfaces as
        :class:`StaleTermError` — the caller was deposed.
        """
        sock = self._sock(node_id)
        name = MSG_NAMES[msg_type]
        self.registry.counter(f"runtime.tx.{name}").inc()
        self._c_tx_bytes.inc(len(payload) + 5)
        try:
            rsp_type, rsp = sock.request(msg_type, payload)
        except (FramingError, OSError):
            self._socks.pop(node_id, None)
            sock.close()
            raise
        if rsp_type == RSP_REDIRECT:
            doc = protocol.decode_json(rsp)
            raise StaleTermError(
                f"daemon {node_id} redirected {name!r} to leader "
                f"{doc.get('leader')} (term {doc.get('term')})"
            )
        return rsp_type, rsp

    def close(self) -> None:
        """Drop every controller-side connection (daemons keep running).

        Published shm segments are unlinked too: attached daemons keep
        their copy-on-write mappings (POSIX mappings outlive the name),
        and nothing else should be able to attach state this controller
        no longer maintains.
        """
        for sock in self._socks.values():
            sock.close()
        self._socks.clear()
        if self.publisher is not None:
            self.publisher.close()
            self._node_segments.clear()

    def shutdown_all(self) -> List[int]:
        """Gracefully stop every reachable daemon; returns who acked."""
        acked: List[int] = []
        for node_id in range(self.num_nodes):
            if node_id in self.down:
                continue
            try:
                rsp_type, rsp = self._request(node_id, MSG_SHUTDOWN)
                protocol.expect(rsp_type, RSP_OK, rsp)
                acked.append(node_id)
            except (FramingError, OSError, protocol.ProtocolError):
                pass
        self.close()
        return acked

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _state_headers(self, gateway: EpcGateway) -> Tuple[List[dict], bytes]:
        """Per-daemon state headers + the shared snapshot bytes."""
        cluster = gateway.cluster
        assert cluster is not None, "gateway not started"
        snapshot = serialize.dumps(cluster.nodes[0].gpt.setsep)
        self._ref_setsep = serialize.loads(snapshot)
        num_nodes = len(cluster.nodes)
        fib_slices: List[List[List[int]]] = [[] for _ in range(num_nodes)]
        for record in gateway.controller.flows.values():
            fib_slices[record.handling_node].append(
                [record.key, record.handling_node, record.teid,
                 record.base_station_ip]
            )
        rib_slices: List[List[List[int]]] = [[] for _ in range(num_nodes)]
        for entry in cluster.rib.entries():
            owner = cluster.rib.owner_of_key(entry.key)
            rib_slices[owner].append([entry.key, entry.node, entry.value])
        peers = [[host, port] for host, port in self.addresses[:num_nodes]]
        headers = [
            {
                "num_nodes": num_nodes,
                "peers": peers,
                "fib": fib_slices[node_id],
                "rib": rib_slices[node_id],
            }
            for node_id in range(num_nodes)
        ]
        return headers, snapshot

    def _state_payloads(self, gateway: EpcGateway) -> Tuple[List[bytes], bytes]:
        """Per-daemon SNAPSHOT/SWAP wire payloads from the shadow gateway."""
        headers, snapshot = self._state_headers(gateway)
        payloads = [
            protocol.encode_state(header, snapshot) for header in headers
        ]
        return payloads, snapshot

    # -- shared-memory segment lifecycle (scale tier) -------------------

    def _publish_floor(self, snapshot: bytes):
        """Publish ``snapshot`` as the current shm generation (or None)."""
        if self.publisher is None:
            return None
        return self.publisher.publish(snapshot)

    def _track_segment(self, node_id: int, name: str) -> None:
        """Daemon ``node_id`` now references segment ``name``."""
        assert self.publisher is not None
        old = self._node_segments.get(node_id)
        if old == name:
            return
        self.publisher.acquire(name)
        self.publisher.release(old)
        self._node_segments[node_id] = name

    def _untrack_segment(self, node_id: int) -> None:
        """Daemon ``node_id`` no longer references any segment."""
        old = self._node_segments.pop(node_id, None)
        if old is not None and self.publisher is not None:
            self.publisher.release(old)

    def _reset_deltalog(self, snapshot: bytes) -> None:
        """Start a new delta-log epoch from ``snapshot``."""
        if self.deltalog is None:
            self.deltalog = DeltaLog(snapshot)
        else:
            self.deltalog.reset(snapshot)

    def _ship_state(
        self,
        node_id: int,
        header: dict,
        snapshot: bytes,
        wire_type: int,
        segment,
        catchup: bytes = b"",
    ) -> str:
        """Ship one daemon its state; returns the transport used.

        With a published ``segment`` the daemon is sent a lightweight
        ``MSG_STATE_REF`` (segment name + fingerprint in the header,
        ``catchup`` update records as the body) and attaches the snapshot
        from shared memory.  Any refusal (no /dev/shm in the daemon,
        fingerprint mismatch, unlinked segment) falls back to the full
        snapshot on the wire — ``wire_type`` is ``MSG_SNAPSHOT`` or
        ``MSG_SWAP`` — followed by the catch-up records as ``MSG_DELTA``.
        """
        if segment is not None:
            ref_header = dict(header)
            ref_header["segment"] = {
                "name": segment.name,
                "fingerprint": segment.fingerprint,
                "payload_len": segment.payload_len,
            }
            try:
                rsp_type, rsp = self._request(
                    node_id, MSG_STATE_REF,
                    protocol.encode_state(ref_header, catchup),
                )
                protocol.expect(rsp_type, RSP_OK, rsp)
            except protocol.ProtocolError:
                self._c_stateref_fallbacks.inc()
            else:
                self._track_segment(node_id, segment.name)
                return "shm"
        rsp_type, rsp = self._request(
            node_id, wire_type, protocol.encode_state(header, snapshot)
        )
        protocol.expect(rsp_type, RSP_OK, rsp)
        self._c_snapshot_bytes.inc(len(snapshot))
        self._untrack_segment(node_id)
        if catchup:
            rsp_type, rsp = self._request(node_id, MSG_DELTA, catchup)
            protocol.expect(rsp_type, RSP_OK, rsp)
        return "wire"

    def bootstrap_from_gateway(self, gateway: EpcGateway) -> Dict[str, int]:
        """HELLO + state-ship every daemon from the shadow's built state.

        State travels as a shared-memory reference when ``use_shm`` is on
        (one published segment, N copy-on-write attachments) and as full
        snapshot bytes on the wire otherwise; either way the shipped
        snapshot becomes the delta log's epoch floor.
        """
        headers, snapshot = self._state_headers(gateway)
        segment = self._publish_floor(snapshot)
        attached = 0
        for node_id in range(self.num_nodes):
            hello = protocol.encode_json({
                "node_id": node_id,
                "num_nodes": self.num_nodes,
                "peers": [[h, p] for h, p in self.addresses],
                "gateway_ip": gateway.gateway_ip,
            })
            rsp_type, rsp = self._request(node_id, MSG_HELLO, hello)
            protocol.expect(rsp_type, RSP_OK, rsp)
            transport = self._ship_state(
                node_id, headers[node_id], snapshot, MSG_SNAPSHOT, segment
            )
            attached += int(transport == "shm")
        self._reset_deltalog(snapshot)
        self.epoch += 1
        return {
            "nodes": self.num_nodes,
            "snapshot_bytes": len(snapshot),
            "total_shipped_bytes": len(snapshot) * (self.num_nodes - attached),
            "shm_attached": attached,
            "segment": segment.name if segment is not None else None,
        }

    def adopt_reference(self, setsep: Separator, epoch: int) -> None:
        """Install the GPT reference and epoch without re-shipping state.

        A newly elected replicated controller attaches to daemons that
        already hold state shipped by a previous leader; re-running the
        bootstrap would wipe them.  It only needs the shadow-derived
        reference (for :meth:`owner_of_key`) and the current epoch.
        """
        self._ref_setsep = setsep
        self.epoch = int(epoch)

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------

    def owner_of_key(self, key: int) -> int:
        """The daemon owning a key's RIB slice, skipping dead owners."""
        assert self._ref_setsep is not None, "controller not bootstrapped"
        block = self._ref_setsep.block_of(canonical_key(key))
        base = block % self.num_nodes
        return self._successor(base)

    def _successor(self, node_id: int) -> int:
        """``node_id`` itself when alive, else the next live node above."""
        for offset in range(self.num_nodes):
            candidate = (node_id + offset) % self.num_nodes
            if candidate not in self.down:
                return candidate
        raise RuntimeError("no live nodes")

    # ------------------------------------------------------------------
    # §4.5 updates
    # ------------------------------------------------------------------

    def push_updates(self, ops: Sequence[UpdateOp]) -> Dict[str, int]:
        """Route a batch of RIB operations to their owning daemons.

        Per-key order is preserved (a key always maps to one owner), and
        each owner acknowledges only after its FIB pushes and delta
        broadcasts completed — when this returns, every live replica has
        converged.
        """
        batches: Dict[int, List[UpdateOp]] = {}
        for op in ops:
            batches.setdefault(self.owner_of_key(op.key), []).append(op)
        totals = {name: 0 for name in _UPDATE_FIELDS}
        with self.commands:  # interleaved batches would corrupt streams
            for owner in sorted(batches):
                rsp_type, rsp = self._request(
                    owner, MSG_UPDATE,
                    protocol.encode_updates(batches[owner]),
                )
                acc, log_wire = protocol.decode_state(
                    protocol.expect(rsp_type, RSP_UPDATE, rsp)
                )
                # The owner echoes its rebuilt groups' canonical wire
                # records; they extend the epoch delta log that rejoining
                # daemons replay instead of taking a full snapshot.
                if self.deltalog is not None and log_wire:
                    self.deltalog.append(
                        log_wire, records=int(acc.get("groups_rebuilt", 0))
                    )
                for name in _UPDATE_FIELDS:
                    totals[name] += int(acc.get(name, 0))
            if self.deltalog is not None:
                new_floor = self.deltalog.maybe_compact()
                if new_floor is not None:
                    # Cutover: the compacted floor becomes the segment
                    # generation future rejoins attach (live daemons keep
                    # their mappings; retirees unlink once unreferenced).
                    self._publish_floor(new_floor)
                    self.registry.counter(
                        "runtime.deltalog.compactions",
                        "delta-log floor cutovers",
                    ).inc()
        for name in _UPDATE_FIELDS:
            if totals[name]:
                self.registry.counter(f"runtime.update.{name}").inc(
                    totals[name]
                )
        return totals

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def route_frames(
        self, frames: Sequence[bytes], ingress: Sequence[int]
    ) -> List[RouteOutcome]:
        """Deliver frames to their per-frame ingress daemons.

        Frames whose ingress is a dead node are reported NODE_DOWN
        without touching the wire — the switch fabric has nowhere to
        send them (§7).
        """
        if len(frames) != len(ingress):
            raise ValueError("frames and ingress lengths differ")
        outcomes: List[Optional[RouteOutcome]] = [None] * len(frames)
        by_ingress: Dict[int, List[int]] = {}
        for i, node in enumerate(ingress):
            by_ingress.setdefault(int(node), []).append(i)
        with self.commands:
            self._route_batches(frames, by_ingress, outcomes)
        return outcomes  # type: ignore[return-value]

    def _route_batches(
        self,
        frames: Sequence[bytes],
        by_ingress: Dict[int, List[int]],
        outcomes: List[Optional[RouteOutcome]],
    ) -> None:
        for node in sorted(by_ingress):
            idx = by_ingress[node]
            if node in self.down:
                for i in idx:
                    outcomes[i] = RouteOutcome(STATUS_NODE_DOWN, -1, 0, None)
                continue
            payload = pack_frame_list([frames[i] for i in idx])
            try:
                rsp_type, rsp = self._request(node, MSG_ROUTE, payload)
                body = protocol.expect(rsp_type, RSP_ROUTE, rsp)
            except (FramingError, OSError):
                for i in idx:
                    outcomes[i] = RouteOutcome(STATUS_NODE_DOWN, -1, 0, None)
                continue
            for i, outcome in zip(idx, protocol.decode_outcomes(body)):
                outcomes[i] = outcome

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def poll_liveness(self) -> List[int]:
        """One heartbeat round; returns nodes newly declared DEAD.

        Leader-only: with replicated controllers, only the leaseholder
        may sweep (a follower recording misses would race the leader's
        fencing decisions); :class:`StaleTermError` otherwise.
        """
        self.guard.acquire("poll_liveness")
        with self.commands:
            return self._poll_once()

    def _poll_once(self) -> List[int]:
        newly_dead: List[int] = []
        for node_id in self.monitor.tracked():
            if node_id in self.down:
                continue
            if self.monitor.state(node_id) is NodeState.DEAD:
                continue
            self._ping_seq += 1
            started = time.perf_counter()
            try:
                sock = self._sock(node_id)
                sock.settimeout(self.ping_timeout)
                try:
                    rsp_type, rsp = self._request(
                        node_id, MSG_PING,
                        protocol.encode_ping(self._ping_seq),
                    )
                finally:
                    if self._socks.get(node_id) is sock:
                        sock.settimeout(DEFAULT_TIMEOUT)
                protocol.expect(rsp_type, RSP_PONG, rsp)
                if protocol.decode_ping(rsp) != self._ping_seq:
                    raise protocol.ProtocolError("pong sequence mismatch")
                self.monitor.record_success(
                    node_id, time.perf_counter() - started
                )
            except (FramingError, OSError, protocol.ProtocolError):
                if self.monitor.record_miss(node_id) is NodeState.DEAD:
                    newly_dead.append(node_id)
        return newly_dead

    def await_detection(
        self, node_id: int, max_polls: Optional[int] = None
    ) -> int:
        """Poll until ``node_id`` is declared DEAD; returns polls used."""
        limit = (max_polls if max_polls is not None
                 else self.monitor.miss_threshold + 2)
        for polls in range(1, limit + 1):
            self.poll_liveness()
            if self.monitor.state(node_id) is NodeState.DEAD:
                return polls
        raise RuntimeError(
            f"node {node_id} not declared dead within {limit} polls"
        )

    # ------------------------------------------------------------------
    # §7 failure repair
    # ------------------------------------------------------------------

    def handle_node_failure(
        self, failed: int, gateway: EpcGateway
    ) -> OpResult:
        """Repair after a daemon died: adopt its slice, re-home its flows.

        Mirrors every move into the shadow ``gateway`` through
        :class:`FailoverManager.recover_flows`, so wire and shadow stay
        comparable after the repair.
        """
        return self.commands.run(
            "repair", lambda: self._repair(failed, gateway)
        )

    def _repair(self, failed: int, gateway: EpcGateway) -> OpResult:
        cluster = gateway.cluster
        assert cluster is not None, "gateway not started"
        if failed in self.down:
            raise ValueError(f"node {failed} was already repaired")
        self.down.add(failed)
        stale = self._socks.pop(failed, None)
        if stale is not None:
            stale.close()
        self._untrack_segment(failed)
        # Every survivor must stop shipping FIB/deltas to the corpse.
        down_payload = protocol.encode_json({"down": sorted(self.down)})
        for node_id in range(self.num_nodes):
            if node_id in self.down:
                continue
            rsp_type, rsp = self._request(node_id, MSG_DOWN, down_payload)
            protocol.expect(rsp_type, RSP_OK, rsp)
        # The dead node's RIB slice moves to its successor (§4.5 ownership
        # must stay total for updates to keep flowing).
        successor = self._successor(failed)
        orphaned = [
            [entry.key, entry.node, entry.value]
            for entry in cluster.rib.entries()
            if cluster.rib.owner_of_key(entry.key) == failed
        ]
        rsp_type, rsp = self._request(
            successor, MSG_ADOPT,
            protocol.encode_json({"entries": orphaned}),
        )
        protocol.expect(rsp_type, RSP_OK, rsp)
        # Shadow-side liveness + recovery through the §4.5 update path.
        failover = FailoverManager(cluster)
        failover.updates = gateway.updates
        failover.down = set(self.down)
        gateway.down_nodes.add(failed)
        survivors = [n for n in range(self.num_nodes) if n not in self.down]
        victims = [
            entry for entry in list(cluster.rib.entries())
            if entry.node == failed
        ]
        reassign = {
            entry.key: survivors[i % len(survivors)]
            for i, entry in enumerate(victims)
        }
        ops: List[UpdateOp] = []
        for entry in victims:
            record = gateway.controller.record_for_key(entry.key)
            assert record is not None, "RIB/controller disagree"
            target = reassign[entry.key]
            context = gateway.dpes[failed].export_context(record.teid)
            gateway.dpes[target].import_context(context)
            gateway.controller.rehome(record.flow, target)
            ops.append(UpdateOp(OP_INSERT, entry.key, target, record.teid,
                                record.base_station_ip))
        moved = failover.recover_flows(failed, reassign)
        wire_totals = self.push_updates(ops)
        self.epoch += 1
        return OpResult(
            verb="repair",
            node=failed,
            accepted=True,
            epoch=self.epoch,
            affected_flows=moved,
            detail={
                "adopted_rib_entries": len(orphaned),
                "wire_updates": wire_totals["updates"],
            },
        )

    # ------------------------------------------------------------------
    # Force-kill and fencing (operator verbs)
    # ------------------------------------------------------------------

    def _kill_process(self, node_id: int) -> None:
        if self.killer is None:
            raise RuntimeError(
                "controller has no killer callback; it does not own the "
                "daemon processes"
            )
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node {node_id} does not exist")
        if node_id in self.down:
            raise ValueError(f"node {node_id} is already down")
        self.killer(node_id)
        stale = self._socks.pop(node_id, None)
        if stale is not None:
            stale.close()

    def kill_node(self, node_id: int) -> OpResult:
        """SIGKILL a daemon — the §7 failure drill, no repair attached.

        The node is *not* declared dead here: the heartbeat monitor must
        notice on its own (that detection latency is the drill's point).
        Follow up with :meth:`handle_node_failure` once it does, or use
        :meth:`fence_node` for the kill-and-repair-now path.
        """

        def _kill() -> OpResult:
            self._kill_process(node_id)
            return OpResult(
                verb="kill",
                node=node_id,
                accepted=True,
                epoch=self.epoch,
                detail={"state": self.monitor.state(node_id).value},
            )

        return self.commands.run("kill", _kill)

    def fence_node(self, node_id: int, gateway: EpcGateway) -> OpResult:
        """Force-kill a SUSPECT daemon and repair immediately (§7).

        Fencing is the operator's (or the auto-fence policy's) answer to
        a node stuck between ALIVE and DEAD: SIGKILL it so it can never
        serve a stale replica again, declare it DEAD without waiting out
        the remaining heartbeat misses, broadcast the new membership and
        run the full failure repair.  Fencing an ALIVE node is refused —
        that would be an outage, not a repair.
        """

        def _fence() -> OpResult:
            # Leader-only: capture the term the fence runs under...
            term = self.guard.acquire("fence")
            if node_id not in self.monitor.tracked():
                raise ValueError(f"node {node_id} does not exist")
            state = self.monitor.state(node_id)
            if state is NodeState.ALIVE:
                raise ValueError(
                    f"node {node_id} is alive; fencing needs a SUSPECT "
                    "node (kill or drain instead)"
                )
            if node_id in self.down:
                raise ValueError(f"node {node_id} was already repaired")
            # ...and re-check it immediately before the irreversible
            # SIGKILL: an in-flight fence of a deposed leader must be
            # rejected by term, not land on the victim.
            self.guard.validate(term, "fence")
            if state is not NodeState.DEAD:
                self._kill_process(node_id)
            self.monitor.force_dead(node_id)
            self.registry.counter(
                "runtime.fences", "nodes force-killed by fencing"
            ).inc()
            repair = self._repair(node_id, gateway)
            return OpResult(
                verb="fence",
                node=node_id,
                accepted=True,
                epoch=self.epoch,
                affected_flows=repair.affected_flows,
                detail={
                    "state_before": state.value,
                    **dict(repair.detail),
                },
            )

        return self.commands.run("fence", _fence)

    # ------------------------------------------------------------------
    # Membership: graceful drain and join (§6.3 over sockets)
    # ------------------------------------------------------------------

    def _swap_all(self, gateway: EpcGateway) -> None:
        """Ship the rebuilt state to every remaining daemon (SWAP).

        Same transports as bootstrap: a fresh shm generation with per-node
        wire fallback.  The new snapshot starts a new delta-log epoch —
        a membership resize rebuilds the structure, so records from the
        old shape never apply across a swap.
        """
        headers, snapshot = self._state_headers(gateway)
        segment = self._publish_floor(snapshot)
        for node_id in range(len(headers)):
            self._ship_state(
                node_id, headers[node_id], snapshot, MSG_SWAP, segment
            )
        self._reset_deltalog(snapshot)

    def _rebuild_shadow(self, gateway: EpcGateway, new_n: int):
        """Resize the shadow cluster; the gateway tracks the new plane."""
        cluster = gateway.cluster
        assert cluster is not None
        new_cluster, report = membership.resize(cluster, new_n)
        gateway.cluster = new_cluster
        gateway.updates = UpdateEngine(new_cluster, gateway.registry)
        gateway.num_nodes = new_n
        gateway.controller.num_nodes = new_n
        while len(gateway.dpes) < new_n:
            from repro.epc.dpe import DataPlaneEngine

            gateway.dpes.append(DataPlaneEngine())
        return report

    def drain_node(
        self, gateway: EpcGateway, node_id: Optional[int] = None
    ) -> OpResult:
        """Gracefully remove the highest-numbered daemon.

        Make-before-break: the leaver's flows are re-homed through the
        live update path (old GPT keeps serving), then every survivor
        swaps to the resized state, and only then does the leaver stop.

        ``node_id`` defaults to the highest-numbered node; naming any
        other node is refused (membership shrinks from the top — the
        ``block % N`` ownership rule renumbers everything otherwise).
        """
        return self.commands.run(
            "drain", lambda: self._drain(gateway, node_id)
        )

    def _drain(
        self, gateway: EpcGateway, node_id: Optional[int]
    ) -> OpResult:
        leaving = self.num_nodes - 1
        if node_id is not None and node_id != leaving:
            raise ValueError(
                f"only the highest-numbered node ({leaving}) can drain; "
                f"node {node_id} would renumber the cluster"
            )
        if leaving in self.down:
            raise ValueError("cannot drain a dead node; use failure repair")
        if self.num_nodes <= 1:
            raise ValueError("cannot drain the last node")
        cluster = gateway.cluster
        assert cluster is not None
        survivors = [
            n for n in range(self.num_nodes)
            if n != leaving and n not in self.down
        ]
        if not survivors:
            raise RuntimeError("no survivors to drain onto")
        victims = [
            entry for entry in list(cluster.rib.entries())
            if entry.node == leaving
        ]
        ops: List[UpdateOp] = []
        for i, entry in enumerate(victims):
            target = survivors[i % len(survivors)]
            record = gateway.controller.record_for_key(entry.key)
            assert record is not None, "RIB/controller disagree"
            gateway.rehome_flow(record.flow, target)
            ops.append(UpdateOp(OP_INSERT, entry.key, target, record.teid,
                                record.base_station_ip))
        self.push_updates(ops)
        report = self._rebuild_shadow(gateway, self.num_nodes - 1)
        self.num_nodes -= 1
        self._swap_all(gateway)
        try:
            rsp_type, rsp = self._request(leaving, MSG_SHUTDOWN)
            protocol.expect(rsp_type, RSP_OK, rsp)
        except (FramingError, OSError):
            pass
        sock = self._socks.pop(leaving, None)
        if sock is not None:
            sock.close()
        self._untrack_segment(leaving)
        self.monitor.untrack(leaving)
        self.addresses = self.addresses[:self.num_nodes]
        self.epoch += 1
        return OpResult(
            verb="drain",
            node=leaving,
            accepted=True,
            epoch=self.epoch,
            affected_flows=len(victims),
            detail={
                "new_nodes": self.num_nodes,
                "gpt_rebuilt_wider": int(report.gpt_rebuilt_wider),
            },
        )

    def join_node(
        self, gateway: EpcGateway, address: Tuple[str, int]
    ) -> OpResult:
        """Grow the cluster by one freshly spawned daemon."""
        return self.commands.run(
            "join", lambda: self._join(gateway, address)
        )

    def _join(
        self, gateway: EpcGateway, address: Tuple[str, int]
    ) -> OpResult:
        new_id = self.num_nodes
        self.addresses.append((str(address[0]), int(address[1])))
        self.num_nodes += 1
        report = self._rebuild_shadow(gateway, self.num_nodes)
        hello = protocol.encode_json({
            "node_id": new_id,
            "num_nodes": self.num_nodes,
            "peers": [[h, p] for h, p in self.addresses],
            "gateway_ip": gateway.gateway_ip,
        })
        rsp_type, rsp = self._request(new_id, MSG_HELLO, hello)
        protocol.expect(rsp_type, RSP_OK, rsp)
        self._swap_all(gateway)
        self.monitor.track(new_id)
        self.epoch += 1
        return OpResult(
            verb="join",
            node=new_id,
            accepted=True,
            epoch=self.epoch,
            detail={
                "new_nodes": self.num_nodes,
                "gpt_rebuilt_wider": int(report.gpt_rebuilt_wider),
            },
        )

    # ------------------------------------------------------------------
    # Rejoin: delta-log catch-up for a repaired node (scale tier)
    # ------------------------------------------------------------------

    def rejoin_node(
        self,
        gateway: EpcGateway,
        node_id: int,
        address: Tuple[str, int],
    ) -> OpResult:
        """Bring a repaired (DEAD) node back without a full re-bootstrap.

        The revived daemon — a fresh process on a fresh port — receives
        the current epoch's *floor* (by shared-memory reference when
        published, wire bytes otherwise) plus the delta log accumulated
        since, which it replays before swapping planes: O(changes) catch-up
        instead of O(structure).  Survivors re-learn the topology (the
        node's new port) through a ``MSG_DOWN`` broadcast carrying the
        refreshed peer list.
        """
        return self.commands.run(
            "rejoin", lambda: self._rejoin(gateway, node_id, address)
        )

    def _rejoin(
        self, gateway: EpcGateway, node_id: int, address: Tuple[str, int]
    ) -> OpResult:
        cluster = gateway.cluster
        assert cluster is not None, "gateway not started"
        if node_id not in self.down:
            raise ValueError(
                f"node {node_id} is not down; only a repaired node rejoins"
            )
        self.addresses[node_id] = (str(address[0]), int(address[1]))
        stale = self._socks.pop(node_id, None)
        if stale is not None:
            stale.close()
        # Revive first: ownership and the peer lists must include the node
        # again before any state is computed or broadcast.
        self.down.discard(node_id)
        gateway.down_nodes.discard(node_id)
        self.monitor.reset(node_id)
        peers = [[h, p] for h, p in self.addresses]
        hello = protocol.encode_json({
            "node_id": node_id,
            "num_nodes": self.num_nodes,
            "peers": peers,
            "gateway_ip": gateway.gateway_ip,
        })
        rsp_type, rsp = self._request(node_id, MSG_HELLO, hello)
        protocol.expect(rsp_type, RSP_OK, rsp)
        # The revived replica's slices, from the authoritative shadow.
        # Its flows were re-homed during repair, so the FIB slice is
        # usually empty; the RIB slice returns because a live owner makes
        # §4.5 ownership total again.
        fib_slice = [
            [record.key, record.handling_node, record.teid,
             record.base_station_ip]
            for record in gateway.controller.flows.values()
            if record.handling_node == node_id
        ]
        rib_slice = [
            [entry.key, entry.node, entry.value]
            for entry in cluster.rib.entries()
            if cluster.rib.owner_of_key(entry.key) == node_id
        ]
        header = {
            "num_nodes": self.num_nodes,
            "peers": peers,
            "fib": fib_slice,
            "rib": rib_slice,
        }
        if self.deltalog is not None:
            floor = self.deltalog.floor
            catchup = self.deltalog.records()
            replay = self.deltalog.record_count
        else:  # not bootstrapped by this controller (adopted reference)
            floor = serialize.dumps(cluster.nodes[0].gpt.setsep)
            catchup, replay = b"", 0
        segment = None
        if self.publisher is not None:
            segment = self.publisher.current
            if (
                segment is None
                or segment.fingerprint
                != serialize.fingerprint_bytes(floor)
            ):
                segment = self._publish_floor(floor)
        transport = self._ship_state(
            node_id, header, floor, MSG_SNAPSHOT, segment, catchup=catchup
        )
        # Every live daemon (the rejoiner included) re-learns the down set
        # and the refreshed topology; survivors drop cached links to the
        # node's dead port.
        down_payload = protocol.encode_json({
            "down": sorted(self.down),
            "peers": peers,
        })
        for peer in range(self.num_nodes):
            if peer in self.down:
                continue
            rsp_type, rsp = self._request(peer, MSG_DOWN, down_payload)
            protocol.expect(rsp_type, RSP_OK, rsp)
        self.epoch += 1
        return OpResult(
            verb="rejoin",
            node=node_id,
            accepted=True,
            epoch=self.epoch,
            affected_flows=len(fib_slice),
            detail={
                "transport": transport,
                "catchup_records": replay,
                "catchup_bytes": len(catchup),
                "floor_bytes": len(floor),
                "rib_entries": len(rib_slice),
            },
        )

    # ------------------------------------------------------------------
    # Introspection / fault control
    # ------------------------------------------------------------------

    def status_all(self) -> Dict[int, dict]:
        """STATUS report from every live daemon."""
        out: Dict[int, dict] = {}
        with self.commands:
            for node_id in range(self.num_nodes):
                if node_id in self.down:
                    continue
                rsp_type, rsp = self._request(node_id, MSG_STATUS)
                out[node_id] = protocol.decode_json(
                    protocol.expect(rsp_type, RSP_STATUS, rsp)
                )
        return out

    def status_node(self, node_id: int) -> dict:
        """STATUS report from one live daemon."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node {node_id} does not exist")
        if node_id in self.down:
            raise ValueError(f"node {node_id} is down")
        with self.commands:
            rsp_type, rsp = self._request(node_id, MSG_STATUS)
        return protocol.decode_json(
            protocol.expect(rsp_type, RSP_STATUS, rsp)
        )

    def snapshot(self) -> Dict[str, object]:
        """Wire-free introspection: membership, epoch, liveness, ops.

        Everything here comes from controller-local state, so the call
        is safe at any time — even while a mutation is in flight on
        another thread (the reader sees before-or-after, never torn
        state, because nothing blocks).
        """
        states = {
            node_id: self.monitor.state(node_id).value
            for node_id in self.monitor.tracked()
        }
        out: Dict[str, object] = {
            "nodes": self.num_nodes,
            "epoch": self.epoch,
            "down": sorted(self.down),
            "addresses": [list(addr) for addr in self.addresses],
            "states": states,
            "suspects": self.monitor.suspect_nodes(),
            "fence_candidates": self.monitor.fence_candidates(),
            "miss_threshold": self.monitor.miss_threshold,
            "fence_after": self.monitor.fence_after,
            "recent_ops": self.commands.recent(),
            "shm": {
                "enabled": self.use_shm,
                "segments": (
                    self.publisher.live_segments()
                    if self.publisher is not None else []
                ),
                "node_segments": {
                    str(n): name
                    for n, name in sorted(self._node_segments.items())
                },
            },
        }
        if self.deltalog is not None:
            out["deltalog"] = {
                "floor_bytes": self.deltalog.floor_bytes,
                "log_bytes": self.deltalog.log_bytes,
                "records": self.deltalog.record_count,
                "compactions": self.deltalog.compactions,
            }
        return out

    def arm_faults(self, node_id: int, budgets: dict) -> None:
        """Arm a daemon's transport fault budgets (``MSG_FAULT``)."""
        rsp_type, rsp = self._request(
            node_id, MSG_FAULT, protocol.encode_json(budgets)
        )
        protocol.expect(rsp_type, RSP_OK, rsp)

    def flush_node(self, node_id: int) -> Dict[str, int]:
        """Deliver a daemon's delayed deltas/forwards (``MSG_FLUSH``)."""
        rsp_type, rsp = self._request(node_id, MSG_FLUSH)
        doc = protocol.decode_json(protocol.expect(rsp_type, RSP_OK, rsp))
        return {key: int(value) for key, value in doc.items()}
