"""The runtime's message catalogue and payload codecs.

Every controller<->daemon and daemon<->daemon exchange is one of the
message types below, carried inside a :mod:`repro.runtime.framing`
message.  Control-plane payloads that are naturally tabular (update
batches, routing outcomes) use fixed-width binary structs; negotiation
and reporting payloads (HELLO, STATUS) are canonical JSON.  GPT deltas
ride as concatenated :meth:`repro.core.delta.GroupDelta.wire_bytes`
frames — self-delimiting, so a DELTA batch is a plain byte join.

``docs/runtime.md`` documents every layout byte by byte.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# ----------------------------------------------------------------------
# Message types
# ----------------------------------------------------------------------

MSG_HELLO = 0x01      # controller -> daemon: identity + topology (JSON)
MSG_SNAPSHOT = 0x02   # controller -> daemon: bootstrap state + snapshot bytes
MSG_SWAP = 0x03       # controller -> daemon: replacement state (resize)
MSG_UPDATE = 0x04     # controller -> owner daemon: RIB update batch
MSG_FIB = 0x05        # owner -> handling daemon: FIB install/remove batch
MSG_DELTA = 0x06      # owner -> peer daemon: concatenated GPT deltas
MSG_ROUTE = 0x07      # controller -> ingress daemon: raw frame batch
MSG_FORWARD = 0x08    # ingress -> handling daemon: forwarded sub-batch
MSG_PING = 0x09       # controller -> daemon: liveness probe
MSG_STATUS = 0x0A     # controller -> daemon: report counters/charges/CRC
MSG_ADOPT = 0x0B      # controller -> successor daemon: orphaned RIB slice
MSG_FAULT = 0x0C      # controller -> daemon: arm transport fault budgets
MSG_FLUSH = 0x0D      # controller -> daemon: deliver delayed deltas
MSG_DOWN = 0x0E       # controller -> daemon: the current dead-node set
MSG_SHUTDOWN = 0x0F   # controller -> daemon: reply then exit

# Controller replication (repro.runtime.replication over the wire).
MSG_VOTE = 0x10       # replica -> replica: RequestVote (JSON)
MSG_APPEND = 0x11     # leader -> replica: AppendEntries/heartbeat (JSON)
MSG_SUBMIT = 0x12     # client -> replica: replicate a controller verb
MSG_QUERY = 0x13      # client -> replica: replication status / audit
MSG_CLAIM = 0x14      # leader -> daemon: claim leadership for this link

# Scale tier (shared-memory snapshots + delta-log catch-up).
MSG_STATE_REF = 0x15  # controller -> daemon: state by shm reference

RSP_OK = 0x80         # generic acknowledgement (optional JSON detail)
RSP_UPDATE = 0x84     # MSG_UPDATE accounting JSON + delta wire records
RSP_ROUTE = 0x87      # per-frame routing outcomes
RSP_FORWARD = 0x88    # per-frame outcomes for a forwarded sub-batch
RSP_PONG = 0x89       # liveness echo
RSP_STATUS = 0x8A     # STATUS report (JSON)
RSP_VOTE = 0x90       # RequestVote reply (JSON)
RSP_APPEND = 0x91     # AppendEntries reply (JSON)
RSP_RESULT = 0x92     # MSG_SUBMIT / MSG_QUERY result (JSON)
RSP_REDIRECT = 0x93   # not the leader: {"leader": id|null, "term": n}
RSP_ERR = 0xFF        # handler raised; payload is JSON {"error": ...}

#: Human names, used in metric names and fault budgets.
MSG_NAMES: Dict[int, str] = {
    MSG_HELLO: "hello",
    MSG_SNAPSHOT: "snapshot",
    MSG_SWAP: "swap",
    MSG_UPDATE: "update",
    MSG_FIB: "fib",
    MSG_DELTA: "delta",
    MSG_ROUTE: "route",
    MSG_FORWARD: "forward",
    MSG_PING: "ping",
    MSG_STATUS: "status",
    MSG_ADOPT: "adopt",
    MSG_FAULT: "fault",
    MSG_FLUSH: "flush",
    MSG_DOWN: "down",
    MSG_SHUTDOWN: "shutdown",
    MSG_VOTE: "vote",
    MSG_APPEND: "append",
    MSG_SUBMIT: "submit",
    MSG_QUERY: "query",
    MSG_CLAIM: "claim",
    MSG_STATE_REF: "state_ref",
    RSP_OK: "ok",
    RSP_UPDATE: "update_rsp",
    RSP_ROUTE: "route_rsp",
    RSP_FORWARD: "forward_rsp",
    RSP_PONG: "pong",
    RSP_STATUS: "status_rsp",
    RSP_VOTE: "vote_rsp",
    RSP_APPEND: "append_rsp",
    RSP_RESULT: "result",
    RSP_REDIRECT: "redirect",
    RSP_ERR: "err",
}


class ProtocolError(ValueError):
    """A payload failed to parse or an unexpected response arrived."""


def encode_json(document: object) -> bytes:
    """Canonical JSON payload (sorted keys, compact separators)."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    """Parse a JSON payload; raises :class:`ProtocolError` on garbage."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("JSON payload root must be an object")
    return document


# ----------------------------------------------------------------------
# Update batches (MSG_UPDATE and MSG_FIB share the record layout)
# ----------------------------------------------------------------------

OP_INSERT = 1
OP_REMOVE = 2

#: One update record: op u8, key u64, node u32, value u32, bs_ip u32.
_UPDATE_RECORD = struct.Struct("<BQIII")
_COUNT = struct.Struct("<I")


@dataclass(frozen=True)
class UpdateOp:
    """One RIB/FIB operation on the wire.

    ``node``/``value``/``bs_ip`` are ignored for :data:`OP_REMOVE` (the
    authoritative slice knows where the key lives).
    """

    op: int
    key: int
    node: int = 0
    value: int = 0
    bs_ip: int = 0


def encode_updates(ops: Sequence[UpdateOp]) -> bytes:
    """``u32 count | count x update records``."""
    parts = [_COUNT.pack(len(ops))]
    for op in ops:
        parts.append(_UPDATE_RECORD.pack(op.op, op.key, op.node,
                                         op.value, op.bs_ip))
    return b"".join(parts)


def decode_updates(payload: bytes) -> List[UpdateOp]:
    """Inverse of :func:`encode_updates`."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("update batch truncated in count")
    (count,) = _COUNT.unpack_from(payload, 0)
    expected = _COUNT.size + count * _UPDATE_RECORD.size
    if len(payload) != expected:
        raise ProtocolError(
            f"update batch length {len(payload)} != expected {expected}"
        )
    out: List[UpdateOp] = []
    offset = _COUNT.size
    for _ in range(count):
        op, key, node, value, bs_ip = _UPDATE_RECORD.unpack_from(
            payload, offset
        )
        if op not in (OP_INSERT, OP_REMOVE):
            raise ProtocolError(f"unknown update op {op}")
        out.append(UpdateOp(op=op, key=key, node=node, value=value,
                            bs_ip=bs_ip))
        offset += _UPDATE_RECORD.size
    return out


# ----------------------------------------------------------------------
# Routing outcomes (RSP_ROUTE / RSP_FORWARD)
# ----------------------------------------------------------------------

STATUS_DELIVERED = 0
STATUS_UNKNOWN = 1     # FIB rejected (one-sided error / stale replica)
STATUS_MALFORMED = 2
STATUS_NODE_DOWN = 3
STATUS_LOST = 4        # consumed by an injected transport fault

#: Shadow-simulation drop reason -> wire status, for the differential
#: harness (``"handled"`` maps to DELIVERED).
REASON_TO_STATUS: Dict[str, int] = {
    "handled": STATUS_DELIVERED,
    "unknown_key": STATUS_UNKNOWN,
    "malformed": STATUS_MALFORMED,
    "node_down": STATUS_NODE_DOWN,
}

#: One outcome header: status u8, handler i32, teid u32, out length u32.
_OUTCOME_HEADER = struct.Struct("<BiII")


@dataclass(frozen=True)
class RouteOutcome:
    """What happened to one routed frame.

    ``handler`` is the GPT's answer even for drops (−1 when the frame
    never reached a lookup); ``out`` is the GTP-U encapsulated packet for
    delivered frames, ``None`` otherwise.
    """

    status: int
    handler: int
    teid: int
    out: Optional[bytes]


def encode_outcomes(outcomes: Sequence[RouteOutcome]) -> bytes:
    """``u32 count | count x (outcome header | out bytes)``."""
    parts = [_COUNT.pack(len(outcomes))]
    for outcome in outcomes:
        out = outcome.out if outcome.out is not None else b""
        parts.append(_OUTCOME_HEADER.pack(outcome.status, outcome.handler,
                                          outcome.teid, len(out)))
        parts.append(out)
    return b"".join(parts)


def decode_outcomes(payload: bytes) -> List[RouteOutcome]:
    """Inverse of :func:`encode_outcomes`."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("outcome batch truncated in count")
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    out: List[RouteOutcome] = []
    for _ in range(count):
        if offset + _OUTCOME_HEADER.size > len(payload):
            raise ProtocolError("outcome batch truncated in header")
        status, handler, teid, out_len = _OUTCOME_HEADER.unpack_from(
            payload, offset
        )
        offset += _OUTCOME_HEADER.size
        if offset + out_len > len(payload):
            raise ProtocolError("outcome batch truncated in packet body")
        body = payload[offset:offset + out_len]
        offset += out_len
        out.append(RouteOutcome(
            status=status,
            handler=handler,
            teid=teid,
            out=body if status == STATUS_DELIVERED else None,
        ))
    if offset != len(payload):
        raise ProtocolError("outcome batch has trailing bytes")
    return out


# ----------------------------------------------------------------------
# Bootstrap state (MSG_SNAPSHOT / MSG_SWAP)
# ----------------------------------------------------------------------

_JSON_LEN = struct.Struct("<I")


def encode_state(header: dict, snapshot: bytes) -> bytes:
    """``u32 json_len | json | separator snapshot bytes``.

    ``header`` carries the daemon's FIB slice, RIB slice and topology;
    ``snapshot`` is :func:`repro.core.serialize.dumps` of the GPT (either
    backend's payload kind).  The same framing carries ``MSG_STATE_REF``
    (header + concatenated catch-up records) and the extended
    ``RSP_UPDATE`` (accounting JSON + the batch's delta wire records).
    """
    blob = encode_json(header)
    return _JSON_LEN.pack(len(blob)) + blob + snapshot


def decode_state(payload: bytes) -> Tuple[dict, bytes]:
    """Inverse of :func:`encode_state`; returns (header, snapshot)."""
    if len(payload) < _JSON_LEN.size:
        raise ProtocolError("state payload truncated in header length")
    (json_len,) = _JSON_LEN.unpack_from(payload, 0)
    start = _JSON_LEN.size
    if start + json_len > len(payload):
        raise ProtocolError("state payload truncated in JSON header")
    header = decode_json(payload[start:start + json_len])
    return header, payload[start + json_len:]


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------

_PING = struct.Struct("<Q")


def encode_ping(seq: int) -> bytes:
    """``u64 sequence number``."""
    return _PING.pack(seq)


def decode_ping(payload: bytes) -> int:
    """Inverse of :func:`encode_ping`."""
    if len(payload) != _PING.size:
        raise ProtocolError("ping payload must be exactly 8 bytes")
    return _PING.unpack(payload)[0]


def expect(rsp_type: int, wanted: int, payload: bytes) -> bytes:
    """Assert a response type, surfacing RSP_ERR bodies as exceptions."""
    if rsp_type == RSP_ERR:
        detail = "remote error"
        try:
            detail = str(decode_json(payload).get("error", detail))
        except ProtocolError:
            pass
        raise ProtocolError(f"peer reported: {detail}")
    if rsp_type != wanted:
        raise ProtocolError(
            f"expected {MSG_NAMES.get(wanted, wanted)} response, got "
            f"{MSG_NAMES.get(rsp_type, rsp_type)}"
        )
    return payload
