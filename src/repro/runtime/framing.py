"""Length-prefixed message framing over a stream socket.

The runtime's processes speak a minimal binary protocol: every message is

    u32 length (little endian, length of type byte + payload)
    u8  type   (:mod:`repro.runtime.protocol` constants)
    payload    (length - 1 bytes)

TCP gives the byte stream; this module gives message boundaries, EOF
detection, and the tiny pack/unpack helpers for payloads that are
themselves lists of frames.  It deliberately knows nothing about message
*semantics* — that lives in :mod:`repro.runtime.protocol` — so the framing
layer can be property-tested in isolation.
"""

from __future__ import annotations

import socket
import struct
from typing import List, Optional, Sequence, Tuple

#: Message header: payload length including the type byte.
LENGTH_HEADER = struct.Struct("<I")

#: Upper bound on one message (64 MiB) — a framing-error tripwire, not a
#: capacity plan; a corrupt length prefix otherwise asks recv for gigabytes.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Default socket timeout (seconds).  Generous because one UPDATE batch
#: can carry tens of thousands of rebuilds; liveness probes override it.
DEFAULT_TIMEOUT = 180.0


class FramingError(ConnectionError):
    """The peer closed mid-message or sent an impossible length."""


def pack_message(msg_type: int, payload: bytes = b"") -> bytes:
    """One wire message: length header + type byte + payload."""
    if not 0 <= msg_type <= 0xFF:
        raise ValueError("message type must fit a byte")
    body_len = 1 + len(payload)
    if body_len > MAX_MESSAGE_BYTES:
        raise ValueError("message exceeds MAX_MESSAGE_BYTES")
    return LENGTH_HEADER.pack(body_len) + bytes([msg_type]) + payload


def pack_frame_list(frames: Sequence[bytes]) -> bytes:
    """``u32 n | n x (u32 len | bytes)`` — a batch of raw packet frames."""
    parts = [struct.pack("<I", len(frames))]
    for frame in frames:
        parts.append(struct.pack("<I", len(frame)))
        parts.append(frame)
    return b"".join(parts)


def unpack_frame_list(payload: bytes, offset: int = 0) -> Tuple[List[bytes], int]:
    """Inverse of :func:`pack_frame_list`; returns (frames, next_offset)."""
    if offset + 4 > len(payload):
        raise FramingError("frame list truncated in count")
    (count,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    frames: List[bytes] = []
    for _ in range(count):
        if offset + 4 > len(payload):
            raise FramingError("frame list truncated in length")
        (length,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if offset + length > len(payload):
            raise FramingError("frame list truncated in frame body")
        frames.append(payload[offset:offset + length])
        offset += length
    return frames, offset


class FramedSocket:
    """A connected stream socket that sends and receives whole messages."""

    def __init__(self, sock: socket.socket,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.sock = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (tests may wrap a socketpair)
        sock.settimeout(timeout)

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float = DEFAULT_TIMEOUT) -> "FramedSocket":
        """Dial a listening runtime process."""
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, timeout=timeout)

    def settimeout(self, timeout: Optional[float]) -> None:
        """Adjust the per-operation timeout (liveness probes shrink it)."""
        self.sock.settimeout(timeout)

    def send(self, msg_type: int, payload: bytes = b"") -> int:
        """Ship one message; returns the bytes written."""
        data = pack_message(msg_type, payload)
        self.sock.sendall(data)
        return len(data)

    def recv(self) -> Tuple[int, bytes]:
        """Read exactly one message; raises :class:`FramingError` on EOF."""
        header = self._recv_exact(LENGTH_HEADER.size)
        (body_len,) = LENGTH_HEADER.unpack(header)
        if not 1 <= body_len <= MAX_MESSAGE_BYTES:
            raise FramingError(f"impossible message length {body_len}")
        body = self._recv_exact(body_len)
        return body[0], body[1:]

    def request(self, msg_type: int, payload: bytes = b"") -> Tuple[int, bytes]:
        """Send one message and block for the single response."""
        self.send(msg_type, payload)
        return self.recv()

    def _recv_exact(self, count: int) -> bytes:
        chunks: List[bytes] = []
        remaining = count
        while remaining:
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise FramingError("connection closed mid-message")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self.sock.close()
        except OSError:
            pass
