"""The discrete-event core: a time-ordered event queue.

Minimal and deterministic: events are (time, sequence, callback) triples;
ties break by insertion order so simulations replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A deterministic priority queue of timed callbacks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` time units from now (delay >= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._counter), action)
        )

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (when, next(self._counter), action))

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Drain events (optionally up to time ``until``); returns count."""
        executed = 0
        while self._heap and executed < max_events:
            when, _seq, action = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self.now = when
            action()
            executed += 1
            self.processed += 1
        if until is not None and (not self._heap or self._heap[0][0] > until):
            self.now = max(self.now, until)
        return executed

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """Whether anything remains scheduled."""
        return not self._heap
