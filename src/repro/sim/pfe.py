"""Simulated PFE nodes: per-core queues with model-derived service times.

Each node has an *external* core (traffic-generator port) and an
*internal* core (switch port), exactly the §6.2 core assignment.  A core
is a single server with a bounded FIFO: packets that arrive while the
queue is full are dropped (tail drop), everything else is serviced in
order at a deterministic per-packet cost taken from the calibrated table
and GPT cost models — so the simulation and the closed forms share their
physics and can disagree only about queueing, which is the point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from repro.model.cache import CacheHierarchy
from repro.model.perf import (
    PACKET_IO_NS,
    PFE_BATCH,
    SETSEP_CPU_NS,
    TableCostModel,
)
from repro.sim.events import EventQueue


@dataclass(frozen=True)
class SimPacket:
    """A packet in flight through the simulation."""

    packet_id: int
    handling_node: int
    entered_at: float


@dataclass
class CoreStats:
    """Per-core accounting."""

    serviced: int = 0
    dropped: int = 0
    busy_ns: float = 0.0
    peak_queue: int = 0


class CoreModel:
    """One CPU core: single-server FIFO with deterministic service."""

    def __init__(
        self,
        queue: EventQueue,
        service_ns: Callable[[SimPacket], float],
        on_done: Callable[[SimPacket], None],
        queue_limit: int = 512,
    ) -> None:
        self._events = queue
        self._service_ns = service_ns
        self._on_done = on_done
        self._queue: Deque[SimPacket] = deque()
        self._queue_limit = queue_limit
        self._busy = False
        self.stats = CoreStats()

    def enqueue(self, packet: SimPacket) -> bool:
        """Offer a packet; returns False on tail drop."""
        if len(self._queue) >= self._queue_limit:
            self.stats.dropped += 1
            return False
        self._queue.append(packet)
        self.stats.peak_queue = max(self.stats.peak_queue, len(self._queue))
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        cost_ns = self._service_ns(packet)
        self.stats.busy_ns += cost_ns
        def finish() -> None:
            self.stats.serviced += 1
            self._on_done(packet)
            self._start_next()
        self._events.schedule(cost_ns, finish)

    @property
    def depth(self) -> int:
        """Packets waiting (not counting the one in service)."""
        return len(self._queue)


class PfeNode:
    """One cluster node in the simulation: external + internal cores.

    Args:
        node_id: position in the cluster.
        events: shared event queue.
        cache: the machine's cache hierarchy.
        table: FIB cost model.
        design: ``"scalebricks"`` or ``"full_duplication"``.
        num_flows: FIB population (drives table sizes).
        num_nodes: cluster size (drives the partial-FIB split).
        forward: callback ``(packet, target_node)`` delivering a packet
            to ``target_node``'s internal core via the switch.
        deliver: callback invoked when a packet finishes at its handler.
        lookup_node_of: for ``hash_partition``: the key's lookup node
            (callers provide a deterministic hash of the packet id).
        pick_indirect: for ``routebricks_vlb``: indirect-node selection.
    """

    DESIGNS = (
        "scalebricks",
        "full_duplication",
        "hash_partition",
        "routebricks_vlb",
    )

    def __init__(
        self,
        node_id: int,
        events: EventQueue,
        cache: CacheHierarchy,
        table: TableCostModel,
        design: str,
        num_flows: int,
        num_nodes: int,
        forward: Callable[[SimPacket, int], None],
        deliver: Callable[[SimPacket], None],
        lookup_node_of: Optional[Callable[[SimPacket], int]] = None,
        pick_indirect: Optional[Callable[[SimPacket], int]] = None,
    ) -> None:
        if design not in self.DESIGNS:
            raise ValueError(f"unsupported design {design!r}")
        if design == "hash_partition" and lookup_node_of is None:
            raise ValueError("hash_partition needs lookup_node_of")
        if design == "routebricks_vlb" and pick_indirect is None:
            raise ValueError("routebricks_vlb needs pick_indirect")
        self.node_id = node_id
        self.design = design
        self._forward = forward
        self._deliver = deliver
        self._lookup_node_of = lookup_node_of
        self._pick_indirect = pick_indirect

        local_entries = max(1, num_flows // num_nodes)
        self._full_fib_ns = table.lookup_ns(num_flows, cache, batch=PFE_BATCH)
        self._partial_fib_ns = table.lookup_ns(
            local_entries, cache, batch=PFE_BATCH
        )
        gpt_bits = num_flows * (0.5 + 1.5 * 2)
        self._gpt_ns = SETSEP_CPU_NS + 2 * cache.overlapped_access_ns(
            int(gpt_bits / 8), PFE_BATCH
        )

        self.external = CoreModel(
            events, self._service_external, self._external_done
        )
        self.internal = CoreModel(
            events, self._service_internal, self._internal_done
        )

    # ------------------------------------------------------------------
    # Service-time functions
    # ------------------------------------------------------------------

    def _service_external(self, packet: SimPacket) -> float:
        if self.design == "full_duplication":
            return PACKET_IO_NS + self._full_fib_ns
        if self.design == "scalebricks":
            cost = PACKET_IO_NS + self._gpt_ns
            if packet.handling_node == self.node_id:
                cost += self._partial_fib_ns
            return cost
        if self.design == "hash_partition":
            # Ingress hashes only; local lookup happens when this node is
            # also the key's lookup node.
            cost = PACKET_IO_NS + 10.0
            if self._lookup_node_of(packet) == self.node_id:
                cost += self._partial_fib_ns
            return cost
        # VLB: full FIB at ingress (RouteBricks replicates it).
        return PACKET_IO_NS + self._full_fib_ns

    def _service_internal(self, packet: SimPacket) -> float:
        if self.design == "full_duplication":
            return PACKET_IO_NS
        if self.design == "scalebricks":
            return PACKET_IO_NS + self._partial_fib_ns
        if self.design == "hash_partition":
            # The indirect (lookup) node looks up and re-forwards; the
            # final handler just receives.
            if self._lookup_node_of(packet) == self.node_id and \
                    packet.handling_node != self.node_id:
                return PACKET_IO_NS + self._partial_fib_ns + PACKET_IO_NS
            if self._lookup_node_of(packet) == self.node_id:
                return PACKET_IO_NS + self._partial_fib_ns
            return PACKET_IO_NS
        # VLB indirect node relays; the handler receives.
        if packet.handling_node != self.node_id:
            return 2 * PACKET_IO_NS  # rx + tx relay work
        return PACKET_IO_NS

    # ------------------------------------------------------------------
    # Completion handlers
    # ------------------------------------------------------------------

    def _external_done(self, packet: SimPacket) -> None:
        if self.design in ("full_duplication", "scalebricks"):
            if packet.handling_node == self.node_id:
                self._deliver(packet)
            else:
                self._forward(packet, packet.handling_node)
            return
        if self.design == "hash_partition":
            lookup_node = self._lookup_node_of(packet)
            if lookup_node == self.node_id:
                # Already looked up locally; go straight to the handler.
                if packet.handling_node == self.node_id:
                    self._deliver(packet)
                else:
                    self._forward(packet, packet.handling_node)
            else:
                self._forward(packet, lookup_node)
            return
        # VLB: detour via an indirect node unless handled locally.
        if packet.handling_node == self.node_id:
            self._deliver(packet)
        else:
            self._forward(packet, self._pick_indirect(packet))

    def _internal_done(self, packet: SimPacket) -> None:
        if packet.handling_node == self.node_id:
            self._deliver(packet)
        else:
            # Indirect node (hash partition / VLB): relay to the handler.
            self._forward(packet, packet.handling_node)
