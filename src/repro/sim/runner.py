"""Driving the discrete-event cluster: open-loop load, emergent metrics.

``ClusterSimulation`` offers a Poisson (or deterministic) packet stream to
every node's external core, moves inter-node packets across the switch
with its transit latency, and reports what *emerged*: delivered
throughput, loss, mean/percentile latency and per-core utilisation.  The
shapes the paper measures — the ScaleBricks core-balance win, saturation
of the full-duplication external core, the latency knee — appear here as
queueing phenomena rather than closed-form assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.model.cache import CacheHierarchy
from repro.model.perf import TableCostModel
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.sim.events import EventQueue
from repro.sim.pfe import PfeNode, SimPacket
from repro.utils.stats import percentile

#: Switch transit latency in ns (0.6 us, the fabric default).
SWITCH_TRANSIT_NS = 600.0

#: Queue-depth histogram buckets (packets waiting at enqueue time).
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                       256.0)


@dataclass(frozen=True)
class SimulationReport:
    """What the event dynamics produced."""

    design: str
    offered_mpps_per_node: float
    delivered_mpps_per_node: float
    loss_fraction: float
    mean_latency_us: float
    p99_latency_us: float
    external_utilisation: float
    internal_utilisation: float

    @property
    def saturated(self) -> bool:
        """Whether the bottleneck core ran at (effectively) full tilt."""
        return max(self.external_utilisation, self.internal_utilisation) > 0.99


class ClusterSimulation:
    """An open-loop simulation of one design at one operating point.

    Args:
        design: ``"scalebricks"`` or ``"full_duplication"``.
        cache: machine model.
        table: FIB cost model.
        num_nodes: cluster size.
        num_flows: FIB population.
        seed: randomness (arrival process and handler assignment).
        registry: metrics registry for queue-depth histograms and
            offered/delivered/dropped counters (default: disabled).
    """

    def __init__(
        self,
        design: str,
        cache: CacheHierarchy,
        table: TableCostModel,
        num_nodes: int = 4,
        num_flows: int = 8_000_000,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.design = design
        self.num_nodes = num_nodes
        self.events = EventQueue()
        self._rng = np.random.default_rng(seed)
        self._latencies_ns: List[float] = []
        self._delivered = 0
        self._offered = 0
        self._dropped = 0
        self.registry = resolve_registry(registry)
        self._m_offered = self.registry.counter(
            f"sim.{design}.offered", "packets offered to the cluster"
        )
        self._m_delivered = self.registry.counter(
            f"sim.{design}.delivered", "packets that completed service"
        )
        self._m_dropped = self.registry.counter(
            f"sim.{design}.dropped", "packets lost to full core queues"
        )
        self._h_ext_depth = self.registry.histogram(
            f"sim.{design}.queue_depth.external",
            buckets=QUEUE_DEPTH_BUCKETS,
            description="external-core queue depth seen by each arrival",
        )
        self._h_int_depth = self.registry.histogram(
            f"sim.{design}.queue_depth.internal",
            buckets=QUEUE_DEPTH_BUCKETS,
            description="internal-core queue depth seen by each arrival",
        )

        def lookup_node_of(packet: SimPacket) -> int:
            # Deterministic per-packet "key hash" (the lookup slice owner).
            return (packet.packet_id * 2_654_435_761) % num_nodes

        def pick_indirect(packet: SimPacket) -> int:
            # Deterministic VLB intermediate distinct from the handler.
            offset = 1 + (packet.packet_id * 40_503) % max(1, num_nodes - 1)
            return (packet.handling_node + offset) % num_nodes

        self.nodes = [
            PfeNode(
                node_id=i,
                events=self.events,
                cache=cache,
                table=table,
                design=design,
                num_flows=num_flows,
                num_nodes=num_nodes,
                forward=self._forward,
                deliver=self._deliver,
                lookup_node_of=lookup_node_of,
                pick_indirect=pick_indirect,
            )
            for i in range(num_nodes)
        ]

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------

    def _forward(self, packet: SimPacket, target_node: int) -> None:
        def arrive() -> None:
            target = self.nodes[target_node].internal
            self._h_int_depth.observe(target.depth)
            if not target.enqueue(packet):
                self._dropped += 1
                self._m_dropped.inc()
        self.events.schedule(SWITCH_TRANSIT_NS, arrive)

    def _deliver(self, packet: SimPacket) -> None:
        self._delivered += 1
        self._m_delivered.inc()
        self._latencies_ns.append(self.events.now - packet.entered_at)

    # ------------------------------------------------------------------
    # Load offering
    # ------------------------------------------------------------------

    def offer_load(
        self,
        mpps_per_node: float,
        duration_us: float,
        poisson: bool = True,
    ) -> SimulationReport:
        """Offer an open-loop stream to every node and run to quiescence."""
        if mpps_per_node <= 0 or duration_us <= 0:
            raise ValueError("load and duration must be positive")
        interval_ns = 1e3 / mpps_per_node
        duration_ns = duration_us * 1e3
        packet_id = 0
        for node in range(self.num_nodes):
            t = 0.0
            while True:
                gap = (
                    self._rng.exponential(interval_ns)
                    if poisson
                    else interval_ns
                )
                t += gap
                if t >= duration_ns:
                    break
                packet_id += 1
                self._schedule_arrival(node, t, packet_id)
        self._offered = packet_id

        self.events.run()
        return self._report(mpps_per_node, duration_ns)

    def poisson_trace(
        self,
        mpps_per_node: float,
        duration_us: float,
        poisson: bool = True,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Generate an arrival trace with batched draws (batch ingest).

        The vectorised companion to :meth:`offer_load`'s inline generation:
        all of a node's inter-arrival gaps are drawn in one
        ``rng.exponential(size=...)`` call and accumulated with
        ``np.cumsum``.  Returns ``(nodes, times_ns)`` ready for
        :meth:`offer_trace`.  (It consumes the generator differently from
        :meth:`offer_load`, which interleaves gap and handler draws — the
        two entry points produce equally valid, but not identical, traces.)
        """
        if mpps_per_node <= 0 or duration_us <= 0:
            raise ValueError("load and duration must be positive")
        interval_ns = 1e3 / mpps_per_node
        duration_ns = duration_us * 1e3
        node_ids: List[np.ndarray] = []
        times: List[np.ndarray] = []
        chunk = max(16, int(duration_ns / interval_ns * 1.2) + 1)
        for node in range(self.num_nodes):
            if poisson:
                t = np.cumsum(self._rng.exponential(interval_ns, size=chunk))
                while t[-1] < duration_ns:
                    more = self._rng.exponential(interval_ns, size=chunk)
                    t = np.concatenate([t, t[-1] + np.cumsum(more)])
                t = t[t < duration_ns]
            else:
                count = int(np.ceil(duration_ns / interval_ns)) + 1
                t = interval_ns * np.arange(1, count, dtype=np.float64)
                t = t[t < duration_ns]
            node_ids.append(np.full(t.size, node, dtype=np.int64))
            times.append(t)
        return np.concatenate(node_ids), np.concatenate(times)

    def offer_trace(
        self,
        nodes: np.ndarray,
        times_ns: np.ndarray,
        handlers: Optional[np.ndarray] = None,
    ) -> SimulationReport:
        """Offer a precomputed arrival trace and run to quiescence.

        Batch ingest for the event loop: handler assignment happens as one
        vectorised draw (unless ``handlers`` pins it), and arrivals are
        scheduled without the per-packet generation loop of
        :meth:`offer_load`.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        times_ns = np.asarray(times_ns, dtype=np.float64)
        if nodes.shape != times_ns.shape or nodes.ndim != 1:
            raise ValueError("nodes and times_ns must be equal-length 1-D")
        n = nodes.size
        if n == 0:
            raise ValueError("empty arrival trace")
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ValueError("trace names a node outside the cluster")
        if times_ns.min() <= 0:
            raise ValueError("arrival times must be positive")
        if handlers is None:
            handlers = self._rng.integers(self.num_nodes, size=n)
        handlers = np.asarray(handlers, dtype=np.int64)
        if handlers.shape != nodes.shape:
            raise ValueError("handlers length differs from trace length")
        for i in range(n):
            self._schedule_arrival(
                int(nodes[i]), float(times_ns[i]), i + 1,
                handler=int(handlers[i]),
            )
        self._offered = n
        self.events.run()
        duration_ns = float(times_ns.max())
        offered_mpps = n / self.num_nodes / duration_ns * 1e3
        return self._report(offered_mpps, duration_ns)

    def _schedule_arrival(
        self,
        node: int,
        when_ns: float,
        pid: int,
        handler: Optional[int] = None,
    ) -> None:
        if handler is None:
            handler = int(self._rng.integers(self.num_nodes))

        def arrive() -> None:
            packet = SimPacket(
                packet_id=pid,
                handling_node=handler,
                entered_at=self.events.now,
            )
            external = self.nodes[node].external
            self._h_ext_depth.observe(external.depth)
            self._m_offered.inc()
            if not external.enqueue(packet):
                self._dropped += 1
                self._m_dropped.inc()

        self.events.schedule_at(when_ns, arrive)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(
        self, offered_mpps: float, duration_ns: float
    ) -> SimulationReport:
        lat = self._latencies_ns or [0.0]
        span_ns = max(self.events.now, duration_ns)
        delivered_mpps = (
            self._delivered / self.num_nodes / span_ns * 1e3
        )
        ext_util = max(
            n.external.stats.busy_ns / span_ns for n in self.nodes
        )
        int_util = max(
            n.internal.stats.busy_ns / span_ns for n in self.nodes
        )
        # Every drop happens at a core queue (the runner's counter mirrors
        # the same events), so count each once via the core stats.
        dropped = sum(
            n.external.stats.dropped + n.internal.stats.dropped
            for n in self.nodes
        )
        return SimulationReport(
            design=self.design,
            offered_mpps_per_node=offered_mpps,
            delivered_mpps_per_node=delivered_mpps,
            loss_fraction=dropped / max(1, self._offered),
            mean_latency_us=float(np.mean(lat)) / 1e3,
            p99_latency_us=percentile(lat, 99) / 1e3,
            external_utilisation=ext_util,
            internal_utilisation=int_util,
        )
