"""RFC 2544 throughput search over the discrete-event simulator.

RFC 2544 defines *throughput* as the highest offered rate with zero loss,
found by binary search over trial runs — exactly what the Spirent platform
does to the paper's cluster.  This module runs that methodology against
:class:`repro.sim.ClusterSimulation`, yielding the no-drop rate (NDR) and
the latency-at-NDR figure the paper's Figure 10 corresponds to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.model.cache import CacheHierarchy
from repro.model.perf import TableCostModel
from repro.sim.runner import ClusterSimulation, SimulationReport

SimFactory = Callable[[], ClusterSimulation]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of an RFC 2544 throughput search."""

    no_drop_mpps: float
    latency_at_ndr_us: float
    trials: int
    trial_history: Tuple[Tuple[float, bool], ...]


def throughput_search(
    make_sim: SimFactory,
    hi_mpps: float,
    lo_mpps: float = 0.0,
    duration_us: float = 800.0,
    resolution_mpps: float = 0.1,
    loss_tolerance: float = 0.0,
) -> ThroughputResult:
    """Binary-search the no-drop rate (RFC 2544 §26.1).

    Args:
        make_sim: fresh-simulation factory (one trial per instance —
            RFC 2544 trials are independent).
        hi_mpps: known-lossy upper bound to start from.
        lo_mpps: known-clean lower bound.
        duration_us: trial length.
        resolution_mpps: stop when the bracket is this tight.
        loss_tolerance: acceptable loss fraction (0 = strict NDR).

    Returns:
        The NDR, the average latency measured at it, and the trial log.
    """
    if hi_mpps <= lo_mpps:
        raise ValueError("hi_mpps must exceed lo_mpps")
    if resolution_mpps <= 0:
        raise ValueError("resolution must be positive")

    history: List[Tuple[float, bool]] = []
    best_report: Optional[SimulationReport] = None
    best_rate = lo_mpps
    trials = 0

    lo, hi = lo_mpps, hi_mpps
    while hi - lo > resolution_mpps:
        rate = (lo + hi) / 2
        report = make_sim().offer_load(rate, duration_us=duration_us)
        trials += 1
        clean = report.loss_fraction <= loss_tolerance
        history.append((rate, clean))
        if clean:
            lo = rate
            best_rate = rate
            best_report = report
        else:
            hi = rate

    if best_report is None:
        # Even the lowest probe lost packets; rerun at the floor.
        best_report = make_sim().offer_load(
            max(lo_mpps, resolution_mpps), duration_us=duration_us
        )
        trials += 1
        best_rate = max(lo_mpps, resolution_mpps)

    return ThroughputResult(
        no_drop_mpps=best_rate,
        latency_at_ndr_us=best_report.mean_latency_us,
        trials=trials,
        trial_history=tuple(history),
    )


def compare_designs(
    cache: CacheHierarchy,
    table: TableCostModel,
    designs: Tuple[str, ...] = (
        "full_duplication",
        "scalebricks",
        "hash_partition",
    ),
    num_flows: int = 8_000_000,
    hi_mpps: float = 20.0,
    duration_us: float = 600.0,
    seed: int = 0,
) -> "dict[str, ThroughputResult]":
    """RFC 2544 NDR per design on one machine/population."""
    out = {}
    for design in designs:
        out[design] = throughput_search(
            lambda d=design: ClusterSimulation(
                d, cache, table, num_flows=num_flows, seed=seed
            ),
            hi_mpps=hi_mpps,
            duration_us=duration_us,
        )
    return out
