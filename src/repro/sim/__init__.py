"""Discrete-event cluster simulation.

The closed forms in :mod:`repro.model` compute throughput and latency
directly; this package *simulates* them: packets arrive as timed events,
queue at per-core NIC queues, receive deterministic service from the same
calibrated cost models, and traverse the switch between nodes.  Saturation,
queue build-up and the latency knee then emerge from the event dynamics
instead of being assumed — the cross-validation for Figures 8–10
(``bench_sim_validation.py``).
"""

from repro.sim.events import EventQueue, Event
from repro.sim.pfe import CoreModel, PfeNode, SimPacket
from repro.sim.runner import ClusterSimulation, SimulationReport
from repro.sim.rfc2544 import ThroughputResult, compare_designs, throughput_search
from repro.sim.soak import EpisodeReport, SoakReport, SoakRunner

__all__ = [
    "ThroughputResult",
    "compare_designs",
    "throughput_search",
    "Event",
    "EventQueue",
    "CoreModel",
    "PfeNode",
    "SimPacket",
    "ClusterSimulation",
    "SimulationReport",
    "EpisodeReport",
    "SoakReport",
    "SoakRunner",
]
