"""Chaos soak episodes: seeded fault schedules with differential checking.

A *soak* is N independent episodes.  Each episode stands up a fresh
gateway, mirrors it into a :class:`~repro.chaos.oracle.DifferentialOracle`,
then alternates injected faults (from a :class:`~repro.chaos.faults.FaultPlan`)
with differential traffic bursts and seeded audits, ending with the
oracle's strict every-key, every-byte final audit.

Everything is a pure function of ``(seed, episode)``: the flow
population, the fault schedule, every victim/ingress/corruption choice,
the audit sampling.  Two runs of the same soak therefore produce
byte-identical JSON reports — which is both the reproduction contract
("re-run the failing episode from its seed", see ``docs/chaos.md``) and
an acceptance test in ``tests/test_chaos.py``.  The reports carry only
event counters and modelled values; wall-clock span histograms are
deliberately excluded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chaos import DifferentialOracle, FaultInjector, FaultKind, FaultPlan
from repro.cluster.architectures import Architecture
from repro.epc.gateway import EpcGateway
from repro.epc.packets import parse_ip
from repro.epc.traffic import FlowGenerator

#: Large odd multipliers keep per-episode seed streams disjoint without
#: touching wall clock or global randomness.
_EPISODE_STRIDE = 1_000_003
_INJECTOR_SALT = 0x9E37_79B9
_AUDIT_SALT = 0x85EB_CA6B


@dataclass
class EpisodeReport:
    """Everything one episode did and observed (JSON-ready, deterministic)."""

    episode: int
    seed: int
    steps: int
    flows: int
    fault_kinds: List[str]
    faults_applied: Dict[str, int]
    outcomes: Dict[str, int]
    checks: int
    transit_losses: int
    violations: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    fabric: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the oracle saw no divergence."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "episode": self.episode,
            "seed": self.seed,
            "steps": self.steps,
            "flows": self.flows,
            "fault_kinds": self.fault_kinds,
            "faults_applied": self.faults_applied,
            "outcomes": self.outcomes,
            "checks": self.checks,
            "transit_losses": self.transit_losses,
            "violations": self.violations,
            "counters": self.counters,
            "fabric": self.fabric,
            "ok": self.ok,
        }


@dataclass
class SoakReport:
    """Aggregate over a soak's episodes."""

    seed: int
    architecture: str
    num_nodes: int
    episodes: List[EpisodeReport] = field(default_factory=list)

    @property
    def total_checks(self) -> int:
        return sum(e.checks for e in self.episodes)

    @property
    def total_violations(self) -> int:
        return sum(len(e.violations) for e in self.episodes)

    @property
    def fault_kinds(self) -> List[str]:
        """Distinct fault kinds exercised anywhere in the soak."""
        kinds = set()
        for episode in self.episodes:
            kinds.update(episode.faults_applied)
        return sorted(kinds)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "architecture": self.architecture,
            "num_nodes": self.num_nodes,
            "episodes": [e.to_dict() for e in self.episodes],
            "summary": {
                "episodes": len(self.episodes),
                "total_checks": self.total_checks,
                "total_violations": self.total_violations,
                "fault_kinds": self.fault_kinds,
                "ok": self.ok,
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: sorted keys, so equal reports are equal bytes."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


#: Registry counter prefixes worth reporting per episode.  Only event
#: counters appear — never span histograms, whose values are wall clock.
_COUNTER_PREFIXES = ("gateway.", "update.", "chaos.", "cluster.")


class SoakRunner:
    """Drives N seeded chaos episodes and collects their reports.

    Args:
        seed: base seed; episode ``i`` derives its own seed stream from it.
        episodes: number of independent episodes to run.
        architecture: FIB architecture under test.
        num_nodes: cluster size (>= 3 so crash + partition leave a live
            majority to route through).
        flows: initial bearer population per episode.
        steps: fault events per episode.
        packets_per_burst: differential packets offered after each event.
        kinds: restrict the fault pool (default: every applicable kind).
        fabric_backend: fabric topology under test ("crossbar",
            "fattree"); ``None`` uses the process default
            (:mod:`repro.fabric`).
    """

    def __init__(
        self,
        seed: int,
        episodes: int,
        architecture: Architecture = Architecture.SCALEBRICKS,
        num_nodes: int = 4,
        flows: int = 32,
        steps: int = 8,
        packets_per_burst: int = 12,
        kinds: Optional[Sequence[FaultKind]] = None,
        fabric_backend: Optional[str] = None,
    ) -> None:
        if episodes < 1:
            raise ValueError("need at least one episode")
        if num_nodes < 3:
            raise ValueError("chaos soaks need >= 3 nodes")
        self.seed = seed
        self.episodes = episodes
        self.architecture = architecture
        self.num_nodes = num_nodes
        self.flows = flows
        self.steps = steps
        self.packets_per_burst = packets_per_burst
        self.kinds = tuple(kinds) if kinds is not None else None
        self.fabric_backend = fabric_backend

    def _episode_seed(self, episode: int) -> int:
        return self.seed * _EPISODE_STRIDE + episode

    def run_episode(self, episode: int) -> EpisodeReport:
        """Run one fully seeded episode and report it."""
        episode_seed = self._episode_seed(episode)
        flowgen = FlowGenerator(seed=episode_seed)
        gateway = EpcGateway(
            self.architecture, self.num_nodes, parse_ip("192.0.2.1"),
            fabric_backend=self.fabric_backend,
        )
        flowgen.populate(gateway, self.flows)
        gateway.start()

        oracle = DifferentialOracle(gateway)
        for record in gateway.controller.flows.values():
            oracle.note_connect(record)

        plan = FaultPlan.generate(
            seed=episode_seed,
            steps=self.steps,
            architecture=self.architecture,
            kinds=self.kinds,
        )
        injector = FaultInjector(
            gateway, oracle, flowgen, seed=episode_seed + _INJECTOR_SALT
        )
        audit_rng = np.random.default_rng(episode_seed + _AUDIT_SALT)
        for event in plan.events:
            injector.apply(event)
            injector.burst(event.step, self.packets_per_burst)
            # Budgets must be spent (or dropped) before auditing: an
            # audit probe lost to a leftover drop budget is
            # indistinguishable from a routing bug.
            injector.disarm_fabric_budgets()
            oracle.audit(event.step, audit_rng, sample=16, unknown_probes=4)
        injector.finish()
        oracle.final_audit(plan.steps)

        snapshot = gateway.registry.snapshot()
        counters = {
            name: int(value)
            for name, value in snapshot["counters"].items()
            if name.startswith(_COUNTER_PREFIXES)
        }
        # Fabric accounting for the episode: every field is an int or
        # bool so the JSON report stays byte-deterministic.
        fabric = gateway.cluster.fabric
        fabric_report = {
            "backend": fabric.backend,
            "packets": int(fabric.stats.packets),
            "dropped": int(fabric.stats.dropped),
            "reroutes": int(fabric.stats.reroutes),
            "capacity_exceeded": int(fabric.stats.capacity_exceeded),
            "switch_hops": int(fabric.stats.switch_hops),
            "link_crossings": int(fabric.stats.link_crossings),
            "max_link_packets": int(fabric.stats.max_link_packets()),
            "accounting_ok": bool(fabric.verify_accounting()),
        }
        return EpisodeReport(
            episode=episode,
            seed=episode_seed,
            steps=plan.steps,
            flows=self.flows,
            fault_kinds=plan.kinds_used(),
            faults_applied=dict(sorted(injector.applied.items())),
            outcomes=dict(sorted(injector.outcomes.items())),
            checks=oracle.checks,
            transit_losses=oracle.transit_losses,
            violations=[v.to_dict() for v in oracle.violations],
            counters=dict(sorted(counters.items())),
            fabric=fabric_report,
        )

    def run(self) -> SoakReport:
        """Run every episode."""
        report = SoakReport(
            seed=self.seed,
            architecture=self.architecture.value,
            num_nodes=self.num_nodes,
        )
        for episode in range(self.episodes):
            report.episodes.append(self.run_episode(episode))
        return report
