"""Small summary-statistics helpers used by benchmarks and models."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(sample: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``sample`` (population std)."""
    if not sample:
        raise ValueError("cannot summarize an empty sample")
    n = len(sample)
    mean = sum(sample) / n
    var = sum((x - mean) ** 2 for x in sample) / n
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(sample),
        maximum=max(sample),
    )


def percentile(sample: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of ``sample``."""
    if not sample:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(sample)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
