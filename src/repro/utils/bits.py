"""Bit-level packing helpers.

SetSep deltas and the GPT wire format are specified in bits, not bytes
(a delta is "usually tens of bits", per the paper).  These helpers provide a
small MSB-first bit stream used by :mod:`repro.core.delta` and by the size
accounting in benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List


class BitWriter:
    """Accumulates fields of arbitrary bit width into a byte string.

    Bits are written MSB-first, so the encoded stream is independent of host
    endianness and easy to inspect in tests.
    """

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> "BitWriter":
        """Append ``value`` as a ``width``-bit big-endian field."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < 64 and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)
        return self

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def getvalue(self) -> bytes:
        """Return the stream as bytes, zero-padded to a byte boundary."""
        out = bytearray((len(self._bits) + 7) // 8)
        for pos, bit in enumerate(self._bits):
            if bit:
                out[pos // 8] |= 0x80 >> (pos % 8)
        return bytes(out)


class BitReader:
    """Reads MSB-first bit fields produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an unsigned int."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        for _ in range(width):
            byte = self._data[self._pos // 8]
            bit = (byte >> (7 - self._pos % 8)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the stream."""
        return len(self._data) * 8 - self._pos


def pack_bits(values: Iterable[int], width: int) -> bytes:
    """Pack equal-width unsigned fields into bytes (MSB-first)."""
    writer = BitWriter()
    for value in values:
        writer.write(value, width)
    return writer.getvalue()


def unpack_bits(data: bytes, width: int, count: int) -> List[int]:
    """Unpack ``count`` equal-width fields previously packed by ``pack_bits``."""
    reader = BitReader(data)
    return [reader.read(width) for _ in range(count)]
