"""Shared low-level utilities: bit packing and summary statistics."""

from repro.utils.bits import BitWriter, BitReader, pack_bits, unpack_bits
from repro.utils.stats import Summary, summarize

__all__ = [
    "BitWriter",
    "BitReader",
    "pack_bits",
    "unpack_bits",
    "Summary",
    "summarize",
]
