"""Shared low-level utilities: bit packing, statistics, environment."""

from repro.utils.bits import BitWriter, BitReader, pack_bits, unpack_bits
from repro.utils.env import environment_fingerprint, git_sha
from repro.utils.stats import Summary, summarize

__all__ = [
    "BitWriter",
    "BitReader",
    "pack_bits",
    "unpack_bits",
    "Summary",
    "summarize",
    "environment_fingerprint",
    "git_sha",
]
