"""Environment fingerprinting for measurement artifacts.

Every performance number this repository reports is only meaningful next
to the machine and toolchain that produced it (the paper pins a Xeon
E5-2680 the same way).  This module assembles that context once —
CPU model, core count, Python/NumPy versions, git revision — so the
perf-lab artifacts (:mod:`repro.perflab`), ``repro info --json`` and any
future reporting surface share one fingerprint instead of each
assembling their own.

Everything here is deterministic on a given checkout of a given machine:
two consecutive calls return identical dictionaries, which is what lets
``BENCH_*.json`` artifacts be byte-compared outside their timing fields.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Dict, Optional


def _cpu_model() -> str:
    """Human CPU model string (``/proc/cpuinfo`` on Linux, else platform)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def repo_root() -> str:
    """The repository root inferred from this package's location."""
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/utils -> src/repro -> src -> repo root
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def git_sha(short: bool = False) -> Optional[str]:
    """The checked-out git revision, or ``None`` outside a repository."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd,
            cwd=repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def numpy_version() -> str:
    """The NumPy version string (NumPy is a hard dependency)."""
    import numpy

    return numpy.__version__


def environment_fingerprint() -> Dict[str, object]:
    """One JSON-ready dict describing the measurement environment.

    Stable across consecutive runs on the same checkout and machine; keys
    are sorted by the canonical JSON writer, not here.
    """
    return {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": sys.platform,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy_version(),
        "git_sha": git_sha() or "unknown",
    }
