"""Global Partition Table: flow key -> handling node (paper §3.2).

The GPT is the fully replicated, extremely compact table every ingress node
consults to forward a packet straight to its handling node.  It wraps a
separator — SetSep (the paper's choice) or Othello hashing
(arXiv:1608.05699), selected via :mod:`repro.core.separator` — whose
values are node ids, adding:

* cluster-aware sizing (``value_bits = ceil(log2 num_nodes)``);
* an update interface in terms of (key, node) pairs backed by SetSep group
  deltas (§4.5) — the node that owns a key's block recomputes the group and
  every replica applies the broadcast delta;
* size accounting used by the FIB-scaling analytics (Fig. 11).

One-sided error is inherited from the separator: looking up an unknown key
returns *some* node id.  ScaleBricks relies on the handling node's exact
FIB to reject such packets, so the GPT never needs to say "not found".

The attribute holding the separator is named ``setsep`` for historical
reasons (and API stability); it may be any registered backend.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import hotcache as hotcache_mod
from repro.core import separator as separator_registry
from repro.core.builder import ConstructionStats
from repro.core.hashfamily import Key, canonical_keys
from repro.core.separator import Separator, SeparatorParams
from repro.obs.metrics import MetricsRegistry


class GlobalPartitionTable:
    """Compact key-to-node mapping replicated on every cluster node."""

    def __init__(self, num_nodes: int, setsep: Separator) -> None:
        if num_nodes < 1:
            raise ValueError("cluster must have at least one node")
        max_value = (1 << setsep.params.value_bits) - 1
        if num_nodes - 1 > max_value:
            raise ValueError(
                f"{setsep.params.value_bits}-bit values cannot index "
                f"{num_nodes} nodes"
            )
        self.num_nodes = num_nodes
        self.setsep = setsep
        self.cache: Optional[hotcache_mod.HotKeyCache] = None

    @property
    def backend(self) -> str:
        """Registry name of the separator backend ("setsep", "othello")."""
        return separator_registry.backend_of(self.setsep)

    @classmethod
    def build(
        cls,
        keys: Union[Sequence[Key], np.ndarray],
        nodes: Sequence[int],
        num_nodes: int,
        params: Optional[SeparatorParams] = None,
        workers: int = 1,
        backend: Optional[str] = None,
    ) -> Tuple["GlobalPartitionTable", ConstructionStats]:
        """Build a GPT mapping each key to its handling node id.

        ``backend`` picks the separator implementation (``None`` uses the
        process default from :mod:`repro.core.separator`).  ``params`` of
        the other backend's type are converted, preserving ``value_bits``.
        """
        backend = separator_registry.resolve_backend(backend)
        if params is None:
            params = separator_registry.params_for_cluster(num_nodes, backend)
        nodes_arr = np.asarray(nodes, dtype=np.uint32)
        if len(nodes_arr) and int(nodes_arr.max()) >= num_nodes:
            raise ValueError("node id out of range")
        sep, stats = separator_registry.build(
            keys, nodes_arr, params, backend=backend, workers=workers
        )
        return cls(num_nodes, sep), stats

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: Key) -> int:
        """Handling node for ``key`` (arbitrary node for unknown keys)."""
        if self.cache is not None:
            return int(self.lookup_batch([key])[0])
        return self.setsep.lookup(key) % self.num_nodes

    def lookup_batch(self, keys: Union[Sequence[Key], np.ndarray]) -> np.ndarray:
        """Vectorised handling-node lookup.

        Raw SetSep values are reduced mod ``num_nodes`` so that the
        arbitrary answers produced for unknown keys still name a real node —
        the switch fabric can always deliver the packet somewhere, and the
        receiving node's FIB rejects it (§3.2's one-sided error contract).

        With a hot-key cache attached (:meth:`attach_cache`), the batch is
        probed first and only the missing keys take the separator path;
        cached values are already node ids, so hits skip the reduction too.
        """
        if self.cache is not None:
            return self._lookup_batch_cached(keys)
        values = self.setsep.lookup_batch(keys)
        return self._to_nodes(values)

    def _to_nodes(self, values: np.ndarray) -> np.ndarray:
        if self.num_nodes & (self.num_nodes - 1) == 0:
            return values & np.uint32(self.num_nodes - 1)
        return values % np.uint32(self.num_nodes)

    def _lookup_batch_cached(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> np.ndarray:
        keys_arr = canonical_keys(keys)
        if keys_arr.size == 0:
            return np.zeros(0, dtype=np.uint32)
        values, hit = self.cache.probe(keys_arr)
        if hit.all():
            return values
        miss = ~hit
        miss_keys = keys_arr[miss]
        raw, groups = self.setsep.lookup_batch(miss_keys, with_groups=True)
        nodes = self._to_nodes(raw)
        self.cache.fill(miss_keys, nodes, groups)
        values[miss] = nodes
        return values

    # ------------------------------------------------------------------
    # Hot-key cache (scale tier)
    # ------------------------------------------------------------------

    def attach_cache(
        self,
        capacity: int,
        registry: Optional["MetricsRegistry"] = None,
    ) -> hotcache_mod.HotKeyCache:
        """Put a :class:`repro.core.hotcache.HotKeyCache` in front of lookups.

        Update records flowing through :meth:`rebuild_group` /
        :meth:`apply_delta` invalidate the affected group's entries, so a
        cached replica keeps answering exactly what the separator would.
        """
        self.cache = hotcache_mod.HotKeyCache(capacity, registry=registry)
        return self.cache

    def detach_cache(self) -> None:
        """Remove the hot-key cache (lookups revert to the separator)."""
        self.cache = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def block_of(self, key: Key) -> int:
        """The RIB partition (block id) that owns ``key`` (§4.5)."""
        return self.setsep.block_of(key)

    def rebuild_group(
        self,
        group_id: int,
        keys: Union[Sequence[Key], np.ndarray],
        nodes: Sequence[int],
        removed_keys: Iterable[Key] = (),
    ):
        """Recompute one group after a RIB change; returns the record.

        The record type matches the backend: a ``GroupDelta`` for SetSep,
        an ``OthelloUpdate`` for Othello — both self-framing wire peers.
        """
        record = self.setsep.rebuild_group(group_id, keys, nodes, removed_keys)
        if self.cache is not None:
            self.cache.invalidate_group(hotcache_mod.record_group(record))
        return record

    def apply_delta(self, delta) -> None:
        """Apply a broadcast update record from the owning RIB node."""
        self.setsep.apply_delta(delta)
        if self.cache is not None:
            self.cache.invalidate_group(hotcache_mod.record_group(delta))

    def group_of(self, key: Key) -> int:
        """Global separator group id of ``key``."""
        return self.setsep.group_of(key)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size_bits(self) -> int:
        """Replicated GPT size in bits."""
        return self.setsep.size_bits()

    def size_bytes(self) -> int:
        """Replicated GPT size in bytes (cache-model input)."""
        return self.setsep.size_bytes()

    def bits_per_key(self, num_keys: int) -> float:
        """Measured bits per key."""
        return self.setsep.bits_per_key(num_keys)

    def copy(self) -> "GlobalPartitionTable":
        """Replica for another cluster node."""
        return GlobalPartitionTable(self.num_nodes, self.setsep.copy())

    def __repr__(self) -> str:
        return f"GlobalPartitionTable(nodes={self.num_nodes}, {self.setsep!r})"


def rib_view(
    keys: Union[Sequence[Key], np.ndarray],
    nodes: Sequence[int],
    gpt: GlobalPartitionTable,
) -> Dict[int, Dict[int, int]]:
    """Group the RIB by SetSep group id (helper for update tests).

    Returns ``{group_id: {canonical_key: node}}`` — the per-group contents an
    owning RIB node needs when recomputing a group (backend-agnostic via
    ``groups_of``).
    """
    keys_arr = canonical_keys(keys)
    groups = gpt.setsep.groups_of(keys_arr)
    view: Dict[int, Dict[int, int]] = {}
    for key, group, node in zip(keys_arr, groups, nodes):
        view.setdefault(int(group), {})[int(key)] = int(node)
    return view
