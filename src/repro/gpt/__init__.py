"""The Global Partition Table (paper §3.2)."""

from repro.gpt.gpt import GlobalPartitionTable

__all__ = ["GlobalPartitionTable"]
