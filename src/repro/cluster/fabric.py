"""The cluster interconnect (paper §3.1).

ScaleBricks connects nodes through a hardware switch: one transit between
any pair of nodes, internal bandwidth requirement equal to the external
bandwidth, and latency set by the switch rather than by an indirect server.
The RouteBricks alternative is a server mesh with Valiant load balancing.
This module models both at the level the reproduction needs: delivery
between nodes with per-link byte/packet accounting, so benchmarks can
verify the 2R-vs-R internal bandwidth claim and the hop counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class FabricStats:
    """Aggregate interconnect accounting."""

    packets: int = 0
    bytes: int = 0
    per_link_packets: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, size: int) -> None:
        """Count one transit."""
        self.packets += 1
        self.bytes += size
        link = (src, dst)
        self.per_link_packets[link] = self.per_link_packets.get(link, 0) + 1

    def max_link_packets(self) -> int:
        """Busiest directed link (fabric hot-spot metric)."""
        return max(self.per_link_packets.values(), default=0)


class SwitchFabric:
    """A non-blocking switch connecting ``num_nodes`` cluster nodes.

    Args:
        num_nodes: attached node count.
        transit_latency_us: one switch transit (Mellanox-class hardware,
            §3.1's cost argument).
        seed: randomness for VLB indirect-node selection.
    """

    def __init__(
        self,
        num_nodes: int,
        transit_latency_us: float = 0.6,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("fabric needs at least one node")
        self.num_nodes = num_nodes
        self.transit_latency_us = transit_latency_us
        self.stats = FabricStats()
        self._rng = np.random.default_rng(seed)

    def deliver(self, src: int, dst: int, size: int = 64) -> float:
        """Move one packet from ``src`` to ``dst``; returns transit latency.

        Delivery to self is free (no fabric transit).
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        self.stats.record(src, dst, size)
        return self.transit_latency_us

    def pick_indirect(self, src: int, dst: int) -> int:
        """Choose a VLB indirect node distinct from source and destination.

        With fewer than three nodes there is no usable indirect node and the
        packet goes direct (degenerate VLB).
        """
        self._check(src)
        self._check(dst)
        candidates = [
            n for n in range(self.num_nodes) if n not in (src, dst)
        ]
        if not candidates:
            return dst
        return int(self._rng.choice(candidates))

    def reset_stats(self) -> None:
        """Zero the accounting."""
        self.stats = FabricStats()

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} not attached to this fabric")
