"""The cluster interconnect (paper §3.1).

ScaleBricks connects nodes through a hardware switch: one transit between
any pair of nodes, internal bandwidth requirement equal to the external
bandwidth, and latency set by the switch rather than by an indirect server.
The RouteBricks alternative is a server mesh with Valiant load balancing.
This module models both at the level the reproduction needs: delivery
between nodes with per-link byte/packet accounting, so benchmarks can
verify the 2R-vs-R internal bandwidth claim and the hop counts.

:class:`SwitchFabric` is also the ``crossbar`` backend of the fabric
registry (:mod:`repro.fabric`): alternative topologies — currently the
two-layer leaf/spine fat-tree in :mod:`repro.fabric.fattree` — implement
the same surface, so :class:`~repro.cluster.cluster.Cluster` routes over
either interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

import numpy as np

#: Verdicts a fabric fault hook may return for one transit.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"

#: Latency multiplier applied to a transit the fault hook delays (models
#: the queueing that reorders a packet behind later arrivals).
DELAY_FACTOR = 4.0

FaultHook = Callable[[int, int, int], str]

#: A directed link identifier.  The crossbar's links are node pairs
#: ``(src, dst)``; multi-stage fabrics use tagged tuples such as
#: ``("uplink", leaf, spine)``.  Links are only compared/hashed, never
#: interpreted, by the shared accounting.
Link = Tuple


class FabricLoss(RuntimeError):
    """A transit was dropped in flight by an injected fabric fault.

    Carried out of :meth:`SwitchFabric.deliver` so the caller (e.g. the
    chaos harness) can attribute the loss to the injection rather than to
    the forwarding logic.
    """

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"transit {src} -> {dst} lost to injected fault")
        self.src = src
        self.dst = dst


@dataclass
class FabricStats:
    """Aggregate interconnect accounting (shared by every fabric backend).

    ``packets``/``bytes`` count delivered transits end to end;
    ``switch_hops`` counts switch traversals and ``link_crossings``
    counts directed-link traversals, so multi-stage fabrics can report
    path length without changing the per-packet fields.  On the one-hop
    crossbar every packet is exactly one switch hop over exactly one
    link, so ``packets == switch_hops == link_crossings`` (duplicates
    included).
    """

    packets: int = 0
    bytes: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    degraded: int = 0
    reroutes: int = 0
    capacity_exceeded: int = 0
    switch_hops: int = 0
    link_crossings: int = 0
    per_link_packets: Dict[Link, int] = field(default_factory=dict)

    def record_link(self, link: Link, count: int = 1) -> None:
        """Count ``count`` crossings of one directed link."""
        self.per_link_packets[link] = (
            self.per_link_packets.get(link, 0) + count
        )
        self.link_crossings += count

    def record(self, src: int, dst: int, size: int) -> None:
        """Count one crossbar transit (one switch hop, one link)."""
        self.packets += 1
        self.bytes += size
        self.switch_hops += 1
        self.record_link((src, dst))

    def max_link_packets(self) -> int:
        """Busiest directed link (fabric hot-spot metric)."""
        return max(self.per_link_packets.values(), default=0)

    def busiest_link(self) -> Optional[Tuple[Link, int]]:
        """The busiest directed link and its packet count.

        Ties break on the smallest link id, so the answer is
        deterministic for byte-compared reports.
        """
        if not self.per_link_packets:
            return None
        return max(
            sorted(self.per_link_packets.items()), key=lambda item: item[1]
        )


class SwitchFabric:
    """A non-blocking switch connecting ``num_nodes`` cluster nodes.

    This is the ``crossbar`` backend of the fabric registry
    (:mod:`repro.fabric`): the paper's §3.1 ideal of exactly one switch
    transit between any node pair.

    Args:
        num_nodes: attached node count.
        transit_latency_us: one switch transit (Mellanox-class hardware,
            §3.1's cost argument).
        seed: randomness for VLB indirect-node selection.
    """

    #: Registry name (see :mod:`repro.fabric`).
    backend = "crossbar"

    def __init__(
        self,
        num_nodes: int,
        transit_latency_us: float = 0.6,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("fabric needs at least one node")
        self.num_nodes = num_nodes
        self.transit_latency_us = transit_latency_us
        self.stats = FabricStats()
        self._rng = np.random.default_rng(seed)
        #: Optional fault-injection hook consulted once per transit with
        #: ``(src, dst, size)``; must return one of :data:`DELIVER`,
        #: :data:`DROP`, :data:`DUPLICATE` or :data:`DELAY`.  ``None``
        #: (the default) keeps the fabric lossless.
        self.fault_hook: Optional[FaultHook] = None
        #: Links severed by link-level chaos (see :meth:`fail_link`).
        self._down_links: Set[Link] = set()
        #: Link -> latency factor for degraded (slow but lossless) links.
        self._degraded_links: Dict[Link, float] = {}
        #: Projected ingress load per node: the utilization-aware ingress
        #: policy (:meth:`repro.cluster.cluster.Cluster.pick_ingress`)
        #: notes each pick here so consecutive picks spread before any
        #: real traffic lands.
        self._pending_ingress = np.zeros(num_nodes, dtype=np.float64)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def deliver(self, src: int, dst: int, size: int = 64) -> float:
        """Move one packet from ``src`` to ``dst``; returns transit latency.

        Delivery to self is free (no fabric transit).

        Raises:
            FabricLoss: when an installed :attr:`fault_hook` drops the
                transit, or the ``(src, dst)`` link is down
                (chaos testing; never raised on a healthy fabric).
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        verdict = DELIVER if self.fault_hook is None else self.fault_hook(
            src, dst, size
        )
        if verdict == DROP:
            self.stats.dropped += 1
            raise FabricLoss(src, dst)
        link = (src, dst)
        if link in self._down_links:
            # The crossbar has a single path per pair: a severed link
            # has no reroute, the transit is lost in flight.
            self.stats.dropped += 1
            raise FabricLoss(src, dst)
        self.stats.record(src, dst, size)
        latency = self.transit_latency_us
        factor = self._degraded_links.get(link)
        if factor is not None:
            self.stats.degraded += 1
            latency *= factor
        if verdict == DUPLICATE:
            # The copy travels in parallel: double the accounting, same
            # arrival latency for the first copy.
            self.stats.record(src, dst, size)
            self.stats.duplicated += 1
            return latency
        if verdict == DELAY:
            self.stats.delayed += 1
            return latency * DELAY_FACTOR
        return latency

    def deliver_batch(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        size: int = 64,
    ) -> np.ndarray:
        """Move many packets at once; returns per-packet transit latencies.

        Equivalent to calling :meth:`deliver` element-wise (and delegates
        to it when a :attr:`fault_hook` or link fault is active, so fault
        verdicts keep their per-transit ordering), but accounts lossless
        traffic with a handful of array reductions instead of a Python
        call per packet.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.shape != dsts.shape:
            raise ValueError("srcs and dsts must have equal length")
        if srcs.size == 0:
            return np.zeros(0, dtype=np.float64)
        if srcs.size and (
            srcs.min() < 0
            or dsts.min() < 0
            or srcs.max() >= self.num_nodes
            or dsts.max() >= self.num_nodes
        ):
            bad = srcs[(srcs < 0) | (srcs >= self.num_nodes)]
            node = int(bad[0]) if bad.size else int(
                dsts[(dsts < 0) | (dsts >= self.num_nodes)][0]
            )
            raise ValueError(f"node {node} not attached to this fabric")
        if self.fault_hook is not None or self.has_link_faults():
            return np.asarray(
                [
                    self.deliver(int(s), int(d), size)
                    for s, d in zip(srcs, dsts)
                ],
                dtype=np.float64,
            )
        remote = srcs != dsts
        count = int(remote.sum())
        if count:
            self.stats.packets += count
            self.stats.bytes += size * count
            self.stats.switch_hops += count
            links, link_counts = np.unique(
                srcs[remote] * self.num_nodes + dsts[remote],
                return_counts=True,
            )
            link_srcs, link_dsts = np.divmod(links, self.num_nodes)
            per_link = self.stats.per_link_packets
            for s, d, c in zip(
                link_srcs.tolist(), link_dsts.tolist(), link_counts.tolist()
            ):
                per_link[(s, d)] = per_link.get((s, d), 0) + c
            self.stats.link_crossings += count
        return np.where(remote, self.transit_latency_us, 0.0)

    def pick_indirect(self, src: int, dst: int) -> int:
        """Choose a VLB indirect node distinct from source and destination.

        With fewer than three nodes there is no usable indirect node and the
        packet goes direct (degenerate VLB).
        """
        self._check(src)
        self._check(dst)
        candidates = [
            n for n in range(self.num_nodes) if n not in (src, dst)
        ]
        if not candidates:
            return dst
        return int(self._rng.choice(candidates))

    # ------------------------------------------------------------------
    # Link-level faults (chaos: LINK_DOWN / LINK_DEGRADED / LINK_HEAL)
    # ------------------------------------------------------------------

    def links(self) -> Tuple[Link, ...]:
        """Every directed link, in deterministic order."""
        return tuple(
            (a, b)
            for a in range(self.num_nodes)
            for b in range(self.num_nodes)
            if a != b
        )

    def pick_fault_link(self, rng: np.random.Generator) -> Optional[Link]:
        """A seeded victim link for link-level chaos (``None`` if n < 2)."""
        if self.num_nodes < 2:
            return None
        src = int(rng.integers(self.num_nodes))
        dst = int(rng.integers(self.num_nodes - 1))
        if dst >= src:
            dst += 1
        return (src, dst)

    def fail_link(self, link: Link) -> None:
        """Sever one directed link: transits over it are lost in flight."""
        self._down_links.add(tuple(link))

    def degrade_link(self, link: Link, factor: float = DELAY_FACTOR) -> None:
        """Slow one directed link down by ``factor`` (lossless)."""
        if factor <= 0:
            raise ValueError("degrade factor must be positive")
        self._degraded_links[tuple(link)] = float(factor)

    def heal_links(self) -> None:
        """Restore every failed and degraded link."""
        self._down_links.clear()
        self._degraded_links.clear()

    def has_link_faults(self) -> bool:
        """Whether any link is currently down or degraded."""
        return bool(self._down_links or self._degraded_links)

    def down_links(self) -> Tuple[Link, ...]:
        """The currently severed links, in deterministic order."""
        return tuple(sorted(self._down_links))

    # ------------------------------------------------------------------
    # Ingress steering (utilization-aware policy support)
    # ------------------------------------------------------------------

    def ingress_costs(self) -> np.ndarray:
        """Per-node cost of accepting the next external packet.

        The crossbar has no shared uplinks, so the cost is simply each
        node's outgoing fabric load (observed plus projected): the
        utilization-aware ingress policy then levels sender-side load.
        Nodes whose egress links are all severed cost ``inf``.
        """
        costs = self._pending_ingress.copy()
        for (src, _dst), count in self.stats.per_link_packets.items():
            costs[src] += count
        for (src, _dst) in self._down_links:
            costs[src] += 1.0  # a severed egress narrows the node's paths
        return costs

    def note_ingress(self, node: int) -> None:
        """Project one ingress pick onto ``node`` (policy feedback)."""
        self._check(node)
        self._pending_ingress[node] += 1.0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def verify_accounting(self) -> bool:
        """Check the crossbar's conservation invariants.

        One switch hop and one link crossing per recorded packet
        (duplicates included), and the per-link map sums to the crossing
        total — the "no accounting leaks" gate the chaos drill asserts.
        """
        s = self.stats
        recorded = s.packets  # duplicates already double-counted
        return (
            sum(s.per_link_packets.values()) == s.link_crossings
            and s.link_crossings == recorded
            and s.switch_hops == recorded
        )

    def reset_stats(self) -> None:
        """Zero the accounting (fault state is kept; see heal_links)."""
        self.stats = FabricStats()
        self._pending_ingress[:] = 0.0

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} not attached to this fabric")
