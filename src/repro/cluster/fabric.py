"""The cluster interconnect (paper §3.1).

ScaleBricks connects nodes through a hardware switch: one transit between
any pair of nodes, internal bandwidth requirement equal to the external
bandwidth, and latency set by the switch rather than by an indirect server.
The RouteBricks alternative is a server mesh with Valiant load balancing.
This module models both at the level the reproduction needs: delivery
between nodes with per-link byte/packet accounting, so benchmarks can
verify the 2R-vs-R internal bandwidth claim and the hop counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Verdicts a fabric fault hook may return for one transit.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"

#: Latency multiplier applied to a transit the fault hook delays (models
#: the queueing that reorders a packet behind later arrivals).
DELAY_FACTOR = 4.0

FaultHook = Callable[[int, int, int], str]


class FabricLoss(RuntimeError):
    """A transit was dropped in flight by an injected fabric fault.

    Carried out of :meth:`SwitchFabric.deliver` so the caller (e.g. the
    chaos harness) can attribute the loss to the injection rather than to
    the forwarding logic.
    """

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"transit {src} -> {dst} lost to injected fault")
        self.src = src
        self.dst = dst


@dataclass
class FabricStats:
    """Aggregate interconnect accounting."""

    packets: int = 0
    bytes: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    per_link_packets: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, size: int) -> None:
        """Count one transit."""
        self.packets += 1
        self.bytes += size
        link = (src, dst)
        self.per_link_packets[link] = self.per_link_packets.get(link, 0) + 1

    def max_link_packets(self) -> int:
        """Busiest directed link (fabric hot-spot metric)."""
        return max(self.per_link_packets.values(), default=0)


class SwitchFabric:
    """A non-blocking switch connecting ``num_nodes`` cluster nodes.

    Args:
        num_nodes: attached node count.
        transit_latency_us: one switch transit (Mellanox-class hardware,
            §3.1's cost argument).
        seed: randomness for VLB indirect-node selection.
    """

    def __init__(
        self,
        num_nodes: int,
        transit_latency_us: float = 0.6,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("fabric needs at least one node")
        self.num_nodes = num_nodes
        self.transit_latency_us = transit_latency_us
        self.stats = FabricStats()
        self._rng = np.random.default_rng(seed)
        #: Optional fault-injection hook consulted once per transit with
        #: ``(src, dst, size)``; must return one of :data:`DELIVER`,
        #: :data:`DROP`, :data:`DUPLICATE` or :data:`DELAY`.  ``None``
        #: (the default) keeps the fabric lossless.
        self.fault_hook: Optional[FaultHook] = None

    def deliver(self, src: int, dst: int, size: int = 64) -> float:
        """Move one packet from ``src`` to ``dst``; returns transit latency.

        Delivery to self is free (no fabric transit).

        Raises:
            FabricLoss: when an installed :attr:`fault_hook` drops the
                transit (chaos testing; never raised without a hook).
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        verdict = DELIVER if self.fault_hook is None else self.fault_hook(
            src, dst, size
        )
        if verdict == DROP:
            self.stats.dropped += 1
            raise FabricLoss(src, dst)
        self.stats.record(src, dst, size)
        if verdict == DUPLICATE:
            # The copy travels in parallel: double the accounting, same
            # arrival latency for the first copy.
            self.stats.record(src, dst, size)
            self.stats.duplicated += 1
            return self.transit_latency_us
        if verdict == DELAY:
            self.stats.delayed += 1
            return self.transit_latency_us * DELAY_FACTOR
        return self.transit_latency_us

    def deliver_batch(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        size: int = 64,
    ) -> np.ndarray:
        """Move many packets at once; returns per-packet transit latencies.

        Equivalent to calling :meth:`deliver` element-wise (and delegates to
        it when a :attr:`fault_hook` is installed, so fault verdicts keep
        their per-transit ordering), but accounts lossless traffic with a
        handful of array reductions instead of a Python call per packet.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.shape != dsts.shape:
            raise ValueError("srcs and dsts must have equal length")
        if srcs.size == 0:
            return np.zeros(0, dtype=np.float64)
        if srcs.size and (
            srcs.min() < 0
            or dsts.min() < 0
            or srcs.max() >= self.num_nodes
            or dsts.max() >= self.num_nodes
        ):
            bad = srcs[(srcs < 0) | (srcs >= self.num_nodes)]
            node = int(bad[0]) if bad.size else int(
                dsts[(dsts < 0) | (dsts >= self.num_nodes)][0]
            )
            raise ValueError(f"node {node} not attached to this fabric")
        if self.fault_hook is not None:
            return np.asarray(
                [
                    self.deliver(int(s), int(d), size)
                    for s, d in zip(srcs, dsts)
                ],
                dtype=np.float64,
            )
        remote = srcs != dsts
        count = int(remote.sum())
        if count:
            self.stats.packets += count
            self.stats.bytes += size * count
            links, link_counts = np.unique(
                srcs[remote] * self.num_nodes + dsts[remote],
                return_counts=True,
            )
            per_link = self.stats.per_link_packets
            for link, c in zip(links, link_counts):
                pair = (int(link) // self.num_nodes, int(link) % self.num_nodes)
                per_link[pair] = per_link.get(pair, 0) + int(c)
        return np.where(remote, self.transit_latency_us, 0.0)

    def pick_indirect(self, src: int, dst: int) -> int:
        """Choose a VLB indirect node distinct from source and destination.

        With fewer than three nodes there is no usable indirect node and the
        packet goes direct (degenerate VLB).
        """
        self._check(src)
        self._check(dst)
        candidates = [
            n for n in range(self.num_nodes) if n not in (src, dst)
        ]
        if not candidates:
            return dst
        return int(self._rng.choice(candidates))

    def reset_stats(self) -> None:
        """Zero the accounting."""
        self.stats = FabricStats()

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} not attached to this fabric")
