"""Cluster membership changes: growing and shrinking (paper §6.3).

Figure 11 is about what happens *when you add nodes*; this module makes
that an executable operation rather than a formula.  Growing or shrinking
a ScaleBricks cluster is a structural event:

* the GPT's value width may change (``ceil(log2 N)`` bits), which means a
  full SetSep rebuild — updates-by-delta only cover same-shape changes;
* flows handled by removed nodes must be re-pinned first;
* the RIB re-partitions across the new member set.

``resize`` performs the whole transition from the authoritative RIB and
returns a fresh cluster plus a report of what moved, preserving every
surviving flow's (handling node, value) mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.architectures import Architecture
from repro.cluster.cluster import Cluster, FibFactory
from repro.core import separator as separator_registry


@dataclass(frozen=True)
class ResizeReport:
    """What a membership change did."""

    old_nodes: int
    new_nodes: int
    total_flows: int
    repinned_flows: int
    old_value_bits: int
    new_value_bits: int

    @property
    def gpt_rebuilt_wider(self) -> bool:
        """Whether the value width changed (the §6.3 log2 N term)."""
        return self.old_value_bits != self.new_value_bits


def resize(
    cluster: Cluster,
    new_num_nodes: int,
    repin: Optional[Callable[[int, int], int]] = None,
    fib_factory: Optional[FibFactory] = None,
) -> "tuple[Cluster, ResizeReport]":
    """Rebuild a cluster with a different node count from its RIB.

    Args:
        cluster: the current cluster (its RIB is authoritative).
        new_num_nodes: target size.
        repin: ``(key, old_node) -> new_node`` for flows whose handling
            node no longer exists; defaults to uniform re-spread over the
            surviving nodes by key hash.
        fib_factory: optional FIB constructor for the new cluster.

    Returns:
        ``(new_cluster, report)``.  Flows pinned to surviving nodes keep
        their handling node and value verbatim.
    """
    if new_num_nodes < 1:
        raise ValueError("new_num_nodes must be positive")
    old_num_nodes = len(cluster.nodes)
    entries = list(cluster.rib.entries())

    def default_repin(key: int, _old: int) -> int:
        return key % new_num_nodes

    repin = repin or default_repin

    keys: List[int] = []
    nodes: List[int] = []
    values: List[int] = []
    repinned = 0
    for entry in entries:
        node = entry.node
        if node >= new_num_nodes:
            node = repin(entry.key, entry.node)
            if not 0 <= node < new_num_nodes:
                raise ValueError(
                    f"repin returned out-of-range node {node}"
                )
            repinned += 1
        keys.append(entry.key)
        nodes.append(node)
        values.append(entry.value)

    old_bits = _value_bits(cluster, old_num_nodes)
    gpt_params = None
    backend = None
    if cluster.architecture.uses_gpt:
        # Preserve the running cluster's separator backend across resizes.
        if cluster.nodes[0].gpt is not None:
            backend = separator_registry.backend_of(cluster.nodes[0].gpt.setsep)
        gpt_params = separator_registry.params_for_cluster(
            new_num_nodes, backend
        )

    new_cluster = Cluster.build(
        cluster.architecture,
        new_num_nodes,
        np.asarray(keys, dtype=np.uint64),
        nodes,
        values,
        fib_factory=fib_factory,
        gpt_params=gpt_params,
        backend=backend,
    )
    report = ResizeReport(
        old_nodes=old_num_nodes,
        new_nodes=new_num_nodes,
        total_flows=len(entries),
        repinned_flows=repinned,
        old_value_bits=old_bits,
        new_value_bits=_value_bits(new_cluster, new_num_nodes),
    )
    return new_cluster, report


def _value_bits(cluster: Cluster, num_nodes: int) -> int:
    """The GPT's value width (or the would-be width for non-GPT designs)."""
    if cluster.architecture.uses_gpt and cluster.nodes[0].gpt is not None:
        return cluster.nodes[0].gpt.setsep.params.value_bits
    return max(1, (num_nodes - 1).bit_length())


def capacity_after_resize(
    memory_bits: float, old_nodes: int, new_nodes: int, entry_bits: int = 64
) -> "tuple[float, float]":
    """Figure 11 deltas for an operator deciding whether to grow.

    Returns (old capacity, new capacity) in total FIB entries.  Growth is
    not always positive: crossing a power-of-two boundary widens the GPT
    and can *shrink* capacity (§6.3's non-monotonicity).
    """
    from repro.model.scaling import entries_scalebricks

    return (
        entries_scalebricks(memory_bits, old_nodes, entry_bits),
        entries_scalebricks(memory_bits, new_nodes, entry_bits),
    )
