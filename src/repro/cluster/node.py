"""A cluster node: Packet Forwarding Engine state and counters (§2, §3.2).

Each node runs a PFE (the component this paper optimises) in front of a
Data Plane Engine.  Depending on the cluster's FIB architecture the node
holds a full FIB replica, a hash-partitioned slice, or — under
ScaleBricks — a GPT replica plus the partial FIB of the flows it handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.cluster.architectures import Architecture
from repro.core.setsep import Key
from repro.gpt.gpt import GlobalPartitionTable
from repro.hashtables.interface import FibTable


@dataclass
class NodeCounters:
    """Per-node PFE accounting."""

    external_rx: int = 0
    internal_rx: int = 0
    gpt_lookups: int = 0
    fib_lookups: int = 0
    fib_misses: int = 0
    handled: int = 0
    forwarded: int = 0
    dropped: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        for name in vars(self):
            setattr(self, name, 0)


class ClusterNode:
    """One node's forwarding state.

    Args:
        node_id: position in the cluster.
        architecture: the cluster-wide FIB architecture.
        fib: this node's exact FIB table (contents depend on the
            architecture: full replica, hash slice, or handling-node slice).
        gpt: the replicated Global Partition Table (ScaleBricks only).
    """

    def __init__(
        self,
        node_id: int,
        architecture: Architecture,
        fib: FibTable,
        gpt: Optional[GlobalPartitionTable] = None,
    ) -> None:
        if architecture.uses_gpt and gpt is None:
            raise ValueError("ScaleBricks nodes need a GPT replica")
        self.node_id = node_id
        self.architecture = architecture
        self.fib = fib
        self.gpt = gpt
        self.counters = NodeCounters()

    # ------------------------------------------------------------------
    # FIB maintenance
    # ------------------------------------------------------------------

    def install_route(self, key: Key, node: int, value: int) -> None:
        """Install a FIB entry on this node.

        Under full duplication / VLB the entry carries the handling node and
        value; under ScaleBricks only the value is needed (this node *is*
        the handling node); the hash-partitioned slice stores both.
        """
        if self.architecture is Architecture.SCALEBRICKS:
            self.fib.insert(key, value)
        else:
            self.fib.insert(key, (node, value))

    def remove_route(self, key: Key) -> bool:
        """Drop a FIB entry; returns whether it existed."""
        return self.fib.delete(key)

    # ------------------------------------------------------------------
    # Lookup paths
    # ------------------------------------------------------------------

    def gpt_lookup(self, key: Key) -> int:
        """ScaleBricks ingress path: compact GPT, never says "not found"."""
        if self.gpt is None:
            raise RuntimeError("node has no GPT replica")
        self.counters.gpt_lookups += 1
        return self.gpt.lookup(key)

    def fib_lookup(self, key: Key) -> Optional[object]:
        """Exact FIB lookup with miss accounting."""
        self.counters.fib_lookups += 1
        found = self.fib.lookup(key)
        if found is None:
            self.counters.fib_misses += 1
        return found

    def handle(self, key: Key) -> Optional[int]:
        """Terminal processing at the handling node.

        Returns the application value (e.g. the flow's TEID) or ``None``
        when the key is unknown here — the exact-FIB rejection that makes
        the GPT's one-sided error safe (§3.2).
        """
        found = self.fib_lookup(key)
        if found is None:
            self.counters.dropped += 1
            return None
        self.counters.handled += 1
        if self.architecture is Architecture.SCALEBRICKS:
            return found  # type: ignore[return-value]
        _, value = found  # type: ignore[misc]
        return value

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    def fib_bytes(self) -> int:
        """Exact-FIB footprint on this node."""
        return self.fib.size_bytes()

    def gpt_bytes(self) -> int:
        """GPT replica footprint (zero when the design has none)."""
        return self.gpt.size_bytes() if self.gpt is not None else 0

    def total_table_bytes(self) -> int:
        """All forwarding state on this node."""
        return self.fib_bytes() + self.gpt_bytes()

    def __repr__(self) -> str:
        return (
            f"ClusterNode(id={self.node_id}, "
            f"arch={self.architecture.value}, fib_entries={len(self.fib)})"
        )
