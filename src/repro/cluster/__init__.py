"""Cluster substrate: nodes, switch fabric, FIB architectures, RIB, updates.

This package is the *functional* half of the reproduction (packets really
move between simulated nodes, misroutes really get dropped by the handling
node's exact FIB); the *performance* half lives in :mod:`repro.model`.
"""

from repro.cluster.architectures import Architecture
from repro.cluster.fabric import FabricLoss, FabricStats, SwitchFabric
from repro.cluster.node import ClusterNode, NodeCounters
from repro.cluster.cluster import Cluster, INGRESS_POLICIES, RouteResult
from repro.cluster.rib import RoutingInformationBase, RibEntry
from repro.cluster.update import UpdateEngine, UpdateStats
from repro.cluster.failover import FailoverManager, FailureImpact
from repro.cluster.mesh import MeshFabric
from repro.cluster.membership import ResizeReport, resize

__all__ = [
    "FailoverManager",
    "FailureImpact",
    "MeshFabric",
    "ResizeReport",
    "resize",
    "Architecture",
    "SwitchFabric",
    "FabricLoss",
    "FabricStats",
    "INGRESS_POLICIES",
    "ClusterNode",
    "NodeCounters",
    "Cluster",
    "RouteResult",
    "RoutingInformationBase",
    "RibEntry",
    "UpdateEngine",
    "UpdateStats",
]
