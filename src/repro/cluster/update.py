"""The scalable RIB update protocol (paper §3.2, §4.5, §6.2).

Updates are sent to the key's RIB partition owner.  The owner:

1. updates its RIB slice (the authoritative record);
2. pushes the new/removed FIB entry to the key's handling node;
3. recomputes the key's SetSep group on its local GPT replica and
   broadcasts the resulting delta — tens of bits — which every peer
   applies with a memory copy.

Because ownership is spread across nodes and a delta application is
trivial, the aggregate update rate scales with the cluster size: the §6.2
measurement (60 K updates/s/core -> 240 K/s on 4 nodes) is the per-owner
recompute rate times the node count, which ``bench_update_rate`` measures
on this implementation.

Under full duplication the same update must modify the FIB on *every*
node, so the aggregate rate stays at a single node's — the contrast
``UpdateEngine`` exposes through its message accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.architectures import Architecture
from repro.cluster.cluster import Cluster
from repro.core import hashfamily
from repro.obs.metrics import MetricsRegistry, resolve_registry

#: Broadcast-delta size buckets (bits).  The paper's §4.5 claim is "tens
#: of bits" per delta, so the resolution is finest there.
DELTA_BITS_BUCKETS = (16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

#: Verdicts a delta interceptor may return for one (owner, peer) ship.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"

DeltaInterceptor = Callable[[int, int], str]


@dataclass
class UpdateStats:
    """Protocol accounting across a batch of updates."""

    updates: int = 0
    fib_messages: int = 0
    delta_broadcasts: int = 0
    broadcast_bits: int = 0
    groups_rebuilt: int = 0
    rebuild_iterations: int = 0
    deltas_dropped: int = 0
    deltas_duplicated: int = 0
    deltas_delayed: int = 0
    per_owner_updates: Dict[int, int] = field(default_factory=dict)

    def record_owner(self, owner: int) -> None:
        """Attribute one update to its RIB owner."""
        self.per_owner_updates[owner] = self.per_owner_updates.get(owner, 0) + 1

    @property
    def mean_delta_bits(self) -> float:
        """Average broadcast delta size (the paper's "tens of bits")."""
        if not self.delta_broadcasts:
            return 0.0
        return self.broadcast_bits / self.delta_broadcasts


class UpdateEngine:
    """Drives inserts/changes/removals through the cluster's update path.

    Args:
        cluster: the cluster whose RIB/FIB/GPT the engine mutates.
        registry: metrics registry; defaults to the *cluster's* registry,
            so an instrumented cluster gets an instrumented update path
            for free.  Records update counts, FIB messages, broadcast
            delta sizes (``update.delta_bits``) and per-update apply
            latency (``span.update.apply_us``).
    """

    def __init__(
        self, cluster: Cluster, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.cluster = cluster
        self.stats = UpdateStats()
        #: Optional fault-injection hook consulted once per delta ship
        #: with ``(owner_id, peer_id)``; must return one of
        #: :data:`DELIVER`, :data:`DROP`, :data:`DUPLICATE` or
        #: :data:`DELAY`.  ``None`` (the default) ships every delta.
        self.delta_interceptor: Optional[DeltaInterceptor] = None
        self._delayed_deltas: List[Tuple[int, type, bytes]] = []
        self.bind_registry(
            registry if registry is not None else cluster.registry
        )

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry (``None`` selects the null registry)."""
        self.registry = resolve_registry(registry)
        self._m_updates = self.registry.counter(
            "update.updates", "RIB updates driven through the protocol"
        )
        self._m_fib_messages = self.registry.counter(
            "update.fib_messages", "point-to-point FIB install/remove messages"
        )
        self._m_broadcasts = self.registry.counter(
            "update.delta_broadcasts", "GPT delta messages shipped to peers"
        )
        self._h_delta_bits = self.registry.histogram(
            "update.delta_bits",
            buckets=DELTA_BITS_BUCKETS,
            description="encoded size of each broadcast GPT delta",
        )
        self._m_deltas_dropped = self.registry.counter(
            "update.deltas_dropped", "GPT deltas lost to injected faults"
        )
        self._m_deltas_duplicated = self.registry.counter(
            "update.deltas_duplicated",
            "GPT deltas applied twice by injected faults",
        )
        self._m_deltas_delayed = self.registry.counter(
            "update.deltas_delayed",
            "GPT deltas held back for a delayed rebroadcast",
        )

    def _count_fib_message(self) -> None:
        self.stats.fib_messages += 1
        self._m_fib_messages.inc()

    # ------------------------------------------------------------------
    # ScaleBricks path
    # ------------------------------------------------------------------

    def insert_flow(self, key, node: int, value: int) -> None:
        """Add or change a flow's (handling node, value) mapping."""
        with self.registry.span("update"):
            self._insert_flow(key, node, value)

    def _insert_flow(self, key, node: int, value: int) -> None:
        cluster = self.cluster
        ckey = hashfamily.canonical_key(key)
        previous = cluster.rib.get(ckey)
        owner = cluster.rib.owner_of_key(ckey)
        self.stats.updates += 1
        self._m_updates.inc()
        self.stats.record_owner(owner)
        cluster.rib.insert(ckey, node, value)

        if cluster.architecture is Architecture.SCALEBRICKS:
            # FIB entry moves to (or is updated at) the handling node.
            if previous is not None and previous.node != node:
                cluster.nodes[previous.node].remove_route(ckey)
                self._count_fib_message()
            cluster.nodes[node].install_route(ckey, node, value)
            self._count_fib_message()
            self._rebroadcast_group(ckey)
        elif cluster.architecture is Architecture.HASH_PARTITION:
            lookup_node = cluster.lookup_node_of(ckey)
            for target in {lookup_node, node}:
                cluster.nodes[target].install_route(ckey, node, value)
                self._count_fib_message()
            if previous is not None and previous.node not in (lookup_node, node):
                cluster.nodes[previous.node].remove_route(ckey)
                self._count_fib_message()
        else:
            # Full duplication / VLB: every node must apply the update —
            # the aggregate update rate stays at a single server's (§3.2).
            for cluster_node in cluster.nodes:
                cluster_node.install_route(ckey, node, value)
                self._count_fib_message()

    def remove_flow(self, key) -> bool:
        """Remove a flow entirely; returns whether it existed."""
        with self.registry.span("update"):
            return self._remove_flow(key)

    def _remove_flow(self, key) -> bool:
        cluster = self.cluster
        ckey = hashfamily.canonical_key(key)
        previous = cluster.rib.remove(ckey)
        if previous is None:
            return False
        owner = cluster.rib.owner_of_key(ckey)
        self.stats.updates += 1
        self._m_updates.inc()
        self.stats.record_owner(owner)

        if cluster.architecture is Architecture.SCALEBRICKS:
            cluster.nodes[previous.node].remove_route(ckey)
            self._count_fib_message()
            self._rebroadcast_group(ckey, removed_key=ckey)
        elif cluster.architecture is Architecture.HASH_PARTITION:
            lookup_node = cluster.lookup_node_of(ckey)
            for target in {lookup_node, previous.node}:
                cluster.nodes[target].remove_route(ckey)
                self._count_fib_message()
        else:
            for cluster_node in cluster.nodes:
                cluster_node.remove_route(ckey)
                self._count_fib_message()
        return True

    # ------------------------------------------------------------------
    # GPT delta broadcast
    # ------------------------------------------------------------------

    def _rebroadcast_group(self, ckey: int, removed_key: Optional[int] = None) -> None:
        """Owner recomputes the key's group; peers apply the delta."""
        cluster = self.cluster
        owner_id = cluster.rib.owner_of_key(ckey)
        owner = cluster.nodes[owner_id]
        assert owner.gpt is not None
        group = owner.gpt.group_of(ckey)
        removed = (removed_key,) if removed_key is not None else ()
        # Incremental backends (Othello) skip the O(group) contents
        # enumeration once their owner-side graph is warm: the changed
        # key alone produces the byte-identical record.
        needs_full = getattr(owner.gpt.setsep, "needs_full_contents", None)
        if needs_full is None or needs_full(group):
            keys, nodes = cluster.rib.group_contents(
                group, owner.gpt.setsep
            )
        elif removed_key is not None:
            keys, nodes = [], []
        else:
            keys, nodes = [ckey], [cluster.rib.get(ckey).node]
        with self.registry.span("rebuild"):
            delta = owner.gpt.rebuild_group(
                group, keys, nodes, removed_keys=removed
            )
        self.stats.groups_rebuilt += 1
        self._broadcast(delta, owner_id)

    def _broadcast(self, delta, owner_id: int) -> None:
        """Ship the record to every other replica (a memory copy each).

        Backend-generic: ``delta`` is a ``GroupDelta`` (SetSep) or an
        ``OthelloUpdate`` — both self-framing, so peers decode from the
        wire bytes alone.

        An installed :attr:`delta_interceptor` may drop a peer's copy
        (leaving that replica stale until a later rebroadcast), apply it
        twice (exercising delta idempotence) or hold it back until
        :meth:`flush_delayed_deltas` — the §3.4 one-sided-error windows a
        production cluster actually experiences.
        """
        params = self.cluster.nodes[owner_id].gpt.setsep.params
        record_type = type(delta)
        wire = delta.wire_bytes(params)
        delta_bits = delta.size_bits(params)
        for node in self.cluster.nodes:
            if node.node_id == owner_id or node.gpt is None:
                continue
            verdict = DELIVER
            if self.delta_interceptor is not None:
                verdict = self.delta_interceptor(owner_id, node.node_id)
            if verdict == DROP:
                self.stats.deltas_dropped += 1
                self._m_deltas_dropped.inc()
                continue
            if verdict == DELAY:
                self._delayed_deltas.append((node.node_id, record_type, wire))
                self.stats.deltas_delayed += 1
                self._m_deltas_delayed.inc()
                continue
            node.gpt.apply_delta(record_type.from_wire_bytes(wire)[0])
            if verdict == DUPLICATE:
                node.gpt.apply_delta(record_type.from_wire_bytes(wire)[0])
                self.stats.deltas_duplicated += 1
                self._m_deltas_duplicated.inc()
            self.stats.delta_broadcasts += 1
            self._m_broadcasts.inc()
            self._h_delta_bits.observe(delta_bits)
            self.stats.broadcast_bits += delta_bits

    def flush_delayed_deltas(self) -> int:
        """Deliver every delta an interceptor held back, in ship order.

        Returns the number of deltas applied.  Flushing in first-in
        first-out order preserves the per-group last-writer-wins
        convergence the broadcast protocol relies on.
        """
        pending, self._delayed_deltas = self._delayed_deltas, []
        for peer_id, record_type, wire in pending:
            node = self.cluster.nodes[peer_id]
            if node.gpt is None:
                continue
            node.gpt.apply_delta(record_type.from_wire_bytes(wire)[0])
            self.stats.delta_broadcasts += 1
            self._m_broadcasts.inc()
        return len(pending)
