"""The cluster: packet routing under each FIB architecture (paper §3).

``Cluster.build`` populates every node's tables for the chosen architecture
from one authoritative flow list, and ``route`` walks a packet's key through
the exact path Figure 2 draws — including the failure modes: hash-partition
lookups rejecting unknown keys at the indirect node, ScaleBricks delivering
unknown keys to an arbitrary node whose exact FIB then drops them.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.architectures import Architecture
from repro.cluster.fabric import SwitchFabric
from repro.cluster.node import ClusterNode
from repro.cluster.rib import RoutingInformationBase
from repro.core import hashfamily, twolevel
from repro.core import separator as separator_registry
from repro.core.separator import SeparatorParams
from repro.core.setsep import Key
from repro.gpt.gpt import GlobalPartitionTable
from repro.hashtables.cuckoo import CuckooHashTable
from repro.hashtables.interface import FibTable
from repro.obs.metrics import MetricsRegistry, resolve_registry

FibFactory = Callable[[int], FibTable]

#: Ingress selection policies for :meth:`Cluster.pick_ingress`.
INGRESS_POLICIES = ("random", "roundrobin", "utilization")


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one key through the cluster."""

    key: int
    ingress: int
    path: Tuple[int, ...]
    internal_hops: int
    latency_us: float
    handled_by: Optional[int]
    value: Optional[int]
    dropped: bool
    reason: str

    @property
    def delivered(self) -> bool:
        """Whether the packet reached a node that accepted it."""
        return not self.dropped


class RouteBatchResult(SequenceABC):
    """Typed outcome of :meth:`Cluster.route_batch`.

    Behaves as a sequence of :class:`RouteResult` (so per-packet code and
    older call sites keep working) while exposing the batch as NumPy
    arrays for vectorised analysis:

    Attributes:
        results: the per-packet :class:`RouteResult` tuple.
        egress_nodes: node that accepted each packet (``-1`` if dropped).
        hop_counts: internal fabric transits per packet.
        indirections: whether the packet crossed an intermediate node
            (hash-partition lookup detour / VLB bounce).
        dropped: per-packet drop flag.
        values: application value per packet (``-1`` if dropped).
        latencies_us: modelled fabric latency per packet.
    """

    __slots__ = (
        "results", "egress_nodes", "hop_counts", "indirections",
        "dropped", "values", "latencies_us",
    )

    def __init__(self, results: Sequence[RouteResult]) -> None:
        self.results: Tuple[RouteResult, ...] = tuple(results)
        n = len(self.results)
        self.egress_nodes = np.fromiter(
            (-1 if r.handled_by is None else r.handled_by
             for r in self.results),
            dtype=np.int64, count=n,
        )
        self.hop_counts = np.fromiter(
            (r.internal_hops for r in self.results), dtype=np.int64, count=n
        )
        self.indirections = self.hop_counts >= 2
        self.dropped = np.fromiter(
            (r.dropped for r in self.results), dtype=bool, count=n
        )
        self.values = np.fromiter(
            (-1 if r.value is None else r.value for r in self.results),
            dtype=np.int64, count=n,
        )
        self.latencies_us = np.fromiter(
            (r.latency_us for r in self.results), dtype=np.float64, count=n
        )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RouteBatchResult(self.results[index])
        return self.results[index]

    @property
    def delivered_count(self) -> int:
        """Packets that reached a node that accepted them."""
        return int((~self.dropped).sum())

    @property
    def dropped_count(self) -> int:
        """Packets rejected by the terminal node's exact FIB."""
        return int(self.dropped.sum())

    @property
    def mean_hops(self) -> float:
        """Average internal fabric transits per packet."""
        if not len(self.results):
            return 0.0
        return float(self.hop_counts.mean())

    def __repr__(self) -> str:
        return (
            f"RouteBatchResult(n={len(self.results)}, "
            f"delivered={self.delivered_count}, "
            f"mean_hops={self.mean_hops:.2f})"
        )


class Cluster:
    """A switch- (or mesh-) connected cluster of forwarding nodes."""

    def __init__(
        self,
        architecture: Architecture,
        nodes: List[ClusterNode],
        fabric: SwitchFabric,
        rib: RoutingInformationBase,
        gpt_params: Optional[SeparatorParams] = None,
        registry: Optional[MetricsRegistry] = None,
        ingress_policy: str = "random",
    ) -> None:
        if ingress_policy not in INGRESS_POLICIES:
            raise ValueError(
                f"unknown ingress policy {ingress_policy!r}; "
                f"expected one of {', '.join(INGRESS_POLICIES)}"
            )
        self.architecture = architecture
        self.nodes = nodes
        self.fabric = fabric
        self.rib = rib
        self.gpt_params = gpt_params
        self.ingress_policy = ingress_policy
        self._ingress_rr = 0
        self._rng = np.random.default_rng(0xEC)
        self.bind_registry(registry)

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry to this cluster and its GPT replicas.

        Metric names carry the architecture (``cluster.scalebricks.*``) so
        one registry can observe several clusters side by side.  ``None``
        selects the shared null registry (zero-cost instrumentation).
        """
        self.registry = resolve_registry(registry)
        prefix = f"cluster.{self.architecture.value}"
        self._m_routed = self.registry.counter(
            f"{prefix}.routed", "packets offered to the PFE"
        )
        self._m_delivered = self.registry.counter(
            f"{prefix}.delivered", "packets accepted by their handler"
        )
        self._m_dropped = self.registry.counter(
            f"{prefix}.dropped", "packets rejected (unknown key, ACL, ...)"
        )
        self._m_hops = self.registry.histogram(
            f"{prefix}.hops", buckets=(0, 1, 2, 3, 4),
            description="internal fabric transits per packet",
        )
        self._m_indirections = self.registry.counter(
            f"{prefix}.indirections",
            "packets detoured through an intermediate node",
        )
        self._g_fabric_packets = self.registry.gauge(
            "fabric.packets", "packets delivered by the fabric"
        )
        self._g_fabric_bytes = self.registry.gauge(
            "fabric.bytes", "bytes delivered by the fabric"
        )
        self._g_fabric_dropped = self.registry.gauge(
            "fabric.dropped", "packets lost in the fabric"
        )
        self._g_fabric_max_link = self.registry.gauge(
            "fabric.max_link", "packets over the busiest fabric link"
        )
        self._g_fabric_hops = self.registry.gauge(
            "fabric.switch_hops", "switch traversals across all packets"
        )
        self._g_fabric_reroutes = self.registry.gauge(
            "fabric.reroutes", "transits forced off their ECMP path"
        )
        self._g_fabric_capacity_exceeded = self.registry.gauge(
            "fabric.capacity_exceeded",
            "link crossings beyond per-window capacity",
        )
        self.rib.bind_registry(self.registry)
        for node in self.nodes:
            if node.gpt is not None:
                node.gpt.setsep.bind_registry(self.registry)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        architecture: Architecture,
        num_nodes: int,
        keys: Union[Sequence[Key], np.ndarray],
        handling_nodes: Sequence[int],
        values: Sequence[int],
        fib_factory: Optional[FibFactory] = None,
        gpt_params: Optional[SeparatorParams] = None,
        fabric: Optional[SwitchFabric] = None,
        registry: Optional[MetricsRegistry] = None,
        backend: Optional[str] = None,
        fabric_backend: Optional[str] = None,
        ingress_policy: str = "random",
    ) -> "Cluster":
        """Stand up a cluster pre-populated with the given flows.

        Args:
            architecture: one of the Figure 2 designs.
            num_nodes: cluster size.
            keys: flow keys.
            handling_nodes: each key's handling node (assigned externally —
                by the EPC controller in the driving application; §2's
                "deterministic partitioning" constraint).
            values: application value per key (e.g. the downstream TEID).
            fib_factory: ``capacity -> FibTable``; defaults to the extended
                cuckoo table.
            gpt_params: separator configuration for the GPT (ScaleBricks);
                converted if it doesn't match the selected backend.
            fabric: interconnect; defaults to a switch fabric.
            registry: metrics registry shared by the cluster, its GPT
                replicas and the update engine (default: disabled).
            backend: separator backend for the GPT; ``None`` uses the
                process default (:mod:`repro.core.separator`).
            fabric_backend: fabric topology backend ("crossbar",
                "fattree"); ``None`` uses the process default
                (:mod:`repro.fabric`).  Mutually exclusive with an
                explicit ``fabric``.
            ingress_policy: how :meth:`pick_ingress` selects the
                receiving node — "random" (§2's any-node ECMP spray),
                "roundrobin", or "utilization" (steers toward the node
                whose fabric links are coolest).
        """
        keys_arr = hashfamily.canonical_keys(keys)
        nodes_arr = np.asarray(handling_nodes, dtype=np.int64)
        values_list = list(values)
        if not (len(keys_arr) == len(nodes_arr) == len(values_list)):
            raise ValueError("keys, handling_nodes, values lengths differ")
        if len(nodes_arr) and (nodes_arr.min() < 0 or nodes_arr.max() >= num_nodes):
            raise ValueError("handling node out of range")
        if fib_factory is None:
            fib_factory = lambda capacity: CuckooHashTable(capacity)
        if fabric is not None and fabric_backend is not None:
            raise ValueError(
                "pass either an explicit fabric or a fabric_backend name, "
                "not both"
            )
        if fabric is None:
            # Imported lazily: repro.fabric imports this module's sibling
            # (repro.cluster.fabric) at import time, so a module-level
            # import here would be a cycle.
            from repro import fabric as fabric_registry

            fabric = fabric_registry.create(
                num_nodes, fabric_registry.resolve_backend(fabric_backend)
            )

        # The GPT (and the RIB's block partitioning) exist for ScaleBricks;
        # the RIB itself is kept for every architecture since updates need
        # an authoritative source.
        gpt: Optional[GlobalPartitionTable] = None
        if architecture.uses_gpt:
            backend = separator_registry.resolve_backend(backend)
            if gpt_params is None:
                gpt_params = separator_registry.params_for_cluster(
                    num_nodes, backend
                )
            else:
                gpt_params = separator_registry.coerce_params(
                    gpt_params, backend
                )
            gpt, _ = GlobalPartitionTable.build(
                keys_arr, nodes_arr.tolist(), num_nodes, gpt_params,
                backend=backend,
            )
            num_blocks = gpt.setsep.num_blocks
        else:
            num_blocks = twolevel.num_blocks_for(len(keys_arr))

        rib = RoutingInformationBase(num_nodes, num_blocks)
        for key, node, value in zip(keys_arr, nodes_arr, values_list):
            rib.insert(int(key), int(node), int(value))

        cluster_nodes: List[ClusterNode] = []
        total = max(1, len(keys_arr))
        for node_id in range(num_nodes):
            if architecture.replicates_full_fib:
                capacity = total
            elif architecture is Architecture.HASH_PARTITION:
                # Each entry lives at its lookup node *and* its handling
                # node, so a slice sees up to 2/N of the population.
                capacity = max(16, int(total / num_nodes * 3.0))
            else:
                # Partitioned slices get head-room for imbalance and for
                # post-build inserts via the update engine.
                capacity = max(16, int(total / num_nodes * 2.0))
            node_gpt = None
            if gpt is not None:
                node_gpt = gpt if node_id == 0 else gpt.copy()
            cluster_nodes.append(
                ClusterNode(
                    node_id,
                    architecture,
                    fib_factory(capacity),
                    gpt=node_gpt,
                )
            )

        cluster = cls(
            architecture, cluster_nodes, fabric, rib, gpt_params,
            registry=registry, ingress_policy=ingress_policy,
        )
        for key, node, value in zip(keys_arr, nodes_arr, values_list):
            cluster._install(int(key), int(node), int(value))
        return cluster

    def _install(self, key: int, node: int, value: int) -> None:
        """Place one flow's FIB entry according to the architecture."""
        arch = self.architecture
        if arch.replicates_full_fib:
            for cluster_node in self.nodes:
                cluster_node.install_route(key, node, value)
        elif arch is Architecture.HASH_PARTITION:
            self.nodes[self.lookup_node_of(key)].install_route(
                key, node, value
            )
            # The handling node needs the entry too (it owns the state).
            if self.lookup_node_of(key) != node:
                self.nodes[node].install_route(key, node, value)
        else:  # ScaleBricks: entry only at its handling node.
            self.nodes[node].install_route(key, node, value)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def lookup_node_of(self, key: Key) -> int:
        """Hash-partitioning's lookup node for a key."""
        return int(self.lookup_nodes_batch([key])[0])

    def lookup_nodes_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> np.ndarray:
        """Vectorised :meth:`lookup_node_of` (hash-partition lookup nodes).

        Part of the unified batch query surface: like
        :meth:`repro.core.setsep.SetSep.lookup_batch` and
        :meth:`repro.gpt.gpt.GlobalPartitionTable.lookup_batch` it accepts
        any mix of the canonical :data:`repro.core.hashfamily.Key` types
        and returns one NumPy array.
        """
        arr = hashfamily.canonical_keys(keys)
        return hashfamily.reduce_range(
            hashfamily.bucket_hash(arr), len(self.nodes)
        ).astype(np.int64)

    def pick_ingress(self) -> int:
        """Ingress selection under the configured policy.

        "random" is §2's any-node ECMP spray; "roundrobin" cycles the
        nodes; "utilization" asks the fabric for per-node ingress costs
        (current-window link occupancy normalised by capacity) and takes
        the coolest node, feeding the pick back so a burst of picks
        spreads instead of dog-piling one node.
        """
        if self.ingress_policy == "roundrobin":
            node = self._ingress_rr
            self._ingress_rr = (node + 1) % len(self.nodes)
            return node
        if self.ingress_policy == "utilization":
            node = int(np.argmin(self.fabric.ingress_costs()))
            self.fabric.note_ingress(node)
            return node
        return int(self._rng.integers(len(self.nodes)))

    def pick_ingress_batch(self, count: int) -> np.ndarray:
        """Draw ``count`` ingress nodes at once.

        Under the "random" policy this consumes the generator stream
        identically to ``count`` scalar :meth:`pick_ingress` calls (PCG64
        guarantees the equivalence), so batched and per-packet ingest
        stay trajectory-identical; the deterministic policies delegate to
        the scalar picker.
        """
        if self.ingress_policy != "random":
            return np.fromiter(
                (self.pick_ingress() for _ in range(count)),
                dtype=np.int64, count=count,
            )
        return self._rng.integers(len(self.nodes), size=count).astype(
            np.int64
        )

    def route(
        self,
        key: Key,
        ingress: Optional[int] = None,
        size: int = 64,
    ) -> RouteResult:
        """Walk one packet from its ingress to its handling node."""
        ckey = hashfamily.canonical_key(key)
        if ingress is None:
            ingress = self.pick_ingress()
        arch = self.architecture
        if arch is Architecture.SCALEBRICKS:
            result = self._route_scalebricks(ckey, ingress, size)
        elif arch is Architecture.HASH_PARTITION:
            result = self._route_hash_partition(ckey, ingress, size)
        elif arch is Architecture.ROUTEBRICKS_VLB:
            result = self._route_vlb(ckey, ingress, size)
        else:
            result = self._route_full_duplication(ckey, ingress, size)
        self._m_routed.inc()
        if result.dropped:
            self._m_dropped.inc()
        else:
            self._m_delivered.inc()
        self._m_hops.observe(result.internal_hops)
        if result.internal_hops >= 2:
            self._m_indirections.inc()
        return result

    def route_batch(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        ingress: Optional[Sequence[int]] = None,
    ) -> RouteBatchResult:
        """Route many keys; returns a typed :class:`RouteBatchResult`.

        The result iterates as a sequence of :class:`RouteResult` (the
        historical list shape) and additionally carries the batch as NumPy
        arrays (egress node, hop count, indirection flag, ...).
        """
        keys_arr = hashfamily.canonical_keys(keys)
        if ingress is None:
            ingress_arr = self.pick_ingress_batch(len(keys_arr))
        else:
            ingress_arr = np.asarray(ingress)
        if (
            len(keys_arr)
            and ingress_arr.dtype != object
            and self.architecture is Architecture.SCALEBRICKS
            and self.fabric.fault_hook is None
            and not self.fabric.has_link_faults()
        ):
            return self._route_batch_scalebricks(
                keys_arr, ingress_arr.astype(np.int64)
            )
        return RouteBatchResult(
            [
                self.route(int(k), int(i))
                for k, i in zip(keys_arr, ingress_arr)
            ]
        )

    def _route_batch_scalebricks(
        self,
        keys_arr: np.ndarray,
        ingress_arr: np.ndarray,
        size: int = 64,
    ) -> RouteBatchResult:
        """Vectorised ScaleBricks routing (paper §4.3's batched pipeline).

        Counter totals, fabric accounting and the per-packet
        :class:`RouteResult` values are identical to routing each packet
        through :meth:`route`; only the per-packet Python call stack is
        gone.  GPT lookups are grouped by ingress node (each packet still
        consults its own ingress replica) and FIB rejection is grouped by
        handling node.
        """
        n = keys_arr.size
        num_nodes = len(self.nodes)
        ext_rx = np.bincount(ingress_arr, minlength=num_nodes)
        handlers = np.zeros(n, dtype=np.int64)
        for node_id in np.nonzero(ext_rx)[0]:
            node = self.nodes[int(node_id)]
            node.counters.external_rx += int(ext_rx[node_id])
            mask = ingress_arr == node_id
            node.counters.gpt_lookups += int(ext_rx[node_id])
            handlers[mask] = node.gpt.lookup_batch(keys_arr[mask]).astype(
                np.int64
            )

        remote = handlers != ingress_arr
        latencies = self.fabric.deliver_batch(ingress_arr, handlers, size)
        for node_id, count in zip(
            *np.unique(handlers[remote], return_counts=True)
        ):
            self.nodes[int(node_id)].counters.internal_rx += int(count)
        for node_id, count in zip(
            *np.unique(ingress_arr[remote], return_counts=True)
        ):
            self.nodes[int(node_id)].counters.forwarded += int(count)

        found = np.zeros(n, dtype=bool)
        values = np.full(n, -1, dtype=np.int64)
        for node_id in np.unique(handlers):
            mask = handlers == node_id
            node = self.nodes[int(node_id)]
            count = int(mask.sum())
            node.counters.fib_lookups += count
            try:
                node_found, node_values = node.fib.lookup_batch_array(
                    keys_arr[mask]
                )
            except TypeError:
                raw = node.fib.lookup_batch(keys_arr[mask])
                node_found = np.asarray(
                    [v is not None for v in raw], dtype=bool
                )
                node_values = np.asarray(
                    [-1 if v is None else int(v) for v in raw],
                    dtype=np.int64,
                )
            hits = int(node_found.sum())
            node.counters.fib_misses += count - hits
            node.counters.dropped += count - hits
            node.counters.handled += hits
            found[mask] = node_found
            values[mask] = node_values

        results = []
        for i in range(n):
            ing = int(ingress_arr[i])
            handler = int(handlers[i])
            path = (ing,) if handler == ing else (ing, handler)
            hit = bool(found[i])
            results.append(
                RouteResult(
                    key=int(keys_arr[i]),
                    ingress=ing,
                    path=path,
                    internal_hops=len(path) - 1,
                    latency_us=float(latencies[i]),
                    handled_by=handler if hit else None,
                    value=int(values[i]) if hit else None,
                    dropped=not hit,
                    reason="handled" if hit else "unknown_key",
                )
            )

        dropped_count = n - int(found.sum())
        self._m_routed.inc(n)
        if dropped_count:
            self._m_dropped.inc(dropped_count)
        if n - dropped_count:
            self._m_delivered.inc(n - dropped_count)
        self._m_hops.observe_many(remote.astype(np.int64))
        return RouteBatchResult(results)

    def _finish(
        self,
        ckey: int,
        ingress: int,
        path: List[int],
        latency: float,
        handler: int,
    ) -> RouteResult:
        """Terminal handling at ``handler`` with drop accounting."""
        value = self.nodes[handler].handle(ckey)
        dropped = value is None
        return RouteResult(
            key=ckey,
            ingress=ingress,
            path=tuple(path),
            internal_hops=len(path) - 1,
            latency_us=latency,
            handled_by=None if dropped else handler,
            value=value,
            dropped=dropped,
            reason="unknown_key" if dropped else "handled",
        )

    def _route_full_duplication(
        self, ckey: int, ingress: int, size: int
    ) -> RouteResult:
        node = self.nodes[ingress]
        node.counters.external_rx += 1
        found = node.fib_lookup(ckey)
        if found is None:
            node.counters.dropped += 1
            return RouteResult(
                key=ckey,
                ingress=ingress,
                path=(ingress,),
                internal_hops=0,
                latency_us=0.0,
                handled_by=None,
                value=None,
                dropped=True,
                reason="unknown_at_ingress",
            )
        handler, _ = found
        latency = self.fabric.deliver(ingress, handler, size)
        path = [ingress] if handler == ingress else [ingress, handler]
        if handler != ingress:
            self.nodes[handler].counters.internal_rx += 1
            node.counters.forwarded += 1
        return self._finish(ckey, ingress, path, latency, handler)

    def _route_vlb(self, ckey: int, ingress: int, size: int) -> RouteResult:
        node = self.nodes[ingress]
        node.counters.external_rx += 1
        found = node.fib_lookup(ckey)
        if found is None:
            node.counters.dropped += 1
            return RouteResult(
                key=ckey,
                ingress=ingress,
                path=(ingress,),
                internal_hops=0,
                latency_us=0.0,
                handled_by=None,
                value=None,
                dropped=True,
                reason="unknown_at_ingress",
            )
        handler, _ = found
        path = [ingress]
        latency = 0.0
        if handler != ingress:
            indirect = self.fabric.pick_indirect(ingress, handler)
            latency += self.fabric.deliver(ingress, indirect, size)
            self.nodes[indirect].counters.internal_rx += 1
            self.nodes[indirect].counters.forwarded += 1
            path.append(indirect)
            latency += self.fabric.deliver(indirect, handler, size)
            self.nodes[handler].counters.internal_rx += 1
            node.counters.forwarded += 1
            path.append(handler)
        return self._finish(ckey, ingress, path, latency, handler)

    def _route_hash_partition(
        self, ckey: int, ingress: int, size: int
    ) -> RouteResult:
        node = self.nodes[ingress]
        node.counters.external_rx += 1
        lookup_node_id = self.lookup_node_of(ckey)
        path = [ingress]
        latency = 0.0
        if lookup_node_id != ingress:
            latency += self.fabric.deliver(ingress, lookup_node_id, size)
            self.nodes[lookup_node_id].counters.internal_rx += 1
            node.counters.forwarded += 1
            path.append(lookup_node_id)
        lookup_node = self.nodes[lookup_node_id]
        found = lookup_node.fib_lookup(ckey)
        if found is None:
            lookup_node.counters.dropped += 1
            return RouteResult(
                key=ckey,
                ingress=ingress,
                path=tuple(path),
                internal_hops=len(path) - 1,
                latency_us=latency,
                handled_by=None,
                value=None,
                dropped=True,
                reason="unknown_at_lookup_node",
            )
        handler, _ = found
        if handler != lookup_node_id:
            latency += self.fabric.deliver(lookup_node_id, handler, size)
            self.nodes[handler].counters.internal_rx += 1
            lookup_node.counters.forwarded += 1
            path.append(handler)
        return self._finish(ckey, ingress, path, latency, handler)

    def _route_scalebricks(
        self, ckey: int, ingress: int, size: int
    ) -> RouteResult:
        node = self.nodes[ingress]
        node.counters.external_rx += 1
        handler = node.gpt_lookup(ckey)
        path = [ingress]
        latency = 0.0
        if handler != ingress:
            latency = self.fabric.deliver(ingress, handler, size)
            self.nodes[handler].counters.internal_rx += 1
            node.counters.forwarded += 1
            path.append(handler)
        return self._finish(ckey, ingress, path, latency, handler)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_report(self) -> List[Dict[str, int]]:
        """Per-node table footprints (FIB vs GPT)."""
        return [
            {
                "node": n.node_id,
                "fib_bytes": n.fib_bytes(),
                "gpt_bytes": n.gpt_bytes(),
                "fib_entries": len(n.fib),
            }
            for n in self.nodes
        ]

    def sync_fabric_gauges(self) -> None:
        """Copy fabric accounting into the ``fabric.*`` gauges.

        Gauges snapshot cumulative fabric state, so they are synced on
        demand (stats export, episode end) rather than per packet.
        """
        stats = self.fabric.stats
        self._g_fabric_packets.set(stats.packets)
        self._g_fabric_bytes.set(stats.bytes)
        self._g_fabric_dropped.set(stats.dropped)
        self._g_fabric_max_link.set(stats.max_link_packets())
        self._g_fabric_hops.set(stats.switch_hops)
        self._g_fabric_reroutes.set(stats.reroutes)
        self._g_fabric_capacity_exceeded.set(stats.capacity_exceeded)

    def total_fib_entries(self) -> int:
        """Sum of FIB entries across nodes (replication inflates this)."""
        return sum(len(n.fib) for n in self.nodes)

    def reset_stats(self) -> None:
        """Zero node counters, fabric stats and the metrics registry."""
        for node in self.nodes:
            node.counters.reset()
        self.fabric.reset_stats()
        self.registry.reset()

    def __repr__(self) -> str:
        return (
            f"Cluster(arch={self.architecture.value}, "
            f"nodes={len(self.nodes)}, flows={len(self.rib)})"
        )
