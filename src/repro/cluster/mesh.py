"""Full-mesh server interconnect with VLB (paper §3.1, Figure 2a).

RouteBricks connects servers directly: every node pair has a dedicated
link, and Valiant Load Balancing routes each packet via a random
intermediate node so that *any* traffic matrix fills the links evenly.
The cost is the §3.1 trade-off ScaleBricks rejects: the mesh must
provision 2x the external bandwidth internally, and every packet pays the
indirect node's forwarding work.

This module models the mesh at link granularity — per-link byte counters
over the full n*(n-1) directed link set — so the 2R bandwidth claim and
VLB's load-spreading guarantee are measurable, in contrast to the single
shared :class:`repro.cluster.fabric.SwitchFabric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class LinkStats:
    """Per-directed-link accounting."""

    packets: int = 0
    bytes: int = 0


class MeshFabric:
    """A full mesh of point-to-point links with VLB routing.

    Args:
        num_nodes: servers in the mesh (n*(n-1) directed links).
        link_latency_us: per-link propagation+serialisation latency.  A
            VLB transit costs one link; an indirect detour costs two plus
            the intermediate node's forwarding work (charged by the
            caller).
        seed: RNG for indirect-node selection.
    """

    def __init__(
        self,
        num_nodes: int,
        link_latency_us: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("a mesh needs at least two nodes")
        self.num_nodes = num_nodes
        self.link_latency_us = link_latency_us
        self._rng = np.random.default_rng(seed)
        self.links: Dict[Tuple[int, int], LinkStats] = {
            (a, b): LinkStats()
            for a in range(num_nodes)
            for b in range(num_nodes)
            if a != b
        }

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} not in mesh")

    def send_direct(self, src: int, dst: int, size: int = 64) -> float:
        """One link crossing; returns its latency."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        stats = self.links[(src, dst)]
        stats.packets += 1
        stats.bytes += size
        return self.link_latency_us

    def send_vlb(self, src: int, dst: int, size: int = 64) -> Tuple[int, float]:
        """VLB two-phase routing: src -> random intermediate -> dst.

        Returns (intermediate node, total latency).  When source and
        destination coincide no links are crossed; with only two nodes the
        'intermediate' degenerates to the destination (single hop).
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return src, 0.0
        candidates = [
            n for n in range(self.num_nodes) if n not in (src, dst)
        ]
        if not candidates:
            return dst, self.send_direct(src, dst, size)
        mid = int(self._rng.choice(candidates))
        latency = self.send_direct(src, mid, size)
        latency += self.send_direct(mid, dst, size)
        return mid, latency

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def total_internal_bytes(self) -> int:
        """All bytes crossing mesh links (the 2R numerator)."""
        return sum(stats.bytes for stats in self.links.values())

    def link_load_imbalance(self) -> float:
        """max/mean packets over busy links — VLB keeps this near 1."""
        counts = [s.packets for s in self.links.values()]
        mean = np.mean(counts)
        if mean == 0:
            return 0.0
        return float(max(counts) / mean)

    def per_node_capacity_needed(self, external_gbps: float) -> float:
        """§3.1: aggregate internal link capacity per node under VLB.

        Each node's mesh links must carry 2x its external rate (one
        transit in, one transit out of the indirect phase).
        """
        return 2.0 * external_gbps

    def reset(self) -> None:
        """Zero all link counters."""
        for stats in self.links.values():
            stats.packets = 0
            stats.bytes = 0
