"""Node failure handling and recovery (paper §7 "Isolation of Failure").

ScaleBricks' failure story rests on fate sharing: a node's partial FIB
holds exactly the flows it handles, so losing the node loses only those
flows — forwarding between the survivors continues untouched.  A
hash-partitioned cluster lacks this property: a dead *lookup* node breaks
flows that are handled elsewhere.

This module implements the operational side of that story for the
simulated cluster:

* ``fail_node`` — mark a node down; packets routed toward it are dropped
  with an attributable reason, everything else keeps flowing;
* ``impact_report`` — quantify exactly which flows a failure affects
  under each architecture (the §7 comparison, measurable);
* ``recover_flows`` — re-home the failed node's flows onto survivors
  using the update protocol (controller-driven re-pinning), restoring
  full service without touching unaffected state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.cluster.architectures import Architecture
from repro.cluster.cluster import Cluster
from repro.cluster.update import UpdateEngine
from repro.core import hashfamily


@dataclass(frozen=True)
class FailureImpact:
    """Which flows a single node failure takes down."""

    failed_node: int
    total_flows: int
    lost_own_flows: int
    lost_collateral_flows: int

    @property
    def lost_total(self) -> int:
        """All flows that stop forwarding."""
        return self.lost_own_flows + self.lost_collateral_flows

    @property
    def isolation(self) -> bool:
        """§7's property: only the failed node's own flows are lost."""
        return self.lost_collateral_flows == 0


class FailoverManager:
    """Tracks liveness and drives recovery for a simulated cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.updates = UpdateEngine(cluster)
        self.down: Set[int] = set()

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Mark a node as failed.

        The node's tables stay in memory (this is a liveness event, not a
        disk loss) but nothing can be delivered to it.
        """
        if not 0 <= node_id < len(self.cluster.nodes):
            raise ValueError(f"no node {node_id}")
        self.down.add(node_id)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (its state intact)."""
        self.down.discard(node_id)

    def is_up(self, node_id: int) -> bool:
        """Liveness check."""
        return node_id not in self.down

    def route(self, key, ingress: Optional[int] = None):
        """Route a packet, honouring liveness.

        A packet whose path would traverse a down node is reported as
        dropped with reason ``node_down`` (the survivors never see it).
        """
        if ingress is None:
            candidates = [
                n for n in range(len(self.cluster.nodes)) if self.is_up(n)
            ]
            if not candidates:
                raise RuntimeError("no live ingress nodes")
            ingress = int(np.random.default_rng().choice(candidates))
        result = self.cluster.route(key, ingress)
        if any(node in self.down for node in result.path):
            from repro.cluster.cluster import RouteResult

            return RouteResult(
                key=result.key,
                ingress=ingress,
                path=result.path,
                internal_hops=result.internal_hops,
                latency_us=result.latency_us,
                handled_by=None,
                value=None,
                dropped=True,
                reason="node_down",
            )
        return result

    # ------------------------------------------------------------------
    # Impact analysis (§7)
    # ------------------------------------------------------------------

    def impact_report(self, failed_node: int) -> FailureImpact:
        """Classify every RIB flow as unaffected / own-loss / collateral.

        *Own* losses are flows handled by the failed node (unavoidable in
        any design — the state lives there).  *Collateral* losses are
        flows handled elsewhere that stop forwarding anyway; ScaleBricks
        and full duplication have none, hash partitioning loses every
        flow whose lookup node failed.
        """
        cluster = self.cluster
        own = 0
        collateral = 0
        total = 0
        for entry in cluster.rib.entries():
            total += 1
            if entry.node == failed_node:
                own += 1
                continue
            if (
                cluster.architecture is Architecture.HASH_PARTITION
                and cluster.lookup_node_of(entry.key) == failed_node
            ):
                collateral += 1
        return FailureImpact(
            failed_node=failed_node,
            total_flows=total,
            lost_own_flows=own,
            lost_collateral_flows=collateral,
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover_flows(
        self,
        failed_node: int,
        reassign: Optional[Dict[int, int]] = None,
    ) -> int:
        """Re-home the failed node's flows onto survivors (§7 recovery).

        Args:
            failed_node: the node whose flows must move.
            reassign: optional explicit ``key -> new node`` map; by default
                flows spread round-robin over the survivors (the controller
                would normally apply its own policy here).

        Returns:
            The number of flows moved.  Each move runs the normal §4.5
            update path (RIB owner recompute + delta broadcast), so
            recovery cost scales with the failed node's flow count, not
            the cluster's.
        """
        survivors = [
            n
            for n in range(len(self.cluster.nodes))
            if n != failed_node and self.is_up(n)
        ]
        if not survivors:
            raise RuntimeError("no survivors to recover onto")
        moved = 0
        victims = [
            entry
            for entry in list(self.cluster.rib.entries())
            if entry.node == failed_node
        ]
        for i, entry in enumerate(victims):
            if reassign is not None and entry.key in reassign:
                target = reassign[entry.key]
            else:
                target = survivors[i % len(survivors)]
            if target == failed_node or not self.is_up(target):
                raise ValueError(f"cannot recover onto node {target}")
            self.updates.insert_flow(entry.key, target, entry.value)
            moved += 1
        return moved
