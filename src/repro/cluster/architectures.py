"""The four FIB architectures of Figure 2.

Each value describes where forwarding state lives and how many internal
hops a packet takes from its ingress node to its handling node:

* ``ROUTEBRICKS_VLB`` — servers in a mesh, Valiant load balancing: every
  packet bounces through a random indirect node (2 hops), full FIB
  everywhere (Fig. 2a).
* ``FULL_DUPLICATION`` — switch-connected, full FIB on every node, direct
  forwarding (1 hop) but zero FIB scaling (Fig. 2b).
* ``HASH_PARTITION`` — switch-connected, FIB split by key hash; the ingress
  must detour via the key's lookup node (2 hops) for linear FIB scaling
  (Fig. 2c).
* ``SCALEBRICKS`` — switch-connected, compact GPT replicated everywhere,
  full FIB entries only at their handling node: direct forwarding (1 hop)
  *and* FIB scaling (Fig. 2d).
"""

from __future__ import annotations

import enum


class Architecture(enum.Enum):
    """Cluster FIB architecture (paper Figure 2)."""

    ROUTEBRICKS_VLB = "routebricks_vlb"
    FULL_DUPLICATION = "full_duplication"
    HASH_PARTITION = "hash_partition"
    SCALEBRICKS = "scalebricks"

    @property
    def internal_hops(self) -> int:
        """Switch/fabric transits between ingress and handling node when
        they differ (the architectural latency cost, §3.1–§3.2)."""
        if self in (Architecture.ROUTEBRICKS_VLB, Architecture.HASH_PARTITION):
            return 2
        return 1

    @property
    def replicates_full_fib(self) -> bool:
        """Whether every node stores every FIB entry."""
        return self in (
            Architecture.ROUTEBRICKS_VLB,
            Architecture.FULL_DUPLICATION,
        )

    @property
    def uses_gpt(self) -> bool:
        """Whether ingress consults a compact Global Partition Table."""
        return self is Architecture.SCALEBRICKS

    @property
    def internal_bandwidth_factor(self) -> float:
        """Aggregate internal bandwidth needed per unit of external
        bandwidth (§3.1: VLB needs 2R, switch designs need R)."""
        return 2.0 if self is Architecture.ROUTEBRICKS_VLB else 1.0
