"""The Routing Information Base and its partitioning (paper §3.2, §4.5).

The RIB is the authoritative mapping ``key -> (handling node, value)`` from
which both derived structures are generated: FIB entries (pushed to each
key's handling node) and the GPT (replicated everywhere).  ScaleBricks
hash-partitions the RIB so that *keys in the same 1024-key SetSep block are
stored on the same node* — the property that lets the owning node recompute
a SetSep group locally and broadcast a tiny delta (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core import hashfamily, twolevel
from repro.core.params import BUCKETS_PER_BLOCK
from repro.core.setsep import Key, SetSep
from repro.obs.metrics import MetricsRegistry, resolve_registry


@dataclass(frozen=True)
class RibEntry:
    """One authoritative routing record."""

    key: int
    node: int
    value: int


class RoutingInformationBase:
    """Block-partitioned RIB spread across the cluster.

    Args:
        num_nodes: cluster size (block owners are assigned round-robin).
        num_blocks: SetSep block count — must match the GPT's, since the
            partitioning unit *is* the SetSep block.
        registry: metrics registry for mutation counters and the live
            entry-count gauge (``None`` selects the null registry).
    """

    def __init__(
        self,
        num_nodes: int,
        num_blocks: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if num_blocks < 1:
            raise ValueError("num_blocks must be positive")
        self.num_nodes = num_nodes
        self.num_blocks = num_blocks
        self._blocks: Dict[int, Dict[int, RibEntry]] = {}
        self.bind_registry(registry)

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry (``None`` selects the null registry)."""
        self.registry = resolve_registry(registry)
        self._m_inserts = self.registry.counter(
            "rib.inserts", "authoritative records inserted or overwritten"
        )
        self._m_removes = self.registry.counter(
            "rib.removes", "authoritative records removed"
        )
        self._g_entries = self.registry.gauge(
            "rib.entries", "authoritative records currently held"
        )
        # Rebinds happen after construction-time population (Cluster.build
        # fills the RIB before attaching its registry) — resynchronise.
        self._g_entries.set(len(self))

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def block_of(self, key: Key) -> int:
        """SetSep block id of a key (the partitioning unit)."""
        keys = hashfamily.canonical_keys([key])
        bucket = int(twolevel.bucket_ids(keys, self.num_blocks)[0])
        return bucket // BUCKETS_PER_BLOCK

    def owner_of_block(self, block: int) -> int:
        """Node owning a block's RIB slice (round-robin assignment)."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")
        return block % self.num_nodes

    def owner_of_key(self, key: Key) -> int:
        """Node owning a key's RIB entry."""
        return self.owner_of_block(self.block_of(key))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key: Key, node: int, value: int) -> RibEntry:
        """Insert or overwrite the authoritative record for ``key``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError("handling node out of range")
        ckey = hashfamily.canonical_key(key)
        entry = RibEntry(key=ckey, node=node, value=value)
        block = self._blocks.setdefault(self.block_of(ckey), {})
        if ckey not in block:
            self._g_entries.inc()
        block[ckey] = entry
        self._m_inserts.inc()
        return entry

    def remove(self, key: Key) -> Optional[RibEntry]:
        """Remove and return the record, or ``None`` if absent."""
        ckey = hashfamily.canonical_key(key)
        block = self.block_of(ckey)
        entry = self._blocks.get(block, {}).pop(ckey, None)
        if entry is not None:
            self._m_removes.inc()
            self._g_entries.dec()
        return entry

    def get(self, key: Key) -> Optional[RibEntry]:
        """Exact lookup of the authoritative record."""
        ckey = hashfamily.canonical_key(key)
        return self._blocks.get(self.block_of(ckey), {}).get(ckey)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._blocks.values())

    def entries(self) -> Iterator[RibEntry]:
        """All records, block by block."""
        for block_entries in self._blocks.values():
            yield from block_entries.values()

    def entries_in_block(self, block: int) -> List[RibEntry]:
        """All records of one block (what its owner holds)."""
        return list(self._blocks.get(block, {}).values())

    def entries_on_node(self, node: int) -> List[RibEntry]:
        """All records owned by ``node``."""
        out: List[RibEntry] = []
        for block, block_entries in self._blocks.items():
            if self.owner_of_block(block) == node:
                out.extend(block_entries.values())
        return out

    def group_contents(
        self, group_id: int, setsep: SetSep
    ) -> Tuple[List[int], List[int]]:
        """(keys, nodes) of one SetSep group — the rebuild input (§4.5).

        Only the block owner can produce this, which is exactly why keys of
        one block must co-reside: group membership depends on the block's
        bucket-to-group choices.
        """
        block = group_id // twolevel.GROUPS_PER_BLOCK
        records = self.entries_in_block(block)
        if not records:
            return [], []
        keys = np.asarray([r.key for r in records], dtype=np.uint64)
        groups = setsep.groups_of(keys)
        member = groups == group_id
        return (
            [int(k) for k in keys[member]],
            [r.node for r, hit in zip(records, member) if hit],
        )

    def load_per_node(self) -> List[int]:
        """RIB records held by each node (partitioning balance metric)."""
        loads = [0] * self.num_nodes
        for block, block_entries in self._blocks.items():
            loads[self.owner_of_block(block)] += len(block_entries)
        return loads
