"""Skewed FIB distribution analysis (paper §7).

ScaleBricks cannot choose the key-to-handling-node assignment, so a
skewed controller policy (e.g. geographic pinning) skews the partial FIBs
with it: the fullest node's memory bounds the cluster's total capacity.
Hash partitioning is immune (its lookup slices are hash-spread) but pays
the extra hop.  §7 calls this trade-off fundamental; these closed forms
quantify it so the skew ablation can chart it.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.model.scaling import gpt_bits_per_key


def zipf_shares(num_nodes: int, s: float) -> List[float]:
    """Per-node flow shares under a Zipf(s) popularity of nodes.

    ``s = 0`` is uniform; larger s concentrates flows on few nodes.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    if s < 0:
        raise ValueError("s must be non-negative")
    weights = np.arange(1, num_nodes + 1, dtype=float) ** -s
    return list(weights / weights.sum())


def scalebricks_capacity_skewed(
    memory_bits: float,
    shares: Sequence[float],
    entry_bits: int = 64,
) -> float:
    """Total flows an n-node ScaleBricks cluster holds under skew.

    Node i stores ``F * share_i`` full entries plus the replicated GPT of
    ``F * gpt_bits`` — the fullest node saturates first::

        F = M / (max_share * entry_bits + gpt_bits)

    With uniform shares this reduces to the Figure 11 formula.
    """
    shares = list(shares)
    if not shares or abs(sum(shares) - 1.0) > 1e-6:
        raise ValueError("shares must sum to 1")
    n = len(shares)
    gpt = gpt_bits_per_key(n)
    max_share = max(shares)
    return memory_bits / (max_share * entry_bits + gpt)


def hash_partition_capacity(
    memory_bits: float, num_nodes: int, entry_bits: int = 64
) -> float:
    """Hash partitioning's capacity — skew-independent (but two hops).

    Lookup slices are hash-spread regardless of handling-node skew, and
    handling-node state is per-flow context, not FIB.  Each entry is
    stored twice (lookup node + handling node), halving the headline
    linear capacity; §6.3's idealised curve ignores that factor, so it is
    exposed via ``entry_copies`` here for the ablation to chart both.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    return num_nodes * memory_bits / entry_bits


def capacity_loss_from_skew(shares: Sequence[float]) -> float:
    """Fractional ScaleBricks capacity lost vs a uniform assignment.

    Ratio of skewed to uniform capacity at equal memory, in [0, 1]:
    1 means no loss, 1/ (n*max_share) in the entry-dominated limit.
    """
    shares = list(shares)
    n = len(shares)
    uniform = scalebricks_capacity_skewed(1.0, [1.0 / n] * n)
    skewed = scalebricks_capacity_skewed(1.0, shares)
    return skewed / uniform


def effective_nodes(shares: Sequence[float]) -> float:
    """The 'effective cluster size' under skew: ``1 / max_share``.

    A 16-node cluster where one node handles half the flows scales like a
    2-node cluster for capacity purposes.
    """
    shares = list(shares)
    if not shares:
        raise ValueError("shares must be non-empty")
    return 1.0 / max(shares)
