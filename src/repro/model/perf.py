"""Lookup / forwarding / latency cost models (Figures 7–10 substitution).

Absolute Mops/Mpps cannot be reproduced without the paper's testbed, but
every curve in §6 is driven by mechanisms these models encode explicitly:

* lookup cost = fixed CPU work + dependent memory accesses whose latency
  depends on whether the structure fits in cache (``repro.model.cache``);
* batching overlaps misses up to the hardware's memory-level parallelism,
  at a small register-pressure cost (Figure 7's batch-size behaviour);
* a node's PFE throughput is set by its busiest core: under full
  duplication the external core does everything while the internal core
  idles, under ScaleBricks the GPT lookup and the partial-FIB lookups split
  across both (Figure 8/9's 20–23% gain);
* end-to-end latency counts endpoint overhead, per-hop switch and batch
  time, and the lookup work on each visited node (Figure 10's orderings:
  hash partitioning pays one extra hop, ScaleBricks' smaller tables answer
  from cache).

Calibration constants are module-level and documented; the benchmarks
report shapes (ratios, crossovers), not the absolute values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.model.cache import CacheHierarchy

#: Fixed CPU work per SetSep lookup (hashing + arithmetic), ns.
SETSEP_CPU_NS = 14.0

#: Register-pressure penalty per unit of batch size, ns per lookup.
BATCH_PRESSURE_NS = 0.35

#: DPDK packet rx+tx CPU cost per packet, ns.
PACKET_IO_NS = 55.0

#: Lookup batch used by the PFE (DPDK burst size).
PFE_BATCH = 17

#: Per-side endpoint overhead (NIC, DMA, generator), microseconds.
ENDPOINT_US = 8.0

#: Hardware switch transit, microseconds per hop.
SWITCH_US = 0.6

#: Batch accumulation wait per hop, microseconds.
BATCH_WAIT_US = 2.0

#: Packets per latency-relevant processing batch.
LATENCY_BATCH = 32


# ---------------------------------------------------------------------------
# SetSep lookup model (Figure 7)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetSepLookupModel:
    """Models the GPT's local lookup throughput on a given machine.

    The structure splits into the bucket-choice array and the group-info
    array; a lookup reads one line of each (two dependent accesses), plus
    hashing work on the core.
    """

    cache: CacheHierarchy
    value_bits: int = 2
    threads: int = 16

    def structure_bytes(self, num_keys: int) -> int:
        """Logical GPT size: 0.5 bits/key mapping + 1.5 bits/key/value-bit."""
        bits = num_keys * (0.5 + 1.5 * self.value_bits)
        return int(bits / 8)

    def _split(self, num_keys: int) -> Dict[str, int]:
        choices = int(num_keys * 0.5 / 8)
        groups = int(num_keys * 1.5 * self.value_bits / 8)
        return {"choices": choices, "groups": groups}

    def lookup_ns(self, num_keys: int, batch: int = 1) -> float:
        """Mean per-lookup latency on one thread."""
        parts = self._split(num_keys)
        stall = sum(
            self.cache.overlapped_access_ns(ws, batch)
            for ws in parts.values()
        )
        pressure = BATCH_PRESSURE_NS * max(0, batch - 1)
        return SETSEP_CPU_NS + stall + pressure

    def throughput_mops(self, num_keys: int, batch: int = 1) -> float:
        """Aggregate lookup throughput in Mops across all threads."""
        return self.threads * 1e3 / self.lookup_ns(num_keys, batch)


# ---------------------------------------------------------------------------
# FIB table cost models
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableCostModel:
    """Per-lookup cost profile of one exact-FIB design.

    Attributes:
        name: display label.
        accesses_per_lookup: expected dependent memory accesses.
        cpu_ns: fixed per-lookup CPU work.
        bytes_per_entry: memory footprint per stored entry, including the
            design's occupancy slack (rte_hash provisions ~2x slots).
    """

    name: str
    accesses_per_lookup: float
    cpu_ns: float
    bytes_per_entry: float

    def table_bytes(self, num_entries: int) -> int:
        """Table footprint for ``num_entries`` FIB entries."""
        return int(num_entries * self.bytes_per_entry)

    def lookup_ns(
        self, num_entries: int, cache: CacheHierarchy, batch: int = PFE_BATCH
    ) -> float:
        """Mean per-lookup latency with the PFE's batched pipeline."""
        if num_entries <= 0:
            return self.cpu_ns
        stall = self.accesses_per_lookup * cache.overlapped_access_ns(
            self.table_bytes(num_entries), batch
        )
        return self.cpu_ns + stall


def cuckoo_model(value_size: int = 8) -> TableCostModel:
    """The extended cuckoo FIB (§5.2): 1.5 bucket reads + 1 value read.

    95% occupancy; per slot: 8 B key + 2 B tag + ``value_size`` B value in
    the separated array.  The extra value read is the separation's cost —
    visible in the access count, negligible in throughput, as measured.
    """
    return TableCostModel(
        name="cuckoo_hash",
        accesses_per_lookup=2.5,
        cpu_ns=20.0,
        bytes_per_entry=(8 + 2 + value_size) / 0.95,
    )


def rte_hash_model(value_size: int = 8) -> TableCostModel:
    """DPDK rte_hash: bucketised, interleaved, ~50% occupancy.

    Slightly fewer dependent reads (values interleaved with keys) but twice
    the footprint and more key comparisons per bucket — the 50% throughput
    deficit the paper measures comes mostly from the footprint.
    """
    return TableCostModel(
        name="rte_hash",
        accesses_per_lookup=2.0,
        cpu_ns=35.0,
        bytes_per_entry=(8 + 4 + value_size) / 0.5,
    )


def chaining_model(value_size: int = 8, load: float = 4.0) -> TableCostModel:
    """The original chaining FIB: one read per chain link."""
    return TableCostModel(
        name="chaining",
        accesses_per_lookup=1.0 + load / 2.0,
        cpu_ns=12.0,
        bytes_per_entry=24 + value_size,
    )


# ---------------------------------------------------------------------------
# PFE forwarding throughput (Figures 8 and 9)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ForwardingModel:
    """Single-node PFE throughput under each FIB architecture (§6.2).

    The node has an *external* core (traffic-generator port) and an
    *internal* core (switch port).  Downstream packets all arrive at the
    external core; under ScaleBricks a fraction ``(N-1)/N`` continues to a
    peer whose internal core finishes the lookup.
    """

    cache: CacheHierarchy
    table: TableCostModel
    num_nodes: int = 4
    value_bits: int = 2

    def _gpt_bytes(self, num_flows: int) -> int:
        bits = num_flows * (0.5 + 1.5 * self.value_bits)
        return int(bits / 8)

    def _gpt_lookup_ns(self, num_flows: int) -> float:
        stall = 2 * self.cache.overlapped_access_ns(
            self._gpt_bytes(num_flows), PFE_BATCH
        )
        return SETSEP_CPU_NS + stall

    def full_duplication_mpps(self, num_flows: int) -> float:
        """Every node stores all flows; the external core does all work."""
        lookup = self.table.lookup_ns(num_flows, self.cache)
        return 1e3 / (PACKET_IO_NS + lookup)

    def scalebricks_mpps(self, num_flows: int) -> float:
        """GPT on the external core, partial FIB split across both cores."""
        n = self.num_nodes
        local_entries = max(1, num_flows // n)
        fib = self.table.lookup_ns(local_entries, self.cache)
        gpt = self._gpt_lookup_ns(num_flows)
        # External core: io + GPT for every packet, plus the local share of
        # FIB lookups.
        ext_ns = PACKET_IO_NS + gpt + fib / n
        # Internal core: io + FIB lookup for each packet arriving from a
        # peer; it only sees (n-1)/n of the node's external rate.
        int_ns = PACKET_IO_NS + fib
        ext_cap = 1e3 / ext_ns
        int_cap = (1e3 / int_ns) * n / max(1, n - 1)
        return min(ext_cap, int_cap)

    def hash_partition_mpps(self, num_flows: int) -> float:
        """1/N of the FIB per node, but every packet takes two hops.

        The ingress core only hashes; the indirect node's internal core
        performs the FIB lookup and forwards again.  Each node's internal
        core therefore handles a full extra packet stream, halving the
        usable per-node rate at equal core counts.
        """
        n = self.num_nodes
        local_entries = max(1, num_flows // n)
        fib = self.table.lookup_ns(local_entries, self.cache)
        ext_ns = PACKET_IO_NS + 10.0  # hash only
        # Internal core: receives the indirect stream (lookup + re-forward)
        # and the final handling stream (arrival io).
        int_ns = (PACKET_IO_NS + fib + PACKET_IO_NS) + PACKET_IO_NS
        return min(1e3 / ext_ns, 1e3 / int_ns)

    def improvement(self, num_flows: int) -> float:
        """ScaleBricks throughput gain over full duplication (Fig. 8/9)."""
        base = self.full_duplication_mpps(num_flows)
        return self.scalebricks_mpps(num_flows) / base - 1.0


# ---------------------------------------------------------------------------
# End-to-end latency (Figure 10)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LatencyModel:
    """RFC 2544-style average latency for the six §6.2 designs.

    Lookup work along the packet path (every lookup unbatched — RFC 2544
    latency probes travel at a rate where the prefetch pipeline is empty):

    * Full duplication: ingress searches the *full* FIB to pick the handler;
      the handler searches the full FIB again for the flow's TEID and state
      handle.  Two full-table lookups per packet.
    * ScaleBricks: ingress consults the compact GPT; the handler searches
      only its 1/N FIB slice.  Both structures answer largely from cache —
      the mechanism the paper credits for its latency win.
    * Hash partitioning: ingress only hashes, but the packet visits an extra
      lookup node (one more switch transit + batch wait) whose 1/N slice is
      searched there; the handler then searches its own slice.

    The Figure 10 benchmark evaluates this under a *shared* cache (the DPE
    competes for L3, as the paper's bubble experiment establishes), which is
    where full duplication's big tables start missing.
    """

    cache: CacheHierarchy
    table: TableCostModel
    num_nodes: int = 4
    value_bits: int = 2

    def _hop_us(self, proc_ns: float) -> float:
        """Switch transit + batch wait + a batch of node processing."""
        return SWITCH_US + BATCH_WAIT_US + LATENCY_BATCH * proc_ns / 1e3

    def _gpt_lookup_ns(self, num_flows: int) -> float:
        bits = num_flows * (0.5 + 1.5 * self.value_bits)
        stall = 2 * self.cache.overlapped_access_ns(int(bits / 8), 1)
        return SETSEP_CPU_NS + stall

    def _fib_lookup_ns(self, num_entries: int) -> float:
        return self.table.lookup_ns(num_entries, self.cache, batch=1)

    def full_duplication_us(self, num_flows: int) -> float:
        """Full-FIB lookup at the ingress *and* at the handling node."""
        ingress_ns = PACKET_IO_NS + self._fib_lookup_ns(num_flows)
        handler_ns = PACKET_IO_NS + self._fib_lookup_ns(num_flows)
        return (
            2 * ENDPOINT_US
            + self._hop_us(ingress_ns)
            + self._hop_us(handler_ns)
        )

    def scalebricks_us(self, num_flows: int) -> float:
        """Compact GPT at the ingress; 1/N FIB slice at the handler."""
        local_entries = max(1, num_flows // self.num_nodes)
        ingress_ns = PACKET_IO_NS + self._gpt_lookup_ns(num_flows)
        handler_ns = PACKET_IO_NS + self._fib_lookup_ns(local_entries)
        return (
            2 * ENDPOINT_US
            + self._hop_us(ingress_ns)
            + self._hop_us(handler_ns)
        )

    def hash_partition_us(self, num_flows: int) -> float:
        """Two internal hops: ingress -> lookup node -> handling node."""
        local_entries = max(1, num_flows // self.num_nodes)
        ingress_ns = PACKET_IO_NS + 10.0  # hash only
        lookup_ns = PACKET_IO_NS + self._fib_lookup_ns(local_entries)
        handler_ns = PACKET_IO_NS + self._fib_lookup_ns(local_entries)
        return (
            2 * ENDPOINT_US
            + self._hop_us(ingress_ns)
            + self._hop_us(lookup_ns)
            + self._hop_us(handler_ns)
        )
