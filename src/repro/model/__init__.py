"""Performance models substituting for the paper's testbed hardware.

The paper's throughput/latency results (Figures 7–10) are driven by one
mechanism: whether the lookup structures fit in cache.  These models encode
that mechanism explicitly — a cache hierarchy parameterised with the
evaluation machines' sizes/latencies, lookup-cost models for each table, and
the packet-forwarding pipeline of §6.2 — so the benchmarks can regenerate
the *shape* of every figure (who wins, crossover points) on any host.
The Figure 11 capacity analytics are exact, not modelled.
"""

from repro.model.cache import CacheHierarchy, CacheLevel, XEON_E5_2680, XEON_E5_2697V2
from repro.model.perf import (
    ForwardingModel,
    LatencyModel,
    SetSepLookupModel,
    TableCostModel,
)
from repro.model.scaling import (
    entries_full_duplication,
    entries_hash_partition,
    entries_scalebricks,
    gpt_bits_per_key,
    peak_scaling_factor,
)
from repro.model.bandwidth import FabricRequirement, expected_transits
from repro.model.skew import (
    capacity_loss_from_skew,
    effective_nodes,
    scalebricks_capacity_skewed,
    zipf_shares,
)
from repro.model.queueing import LoadLatencyModel, LoadPoint, md1_wait_us
from repro.model.calibration import FittedParams, fit_lookup_model

__all__ = [
    "FabricRequirement",
    "expected_transits",
    "LoadLatencyModel",
    "LoadPoint",
    "md1_wait_us",
    "FittedParams",
    "fit_lookup_model",
    "capacity_loss_from_skew",
    "effective_nodes",
    "scalebricks_capacity_skewed",
    "zipf_shares",
    "CacheHierarchy",
    "CacheLevel",
    "XEON_E5_2680",
    "XEON_E5_2697V2",
    "SetSepLookupModel",
    "TableCostModel",
    "ForwardingModel",
    "LatencyModel",
    "entries_full_duplication",
    "entries_hash_partition",
    "entries_scalebricks",
    "gpt_bits_per_key",
    "peak_scaling_factor",
]
