"""Queueing behaviour: latency and loss vs offered load (§6.2 context).

The paper reports average latency at one operating point; an RFC 2544
characterisation sweeps offered load, and the interesting physics — the
latency knee as a node's bottleneck core approaches saturation, and loss
beyond it — come from queueing.  Each PFE core is modelled as an M/D/1
queue (deterministic per-packet service, Poisson arrivals):

    wait = rho / (2 * (1 - rho)) * service_time,   rho = lambda * service

on top of the base path latency from :class:`repro.model.perf.LatencyModel`.
Above saturation the model reports the sustainable throughput and the loss
fraction instead of a finite latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.cache import CacheHierarchy
from repro.model.perf import ForwardingModel, LatencyModel, TableCostModel


@dataclass(frozen=True)
class LoadPoint:
    """One point of a load sweep."""

    offered_mpps: float
    utilization: float
    latency_us: Optional[float]
    loss_fraction: float

    @property
    def saturated(self) -> bool:
        """Whether the bottleneck core is at or past capacity."""
        return self.latency_us is None


def md1_wait_us(service_us: float, rho: float) -> float:
    """M/D/1 mean queueing delay for utilisation ``rho`` in [0, 1)."""
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must be in [0, 1)")
    if service_us < 0:
        raise ValueError("service time must be non-negative")
    return rho / (2.0 * (1.0 - rho)) * service_us


@dataclass(frozen=True)
class LoadLatencyModel:
    """Latency/loss vs offered load for one design on one machine."""

    cache: CacheHierarchy
    table: TableCostModel
    design: str = "scalebricks"
    num_nodes: int = 4

    def _capacity_mpps(self, num_flows: int) -> float:
        forwarding = ForwardingModel(
            self.cache, self.table, num_nodes=self.num_nodes
        )
        if self.design == "scalebricks":
            return forwarding.scalebricks_mpps(num_flows)
        if self.design == "full_duplication":
            return forwarding.full_duplication_mpps(num_flows)
        if self.design == "hash_partition":
            return forwarding.hash_partition_mpps(num_flows)
        raise ValueError(f"unknown design {self.design!r}")

    def _base_latency_us(self, num_flows: int) -> float:
        latency = LatencyModel(
            self.cache, self.table, num_nodes=self.num_nodes
        )
        if self.design == "scalebricks":
            return latency.scalebricks_us(num_flows)
        if self.design == "full_duplication":
            return latency.full_duplication_us(num_flows)
        if self.design == "hash_partition":
            return latency.hash_partition_us(num_flows)
        raise ValueError(f"unknown design {self.design!r}")

    def point(self, offered_mpps: float, num_flows: int) -> LoadPoint:
        """Evaluate one offered-load point."""
        if offered_mpps < 0:
            raise ValueError("offered load must be non-negative")
        capacity = self._capacity_mpps(num_flows)
        rho = offered_mpps / capacity
        if rho >= 1.0:
            return LoadPoint(
                offered_mpps=offered_mpps,
                utilization=rho,
                latency_us=None,
                loss_fraction=1.0 - capacity / offered_mpps,
            )
        service_us = 1.0 / capacity  # Mpps -> us per packet
        wait = md1_wait_us(service_us, rho)
        return LoadPoint(
            offered_mpps=offered_mpps,
            utilization=rho,
            latency_us=self._base_latency_us(num_flows) + wait,
            loss_fraction=0.0,
        )

    def sweep(
        self, num_flows: int, fractions: Optional[List[float]] = None
    ) -> List[LoadPoint]:
        """Evaluate a sweep of load fractions of the design's capacity."""
        if fractions is None:
            fractions = [0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 1.05]
        capacity = self._capacity_mpps(num_flows)
        return [self.point(f * capacity, num_flows) for f in fractions]

    def knee_mpps(
        self, num_flows: int, latency_budget_us: float
    ) -> float:
        """Max offered load meeting a latency budget (bisection)."""
        base = self._base_latency_us(num_flows)
        if latency_budget_us <= base:
            return 0.0
        capacity = self._capacity_mpps(num_flows)
        lo, hi = 0.0, capacity * (1 - 1e-9)
        for _ in range(64):
            mid = (lo + hi) / 2
            point = self.point(mid, num_flows)
            assert point.latency_us is not None
            if point.latency_us <= latency_budget_us:
                lo = mid
            else:
                hi = mid
        return lo
