"""Cache-hierarchy model (the Figures 7–10 substitution).

The paper's evaluation machines:

* SetSep micro-benchmarks (§6.1): dual Intel Xeon E5-2680, 20 MiB L3.
* Cluster macro-benchmarks (§6.2): Intel Xeon E5-2697 v2, 30 MiB L3, with a
  "bubble thread" variant reducing usable L3 to 15 MiB (Figure 9).

For a structure of ``working_set`` bytes accessed at uniformly random
locations, the probability that a line is resident in a cache of size ``s``
is ``min(1, s / working_set)`` (steady-state for an LRU-approximating cache
under uniform access).  Expected access latency is the level-by-level
mixture, and batched lookups overlap misses up to the memory-level
parallelism the paper's prefetch pipeline exploits (§5.1).

The scale tier adds a second model family here: the expected hit rate of
the direct-mapped hot-key cache (:mod:`repro.core.hotcache`) under Zipf
key popularity — :func:`zipf_probabilities` +
:func:`direct_mapped_hit_rate` — which the perf-lab benchmarks
cross-validate against the measured cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy."""

    name: str
    size_bytes: int
    latency_ns: float


@dataclass(frozen=True)
class CacheHierarchy:
    """An inclusive cache hierarchy over DRAM.

    Attributes:
        levels: cache levels ordered from fastest/smallest outward.
        dram_latency_ns: miss-everything latency.
        max_outstanding: memory-level parallelism bound — how many misses a
            core can overlap when software pipelines its loads (prefetch
            batching, §5.1).
    """

    levels: Tuple[CacheLevel, ...]
    dram_latency_ns: float = 90.0
    max_outstanding: int = 16

    def hit_fractions(self, working_set: int) -> List[Tuple[str, float, float]]:
        """Per-level (name, hit fraction, latency) plus the DRAM residue."""
        out: List[Tuple[str, float, float]] = []
        covered = 0.0
        for level in self.levels:
            resident = min(1.0, level.size_bytes / max(1, working_set))
            fraction = max(0.0, resident - covered)
            out.append((level.name, fraction, level.latency_ns))
            covered = max(covered, resident)
        out.append(("DRAM", max(0.0, 1.0 - covered), self.dram_latency_ns))
        return out

    def expected_access_ns(self, working_set: int) -> float:
        """Mean latency of one random access into ``working_set`` bytes."""
        return sum(
            fraction * latency
            for _, fraction, latency in self.hit_fractions(working_set)
        )

    def overlapped_access_ns(self, working_set: int, batch: int) -> float:
        """Mean per-access stall when ``batch`` accesses are pipelined.

        Software batching with prefetch lets up to ``max_outstanding``
        misses overlap; the portion of the latency above the L1 floor
        divides accordingly (an L1/L2 hit cannot be meaningfully hidden,
        which is why small structures gain nothing from batching —
        Figure 7's 500 K-entry series).  A batch of 1 gets no overlap (the
        paper's "w/o batching" series).
        """
        overlap = max(1, min(batch, self.max_outstanding))
        expected = self.expected_access_ns(working_set)
        floor = self.levels[0].latency_ns if self.levels else 0.0
        floor = min(floor, expected)
        return floor + (expected - floor) / overlap

    def with_l3(self, size_bytes: int) -> "CacheHierarchy":
        """A copy with the last (L3) level resized — the Fig. 9 bubble."""
        levels = list(self.levels)
        levels[-1] = replace(levels[-1], size_bytes=size_bytes)
        return CacheHierarchy(
            levels=tuple(levels),
            dram_latency_ns=self.dram_latency_ns,
            max_outstanding=self.max_outstanding,
        )


def _mib(n: float) -> int:
    return int(n * 1024 * 1024)


#: §6.1 micro-benchmark machine: dual Xeon E5-2680 (20 MiB L3 per socket).
XEON_E5_2680 = CacheHierarchy(
    levels=(
        CacheLevel("L1", 32 * 1024, 1.5),
        CacheLevel("L2", 256 * 1024, 4.0),
        CacheLevel("L3", _mib(20), 15.0),
    ),
)

#: §6.2 cluster machine: Xeon E5-2697 v2 (30 MiB L3).
XEON_E5_2697V2 = CacheHierarchy(
    levels=(
        CacheLevel("L1", 32 * 1024, 1.5),
        CacheLevel("L2", 256 * 1024, 4.0),
        CacheLevel("L3", _mib(30), 15.0),
    ),
)


# ----------------------------------------------------------------------
# Hot-key cache model (scale tier)
# ----------------------------------------------------------------------


def zipf_probabilities(num_keys: int, s: float = 1.0) -> "np.ndarray":
    """Request probability of each key under Zipf popularity.

    Rank ``i`` (1-based) is requested with probability proportional to
    ``i ** -s``; the returned array is normalised and ordered by rank.
    ``s`` may be any non-negative exponent (``s=0`` is uniform), unlike
    ``numpy.random.zipf`` which requires ``s > 1`` — subscriber traffic is
    usually modelled right at the ``s = 1.0`` boundary.
    """
    if num_keys < 1:
        raise ValueError("num_keys must be positive")
    if s < 0:
        raise ValueError("zipf exponent must be non-negative")
    weights = np.arange(1, num_keys + 1, dtype=np.float64) ** -s
    return weights / weights.sum()


def direct_mapped_hit_rate(probs: "np.ndarray", capacity: int) -> float:
    """Expected hit rate of a direct-mapped cache of ``capacity`` slots.

    Independent-reference model with uniform slot hashing: a request for
    key ``i`` hits iff the most recent request mapping to ``i``'s slot was
    also for ``i``.  With the other keys' mass spread evenly over the
    slots, that probability is ``p_i / (p_i + (1 - p_i) / C)``, giving

        hit_rate = sum_i  p_i^2 / (p_i + (1 - p_i) / C)

    This is a mean-field approximation (competitor mass is replaced by its
    expectation), so measured rates track it to within a few percent —
    the perf-lab cross-validation allows that tolerance.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    p = np.asarray(probs, dtype=np.float64)
    return float(np.sum(p * p / (p + (1.0 - p) / float(capacity))))


def zipf_sample(
    num_keys: int,
    count: int,
    s: float = 1.0,
    seed: int = 1,
) -> "np.ndarray":
    """Sample ``count`` key *ranks* (0-based) from the Zipf distribution.

    Inverse-CDF sampling over :func:`zipf_probabilities` — the trace
    generator for hot-key cache measurements; works for any ``s >= 0``.
    """
    probs = zipf_probabilities(num_keys, s)
    cdf = np.cumsum(probs)
    rng = np.random.default_rng(seed)
    u = rng.random(count)
    return np.searchsorted(cdf, u, side="right").clip(0, num_keys - 1)
