"""Cache-hierarchy model (the Figures 7–10 substitution).

The paper's evaluation machines:

* SetSep micro-benchmarks (§6.1): dual Intel Xeon E5-2680, 20 MiB L3.
* Cluster macro-benchmarks (§6.2): Intel Xeon E5-2697 v2, 30 MiB L3, with a
  "bubble thread" variant reducing usable L3 to 15 MiB (Figure 9).

For a structure of ``working_set`` bytes accessed at uniformly random
locations, the probability that a line is resident in a cache of size ``s``
is ``min(1, s / working_set)`` (steady-state for an LRU-approximating cache
under uniform access).  Expected access latency is the level-by-level
mixture, and batched lookups overlap misses up to the memory-level
parallelism the paper's prefetch pipeline exploits (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy."""

    name: str
    size_bytes: int
    latency_ns: float


@dataclass(frozen=True)
class CacheHierarchy:
    """An inclusive cache hierarchy over DRAM.

    Attributes:
        levels: cache levels ordered from fastest/smallest outward.
        dram_latency_ns: miss-everything latency.
        max_outstanding: memory-level parallelism bound — how many misses a
            core can overlap when software pipelines its loads (prefetch
            batching, §5.1).
    """

    levels: Tuple[CacheLevel, ...]
    dram_latency_ns: float = 90.0
    max_outstanding: int = 16

    def hit_fractions(self, working_set: int) -> List[Tuple[str, float, float]]:
        """Per-level (name, hit fraction, latency) plus the DRAM residue."""
        out: List[Tuple[str, float, float]] = []
        covered = 0.0
        for level in self.levels:
            resident = min(1.0, level.size_bytes / max(1, working_set))
            fraction = max(0.0, resident - covered)
            out.append((level.name, fraction, level.latency_ns))
            covered = max(covered, resident)
        out.append(("DRAM", max(0.0, 1.0 - covered), self.dram_latency_ns))
        return out

    def expected_access_ns(self, working_set: int) -> float:
        """Mean latency of one random access into ``working_set`` bytes."""
        return sum(
            fraction * latency
            for _, fraction, latency in self.hit_fractions(working_set)
        )

    def overlapped_access_ns(self, working_set: int, batch: int) -> float:
        """Mean per-access stall when ``batch`` accesses are pipelined.

        Software batching with prefetch lets up to ``max_outstanding``
        misses overlap; the portion of the latency above the L1 floor
        divides accordingly (an L1/L2 hit cannot be meaningfully hidden,
        which is why small structures gain nothing from batching —
        Figure 7's 500 K-entry series).  A batch of 1 gets no overlap (the
        paper's "w/o batching" series).
        """
        overlap = max(1, min(batch, self.max_outstanding))
        expected = self.expected_access_ns(working_set)
        floor = self.levels[0].latency_ns if self.levels else 0.0
        floor = min(floor, expected)
        return floor + (expected - floor) / overlap

    def with_l3(self, size_bytes: int) -> "CacheHierarchy":
        """A copy with the last (L3) level resized — the Fig. 9 bubble."""
        levels = list(self.levels)
        levels[-1] = replace(levels[-1], size_bytes=size_bytes)
        return CacheHierarchy(
            levels=tuple(levels),
            dram_latency_ns=self.dram_latency_ns,
            max_outstanding=self.max_outstanding,
        )


def _mib(n: float) -> int:
    return int(n * 1024 * 1024)


#: §6.1 micro-benchmark machine: dual Xeon E5-2680 (20 MiB L3 per socket).
XEON_E5_2680 = CacheHierarchy(
    levels=(
        CacheLevel("L1", 32 * 1024, 1.5),
        CacheLevel("L2", 256 * 1024, 4.0),
        CacheLevel("L3", _mib(20), 15.0),
    ),
)

#: §6.2 cluster machine: Xeon E5-2697 v2 (30 MiB L3).
XEON_E5_2697V2 = CacheHierarchy(
    levels=(
        CacheLevel("L1", 32 * 1024, 1.5),
        CacheLevel("L2", 256 * 1024, 4.0),
        CacheLevel("L3", _mib(30), 15.0),
    ),
)
