"""FIB-scaling analytics (paper §6.3, Figure 11).

The paper derives the total number of FIB entries an n-node cluster can
hold under each architecture, with ``M`` bits of table memory per node and
``entry_bits``-wide FIB entries (64 by default):

* **Full duplication**: every node stores everything, so the ensemble holds
  only ``M / entry_bits`` entries regardless of n.
* **Hash partitioning**: perfectly linear, ``n * M / entry_bits`` — but at
  the cost of a second internal hop per packet.
* **ScaleBricks**: each node stores ``F/n`` full entries plus a replicated
  GPT of ``F * (0.5 + 1.5 * log2 n)`` bits, giving::

      F(n) = M * n / (entry_bits + (0.5 + 1.5 * log2(n)) * n)

  which rises steeply, flattens, and eventually turns down — the paper's
  "after 32 nodes, adding more servers actually decreases the total number
  of FIB entries", with a peak advantage of ~5.7x over full duplication.

The GPT cost ``0.5 + 1.5 * ceil(log2 n)`` uses the implementation's whole
value bits (a 5-node cluster still stores 3-bit values); pass
``fractional_bits=True`` for the idealised ``log2 n`` curve the formula in
the paper prints.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def gpt_bits_per_key(num_nodes: int, fractional_bits: bool = False) -> float:
    """GPT storage per key for an ``num_nodes``-cluster (§6.3).

    0.5 bits for the two-level mapping plus 1.5 bits per value bit.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    if num_nodes == 1:
        return 0.0
    value_bits: float
    if fractional_bits:
        value_bits = math.log2(num_nodes)
    else:
        value_bits = float(max(1, math.ceil(math.log2(num_nodes))))
    return 0.5 + 1.5 * value_bits


def entries_full_duplication(memory_bits: float, entry_bits: int = 64) -> float:
    """Total entries with a fully replicated FIB — flat in n."""
    return memory_bits / entry_bits


def entries_hash_partition(
    memory_bits: float, num_nodes: int, entry_bits: int = 64
) -> float:
    """Total entries with hash partitioning — linear in n (2 hops)."""
    return num_nodes * memory_bits / entry_bits


def entries_scalebricks(
    memory_bits: float,
    num_nodes: int,
    entry_bits: int = 64,
    fractional_bits: bool = False,
) -> float:
    """Total entries with ScaleBricks: partial FIB + replicated GPT.

    Per node: ``(F/n) * entry_bits + F * gpt_bits = M``; solve for F.
    """
    gpt = gpt_bits_per_key(num_nodes, fractional_bits)
    denominator = entry_bits + gpt * num_nodes
    return memory_bits * num_nodes / denominator


def scaling_curve(
    memory_bits: float,
    max_nodes: int = 32,
    entry_bits: int = 64,
    fractional_bits: bool = False,
) -> List[Tuple[int, float, float, float]]:
    """(n, full-dup, hash-partition, ScaleBricks) entries for n in [1, max].

    The Figure 11 data series.
    """
    rows = []
    for n in range(1, max_nodes + 1):
        rows.append(
            (
                n,
                entries_full_duplication(memory_bits, entry_bits),
                entries_hash_partition(memory_bits, n, entry_bits),
                entries_scalebricks(
                    memory_bits, n, entry_bits, fractional_bits
                ),
            )
        )
    return rows


def peak_scaling_factor(
    max_nodes: int = 32,
    entry_bits: int = 64,
    fractional_bits: bool = False,
) -> Tuple[int, float]:
    """Best ScaleBricks-vs-full-duplication capacity ratio up to max_nodes.

    The paper reports "up to 5.7x more entries"; this returns the n at which
    the ratio peaks and the ratio itself (memory cancels out).
    """
    best_n, best_ratio = 1, 1.0
    for n in range(1, max_nodes + 1):
        ratio = entries_scalebricks(
            1.0, n, entry_bits, fractional_bits
        ) / entries_full_duplication(1.0, entry_bits)
        if ratio > best_ratio:
            best_n, best_ratio = n, ratio
    return best_n, best_ratio


def crossover_node_count(
    entry_bits: int = 64, fractional_bits: bool = True, limit: int = 4096
) -> int:
    """First n where adding a node *decreases* ScaleBricks capacity.

    The §6.3 observation that growth turns negative past ~32 nodes.
    Defaults to the idealised fractional-bit curve; with whole value bits
    the capacity also dips locally at every power-of-two boundary.
    """
    previous = 0.0
    for n in range(1, limit + 1):
        current = entries_scalebricks(1.0, n, entry_bits, fractional_bits)
        if current < previous:
            return n
        previous = current
    return limit
