"""Fitting the performance-model constants to the paper's curves.

The cache/pipeline model (`repro.model.perf`) carries calibration
constants (per-lookup CPU work, batching register pressure, DRAM latency,
memory-level parallelism).  Rather than leaving them as magic numbers,
this module fits them against anchor points digitised from the paper's
Figure 7 — so the calibration is explicit, reproducible and checkable:

* :data:`FIG7_ANCHORS` — (entries, batch, Mops) points read off the
  figure;
* :func:`fit_lookup_model` — least-squares fit of the model's free
  parameters to those anchors (scipy's Nelder-Mead, derivative-free since
  the model has cache-boundary kinks);
* :func:`evaluate_fit` — residual report for the current defaults.

The shipped defaults in ``repro.model.perf``/``cache`` were chosen from an
earlier run of this fit, rounded for readability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.model.cache import CacheHierarchy, CacheLevel

#: Anchor points digitised from Figure 7 (E5-2680, 16 threads, 2-bit
#: values): (num_entries, batch_size, throughput_mops).
FIG7_ANCHORS: Tuple[Tuple[int, int, float], ...] = (
    (500_000, 1, 700.0),
    (500_000, 17, 650.0),
    (8_000_000, 1, 420.0),
    (8_000_000, 17, 690.0),
    (64_000_000, 1, 190.0),
    (64_000_000, 3, 400.0),
    (64_000_000, 17, 520.0),
)

#: The paper machine's cache sizes (fixed; only latencies are fitted).
_L1 = 32 * 1024
_L2 = 256 * 1024
_L3 = 20 * 1024 * 1024


@dataclass(frozen=True)
class FittedParams:
    """Result of a calibration run."""

    cpu_ns: float
    pressure_ns: float
    l3_latency_ns: float
    dram_latency_ns: float
    max_outstanding: int
    rms_error_mops: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (for reports)."""
        return {
            "cpu_ns": self.cpu_ns,
            "pressure_ns": self.pressure_ns,
            "l3_latency_ns": self.l3_latency_ns,
            "dram_latency_ns": self.dram_latency_ns,
            "max_outstanding": float(self.max_outstanding),
            "rms_error_mops": self.rms_error_mops,
        }


def _model_mops(
    entries: int,
    batch: int,
    cpu_ns: float,
    pressure_ns: float,
    l3_ns: float,
    dram_ns: float,
    mlp: int,
    threads: int = 16,
    value_bits: int = 2,
) -> float:
    """The Figure 7 model with explicit parameters (no module constants)."""
    cache = CacheHierarchy(
        levels=(
            CacheLevel("L1", _L1, 1.5),
            CacheLevel("L2", _L2, 4.0),
            CacheLevel("L3", _L3, l3_ns),
        ),
        dram_latency_ns=dram_ns,
        max_outstanding=mlp,
    )
    choices_ws = int(entries * 0.5 / 8)
    groups_ws = int(entries * 1.5 * value_bits / 8)
    stall = cache.overlapped_access_ns(choices_ws, batch) + \
        cache.overlapped_access_ns(groups_ws, batch)
    ns = cpu_ns + stall + pressure_ns * max(0, batch - 1)
    return threads * 1e3 / ns


def _rms(params: Sequence[float], anchors, mlp: int) -> float:
    cpu_ns, pressure_ns, l3_ns, dram_ns = params
    if cpu_ns <= 0 or pressure_ns < 0 or l3_ns <= 0 or dram_ns <= l3_ns:
        return 1e9
    errors = [
        _model_mops(n, b, cpu_ns, pressure_ns, l3_ns, dram_ns, mlp) - mops
        for n, b, mops in anchors
    ]
    return float(np.sqrt(np.mean(np.square(errors))))


def fit_lookup_model(
    anchors: Sequence[Tuple[int, int, float]] = FIG7_ANCHORS,
    max_outstanding: int = 16,
    initial: Tuple[float, float, float, float] = (14.0, 0.35, 15.0, 90.0),
) -> FittedParams:
    """Fit (cpu, pressure, L3 latency, DRAM latency) to the anchors."""
    result = optimize.minimize(
        _rms,
        x0=np.asarray(initial),
        args=(tuple(anchors), max_outstanding),
        method="Nelder-Mead",
        options={"maxiter": 4000, "xatol": 1e-3, "fatol": 1e-3},
    )
    cpu_ns, pressure_ns, l3_ns, dram_ns = result.x
    return FittedParams(
        cpu_ns=float(cpu_ns),
        pressure_ns=float(pressure_ns),
        l3_latency_ns=float(l3_ns),
        dram_latency_ns=float(dram_ns),
        max_outstanding=max_outstanding,
        rms_error_mops=float(result.fun),
    )


def evaluate_fit(
    fitted: FittedParams,
    anchors: Sequence[Tuple[int, int, float]] = FIG7_ANCHORS,
) -> List[Tuple[int, int, float, float]]:
    """(entries, batch, paper Mops, fitted-model Mops) per anchor."""
    return [
        (
            n,
            b,
            mops,
            _model_mops(
                n,
                b,
                fitted.cpu_ns,
                fitted.pressure_ns,
                fitted.l3_latency_ns,
                fitted.dram_latency_ns,
                fitted.max_outstanding,
            ),
        )
        for n, b, mops in anchors
    ]


def default_fit_error() -> float:
    """RMS error of the shipped default constants against the anchors."""
    return _rms((14.0, 0.35, 15.0, 90.0), FIG7_ANCHORS, 16)
