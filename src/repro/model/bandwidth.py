"""Internal-fabric bandwidth requirements (paper §3.1).

The topology choice turns on bandwidth economics: to support R Gbps of
external traffic a VLB mesh needs 2R of aggregate internal bandwidth
(every packet crosses two internal links), while a switch-based design
needs only R — and the switch itself became cheap (~$9/Gbps for a
Mellanox 36-port 40 GbE box vs the RouteBricks-era estimate, an 80% drop).

These closed forms quantify that argument and the per-architecture fabric
load; ``bench_ablation_bandwidth`` checks them against the functional
simulation's per-link counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.architectures import Architecture


@dataclass(frozen=True)
class FabricRequirement:
    """Internal bandwidth needed to support a given external load."""

    architecture: Architecture
    external_gbps: float

    @property
    def internal_transits_per_packet(self) -> float:
        """Expected internal link crossings per packet.

        With N nodes and uniform flow placement a fraction ``(N-1)/N`` of
        packets leaves its ingress node; one-hop designs cross one link
        for those, two-hop designs cross two.  The closed forms below use
        the ``N -> inf`` limit (every packet forwards), matching §3.1's
        sizing argument, which must provision for the worst case anyway.
        """
        return float(self.architecture.internal_hops)

    @property
    def internal_gbps(self) -> float:
        """Aggregate internal bandwidth to provision."""
        return self.external_gbps * self.internal_transits_per_packet

    def per_node_internal_gbps(self, num_nodes: int) -> float:
        """Internal bandwidth per node at uniform traffic."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        return self.internal_gbps / num_nodes


def expected_transits(architecture: Architecture, num_nodes: int) -> float:
    """Exact expected internal transits per packet at N nodes.

    Uniform ingress and uniform handling nodes: a packet stays local with
    probability 1/N.  One-hop designs: ``(N-1)/N`` transits.  Two-hop
    designs: hash partitioning detours via the lookup node (local with
    probability 1/N at each step); VLB always takes two hops for remote
    packets.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    n = num_nodes
    remote = (n - 1) / n
    if architecture in (
        Architecture.FULL_DUPLICATION,
        Architecture.SCALEBRICKS,
    ):
        return remote
    if architecture is Architecture.ROUTEBRICKS_VLB:
        return 2.0 * remote
    # Hash partitioning: ingress -> lookup node (remote w.p. (n-1)/n) then
    # lookup node -> handler (remote w.p. (n-1)/n, independent placements).
    return remote + remote


def switch_cost_per_gbps(
    port_count: int = 36, port_gbps: int = 40, switch_price: float = 13_000.0
) -> float:
    """§3.1's switch economics: dollars per Gbps of switching capacity."""
    if port_count < 1 or port_gbps < 1:
        raise ValueError("ports and speed must be positive")
    return switch_price / (port_count * port_gbps)


def routebricks_era_cost_per_gbps() -> float:
    """The cost point the RouteBricks paper argued from (~5x higher)."""
    return switch_cost_per_gbps() / 0.2  # "80% lower than ... RouteBricks"
