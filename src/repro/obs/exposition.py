"""Prometheus text exposition of :class:`~repro.obs.metrics.MetricsRegistry`.

The operator control plane (:mod:`repro.ops`) serves ``GET /v1/metrics``
in the Prometheus text format (version 0.0.4) so any off-the-shelf
scraper can watch a running cluster.  The mapping is mechanical:

* dotted instrument names become underscore-separated metric names under
  a ``repro_`` prefix (``gateway.drops.acl`` →
  ``repro_gateway_drops_acl_total``);
* counters get the conventional ``_total`` suffix, gauges keep their
  name, histograms expand into cumulative ``_bucket{le="..."}`` series
  plus ``_sum`` and ``_count``;
* instrument descriptions become ``# HELP`` lines.

Several registries can be exposed as one page (the controller's and the
shadow gateway's, say): counters and gauges with the same name are
summed, histograms with identical bucket bounds are merged bucket-wise.
Output is fully sorted, so the same registry state always renders the
same bytes — the golden tests rely on that.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.metrics import MetricsRegistry

#: The content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """A valid Prometheus metric name for a dotted instrument name."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if prefix:
        flat = f"{prefix}_{flat}"
    if _INVALID_FIRST.match(flat):
        flat = f"_{flat}"
    return flat


def _fmt(value: Union[int, float]) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(
                value, "NaN"
            )
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _merge_counters(
    registries: Sequence[MetricsRegistry],
) -> Dict[str, Tuple[int, str]]:
    merged: Dict[str, Tuple[int, str]] = {}
    for registry in registries:
        for name, counter in registry._counters.items():
            total, description = merged.get(name, (0, ""))
            merged[name] = (
                total + counter.value,
                description or counter.description,
            )
    return merged


def _merge_gauges(
    registries: Sequence[MetricsRegistry],
) -> Dict[str, Tuple[float, str]]:
    merged: Dict[str, Tuple[float, str]] = {}
    for registry in registries:
        for name, gauge in registry._gauges.items():
            total, description = merged.get(name, (0, ""))
            merged[name] = (
                total + gauge.value,
                description or gauge.description,
            )
    return merged


def _merge_histograms(
    registries: Sequence[MetricsRegistry],
) -> Dict[str, Tuple[Tuple[float, ...], List[int], float, int, str]]:
    merged: Dict[
        str, Tuple[Tuple[float, ...], List[int], float, int, str]
    ] = {}
    for registry in registries:
        for name, histogram in registry._histograms.items():
            bounds = histogram._bounds
            counts = [int(c) for c in histogram._counts]
            found = merged.get(name)
            if found is None:
                merged[name] = (
                    bounds, counts, histogram.sum, histogram.count,
                    histogram.description,
                )
                continue
            old_bounds, old_counts, old_sum, old_count, description = found
            if old_bounds != bounds:
                # Incompatible shapes: keep the first registration.
                continue
            merged[name] = (
                bounds,
                [a + b for a, b in zip(old_counts, counts)],
                old_sum + histogram.sum,
                old_count + histogram.count,
                description or histogram.description,
            )
    return merged


def prometheus_text(
    registries: Union[MetricsRegistry, Iterable[MetricsRegistry]],
    prefix: str = "repro",
) -> str:
    """Render one or more registries as a Prometheus exposition page."""
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    registries = list(registries)
    lines: List[str] = []

    counters = _merge_counters(registries)
    for name in sorted(counters):
        value, description = counters[name]
        flat = metric_name(name, prefix) + "_total"
        if description:
            lines.append(f"# HELP {flat} {_escape_help(description)}")
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_fmt(value)}")

    gauges = _merge_gauges(registries)
    for name in sorted(gauges):
        value, description = gauges[name]
        flat = metric_name(name, prefix)
        if description:
            lines.append(f"# HELP {flat} {_escape_help(description)}")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(value)}")

    histograms = _merge_histograms(registries)
    for name in sorted(histograms):
        bounds, counts, total, count, description = histograms[name]
        flat = metric_name(name, prefix)
        if description:
            lines.append(f"# HELP {flat} {_escape_help(description)}")
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, bucket in zip(bounds, counts):
            cumulative += bucket
            lines.append(
                f'{flat}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        cumulative += counts[len(bounds)]
        lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{flat}_sum {_fmt(float(total))}")
        lines.append(f"{flat}_count {count}")

    return "\n".join(lines) + "\n" if lines else ""
