"""Observability: metrics registry and per-stage latency tracing.

The reproduction's hot paths (SetSep lookups, cluster routing, the EPC
gateway, the update protocol, the discrete simulation) all accept an
injectable :class:`MetricsRegistry` and default to the shared
:data:`NULL_REGISTRY`, so instrumentation costs nothing until a caller
opts in::

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    gateway = EpcGateway(..., registry=registry)
    ...
    print(registry.to_json(indent=2))

``repro stats`` and ``repro gateway --metrics-json`` expose the same
snapshot from the command line; :func:`prometheus_text` renders one or
more registries in the Prometheus text exposition format (served by the
operator API's ``GET /v1/metrics``).
"""

from repro.obs.exposition import CONTENT_TYPE, metric_name, prometheus_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_US,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    resolve_registry,
)
from repro.obs.trace import Span, span_histogram_name

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "span_histogram_name",
    "resolve_registry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_US",
    "CONTENT_TYPE",
    "metric_name",
    "prometheus_text",
]
