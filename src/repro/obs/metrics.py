"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The paper's headline results are all *measurements* — lookup throughput
(Fig. 7), forwarding rate (Fig. 8), update latency (§6.2), load balance
(Table 1) — so the reproduction's data path must be observable without
perturbing it.  This module provides the substrate:

* :class:`Counter` / :class:`Gauge` — one attribute increment per event;
* :class:`Histogram` — fixed upper-bound buckets backed by a NumPy counts
  array, so the hot-path cost is one array increment (and batch
  observations are a single ``searchsorted`` + ``bincount``);
* :class:`MetricsRegistry` — the named instrument namespace with
  ``snapshot()`` / ``to_json()`` export and ``span()`` tracing
  (see :mod:`repro.obs.trace`);
* :class:`NullRegistry` / :data:`NULL_REGISTRY` — the shared disabled
  registry every instrumented component defaults to, making
  instrumentation zero-cost until a caller injects a real registry.

Instrumented components take ``registry`` as a constructor argument and
cache their instrument handles once, so the per-event cost with the null
registry is a single no-op method call.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]

#: Default histogram bucket upper bounds (unit-agnostic; spans use
#: :data:`LATENCY_BUCKETS_US`).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000,
    2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
)

#: Span-duration buckets in microseconds: 100 ns to 1 s.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000,
)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Count ``amount`` more events."""
        self._value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (queue depth, table size, ...)."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value: Number = 0

    @property
    def value(self) -> Number:
        """Current level."""
        return self._value

    def set(self, value: Number) -> None:
        """Set the level."""
        self._value = value

    def inc(self, amount: Number = 1) -> None:
        """Raise the level."""
        self._value += amount

    def dec(self, amount: Number = 1) -> None:
        """Lower the level."""
        self._value -= amount

    def reset(self) -> None:
        """Return the level to zero."""
        self._value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    Buckets are cumulative-style upper bounds (``value <= bound`` lands in
    that bucket); one extra overflow bucket catches everything beyond the
    last bound.  The counts live in a NumPy array so a scalar observation
    is one array increment and a batch observation is fully vectorised.
    """

    __slots__ = (
        "name", "description", "_bounds", "_counts",
        "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.name = name
        self.description = description
        self._bounds = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    # -- observation ---------------------------------------------------

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self._counts[bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def observe_many(self, values: Union[Sequence[Number], np.ndarray]) -> None:
        """Record a batch of observations in one vectorised pass."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        slots = np.searchsorted(self._bounds, arr, side="left")
        self._counts += np.bincount(slots, minlength=len(self._counts))
        self._count += int(arr.size)
        self._sum += float(arr.sum())
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))

    # -- reading -------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Average observed value (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observed value (0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observed value (0 when empty)."""
        return self._max if self._count else 0.0

    @property
    def bucket_counts(self) -> Tuple[Tuple[Optional[float], int], ...]:
        """(upper bound, count) pairs; the overflow bound is ``None``."""
        bounds: Tuple[Optional[float], ...] = self._bounds + (None,)
        return tuple(zip(bounds, (int(c) for c in self._counts)))

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries.

        Returns the upper bound of the bucket holding the ``q``-th
        observation (the observed maximum for the overflow bucket) — the
        usual fixed-bucket estimate, good to one bucket's resolution.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._count:
            return 0.0
        target = q * self._count
        cumulative = 0
        for bound, count in zip(self._bounds, self._counts):
            cumulative += int(count)
            if cumulative >= target:
                return bound
        return self.max

    def reset(self) -> None:
        """Drop all observations."""
        self._counts[:] = 0
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready description of the histogram state."""
        return {
            "buckets": list(self._bounds),
            "counts": [int(c) for c in self._counts],
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self._count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """A named namespace of instruments with snapshot/JSON export.

    Instruments are get-or-create by name (dots conventionally separate
    subsystem/direction, e.g. ``gateway.downstream.packets_in``); a name
    always refers to one instrument of one kind.  Components cache the
    handles they use at construction time, so the registry dict is only
    touched once per instrument, not per event.
    """

    #: Real registries record; :class:`NullRegistry` overrides to False so
    #: components can skip optional work entirely when disabled.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._span_stack: list = []

    # -- instrument access ---------------------------------------------

    def _check_unique(self, name: str, kind: Dict[str, object]) -> None:
        for existing in (self._counters, self._gauges, self._histograms):
            if existing is not kind and name in existing:
                raise ValueError(
                    f"metric name {name!r} already registered as a different kind"
                )

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        found = self._counters.get(name)
        if found is None:
            self._check_unique(name, self._counters)
            found = self._counters[name] = Counter(name, description)
        return found

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        found = self._gauges.get(name)
        if found is None:
            self._check_unique(name, self._gauges)
            found = self._gauges[name] = Gauge(name, description)
        return found

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        found = self._histograms.get(name)
        if found is None:
            self._check_unique(name, self._histograms)
            found = self._histograms[name] = Histogram(name, buckets, description)
        return found

    def span(self, name: str) -> "Span":
        """A context manager timing one stage into a latency histogram.

        See :class:`repro.obs.trace.Span`; nested spans produce dotted
        names (``downstream.dpe``) recorded as ``span.<name>_us``.
        """
        from repro.obs.trace import Span

        return Span(self, name)

    # -- export --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """All counter values by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready dict of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document (the CLI's ``--json`` schema)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument (names and handles stay valid)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class _NullCounter(Counter):
    """A counter that never counts (shared by all null-registry users)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    """A gauge pinned at zero."""

    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass


class _NullHistogram(Histogram):
    """A histogram that records nothing."""

    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass

    def observe_many(self, values: Union[Sequence[Number], np.ndarray]) -> None:
        pass


class _NullSpan:
    """A reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Instrumented components default to :data:`NULL_REGISTRY`, so with no
    registry injected the only per-event cost is a no-op method call on a
    shared singleton — nothing is allocated, nothing is recorded.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_span = _NullSpan()

    def counter(self, name: str, description: str = "") -> Counter:
        return self._null_counter

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> Histogram:
        return self._null_histogram

    def span(self, name: str) -> "_NullSpan":  # type: ignore[override]
        return self._null_span

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The module-level disabled registry instrumented components default to.
NULL_REGISTRY = NullRegistry()


def resolve_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """``registry`` if given, else the shared :data:`NULL_REGISTRY`."""
    return registry if registry is not None else NULL_REGISTRY
