"""Lightweight per-stage latency tracing.

A :class:`Span` times one named stage of the data path (ingress, SetSep
lookup, fabric hop, DPE, egress) and records the wall-clock duration in
microseconds into a registry histogram named ``span.<name>_us``.  Spans
nest: a span opened while another is active takes the active span's name
as a dotted prefix, so::

    with registry.span("downstream"):
        with registry.span("dpe"):
            ...

records into ``span.downstream_us`` and ``span.downstream.dpe_us``.

The registry keeps one span stack per registry instance (the reproduction
is single-threaded per data path); a span's histogram is resolved on exit
through the registry's get-or-create path, so the first packet pays the
dict insert and later packets pay one dict hit plus a perf-counter pair.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.metrics import LATENCY_BUCKETS_US, Histogram, MetricsRegistry


class Span:
    """Times one ``with`` block into ``span.<dotted name>_us``."""

    __slots__ = ("registry", "name", "full_name", "_started")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self.registry = registry
        self.name = name
        self.full_name: Optional[str] = None
        self._started = 0.0

    def __enter__(self) -> "Span":
        stack = self.registry._span_stack
        self.full_name = f"{stack[-1]}.{self.name}" if stack else self.name
        stack.append(self.full_name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        elapsed_us = (time.perf_counter() - self._started) * 1e6
        self.registry._span_stack.pop()
        self.histogram().observe(elapsed_us)
        return False

    def histogram(self) -> Histogram:
        """The latency histogram this span records into."""
        name = self.full_name if self.full_name is not None else self.name
        return self.registry.histogram(
            f"span.{name}_us", buckets=LATENCY_BUCKETS_US
        )

    def __repr__(self) -> str:
        return f"Span({self.full_name or self.name})"


def span_histogram_name(name: str) -> str:
    """Registry histogram name for a (dotted) span name."""
    return f"span.{name}_us"
