"""SetSep and its building blocks (paper §4–§5.1).

Public surface:

* :class:`repro.core.setsep.SetSep` — the queryable structure.
* :func:`repro.core.builder.build` — construction (serial or parallel).
* :class:`repro.core.params.SetSepParams` — the "x+y" configuration.
* :class:`repro.core.delta.GroupDelta` — the broadcast update unit.
"""

from repro.core.builder import ConstructionStats, DuplicateKeyError, build
from repro.core.delta import DeltaWireError, GroupDelta
from repro.core.fallback import FallbackTable
from repro.core.params import SetSepParams
from repro.core.setsep import SetSep
from repro.core.serialize import (
    SnapshotError,
    dump,
    dump_bytes,
    dumps,
    fingerprint,
    load,
    load_bytes,
    loads,
)

__all__ = [
    "SetSep",
    "SetSepParams",
    "GroupDelta",
    "DeltaWireError",
    "FallbackTable",
    "ConstructionStats",
    "DuplicateKeyError",
    "build",
    "SnapshotError",
    "dump",
    "dump_bytes",
    "dumps",
    "fingerprint",
    "load",
    "load_bytes",
    "loads",
]
