"""Hot-key lookup cache in front of the GPT (scale tier, CRAM lens).

Real subscriber traffic is heavily skewed — a Zipf(1.0) population sends
most packets from a tiny fraction of TEIDs — and at 16M+ keys the
separator's working set falls out of L2/L3, which is exactly the lookup
cliff :mod:`repro.model.cache` models (CRAM, arXiv:2503.03003).  This
module short-circuits that cliff with a fixed-capacity, direct-mapped,
array-backed cache of fully-resolved ``key -> node`` answers:

* **probe** is one ``splitmix64``-derived slot hash plus three small
  gathers — far cheaper than the separator's multi-gather probe, and the
  cached value is post-``mod num_nodes`` so hits skip that too;
* **fill** happens per batch for the missing keys only, tagged with each
  key's separator *group* id;
* **invalidation** is delta-driven: when a group is rebuilt or a broadcast
  record is applied, every cached entry tagged with that group is dropped
  (all keys a ``GroupDelta``/``OthelloUpdate`` can affect live in its own
  group, so group-tag invalidation is exact).

The cache is deliberately direct-mapped with power-of-two capacity so the
measured hit rate can be cross-validated against the independent-reference
prediction in :func:`repro.model.cache.direct_mapped_hit_rate`.

Attach one with :meth:`repro.gpt.gpt.GlobalPartitionTable.attach_cache`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core import hashfamily
from repro.core.params import GROUPS_PER_BLOCK
from repro.obs.metrics import MetricsRegistry, resolve_registry

#: Hash stream dedicated to cache slot selection (independent of the
#: separator's bucket/group streams, so slot collisions are uncorrelated
#: with group membership).
_STREAM_SLOT = hashfamily.derive_stream("hotcache/slot")


def record_group(record) -> int:
    """Global group id invalidated by an update record.

    ``GroupDelta`` carries ``group_id`` directly; ``OthelloUpdate`` carries
    ``block_id`` and Othello's update domain is the whole block, surfaced
    as the block's first group id (matching ``groups_of``).
    """
    group = getattr(record, "group_id", None)
    if group is not None:
        return int(group)
    return int(record.block_id) * GROUPS_PER_BLOCK


class HotKeyCache:
    """Direct-mapped cache of resolved GPT lookups.

    ``capacity`` is rounded up to a power of two.  Four parallel arrays
    (key, value, group tag, valid) make probe/fill/invalidate pure NumPy
    gathers with no Python-level per-key work.
    """

    def __init__(
        self, capacity: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        bits = max(1, int(capacity - 1).bit_length())
        self.capacity = 1 << bits
        self._shift = np.uint64(64 - bits)
        self.keys = np.zeros(self.capacity, dtype=np.uint64)
        self.values = np.zeros(self.capacity, dtype=np.uint32)
        self.groups = np.zeros(self.capacity, dtype=np.uint32)
        self.valid = np.zeros(self.capacity, dtype=bool)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.bind_registry(registry)

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry (``None`` selects the null registry)."""
        self.registry = resolve_registry(registry)
        self._m_hits = self.registry.counter(
            "hotcache.hits", "GPT lookups answered by the hot-key cache"
        )
        self._m_misses = self.registry.counter(
            "hotcache.misses", "GPT lookups that fell through to the separator"
        )
        self._m_invalidations = self.registry.counter(
            "hotcache.invalidations", "cached entries dropped by update records"
        )

    def _slots(self, keys: np.ndarray) -> np.ndarray:
        """Slot index of each canonical key (top bits of the slot hash)."""
        return (
            hashfamily.keyed_hash(keys, _STREAM_SLOT) >> self._shift
        ).astype(np.int64)

    def probe(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batched probe: ``(values, hit_mask)`` for canonical ``keys``.

        ``values`` entries where ``hit_mask`` is False are unspecified.
        """
        slots = self._slots(keys)
        hit = self.valid[slots] & (self.keys[slots] == keys)
        values = self.values[slots]
        nhits = int(np.count_nonzero(hit))
        self.hits += nhits
        self.misses += keys.size - nhits
        self._m_hits.inc(nhits)
        self._m_misses.inc(keys.size - nhits)
        return values, hit

    def fill(
        self, keys: np.ndarray, values: np.ndarray, groups: np.ndarray
    ) -> None:
        """Install resolved answers (direct-mapped: later duplicates win)."""
        if keys.size == 0:
            return
        slots = self._slots(keys)
        self.keys[slots] = keys
        self.values[slots] = values
        self.groups[slots] = groups
        self.valid[slots] = True

    def invalidate_group(self, group_id: int) -> int:
        """Drop every entry tagged with ``group_id``; returns the count."""
        stale = self.valid & (self.groups == np.uint32(group_id))
        count = int(np.count_nonzero(stale))
        if count:
            self.valid[stale] = False
            self.invalidations += count
            self._m_invalidations.inc(count)
        return count

    def invalidate_all(self) -> int:
        """Drop every entry (state swap / membership change)."""
        count = int(np.count_nonzero(self.valid))
        self.valid[:] = False
        if count:
            self.invalidations += count
            self._m_invalidations.inc(count)
        return count

    @property
    def filled(self) -> int:
        """Currently valid entries."""
        return int(np.count_nonzero(self.valid))

    def hit_rate(self) -> float:
        """Observed hit fraction since creation (0.0 before any probe)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Union[int, float]]:
        """JSON-ready stats for status reports and the CLI."""
        return {
            "capacity": self.capacity,
            "filled": self.filled,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
        }

    def __repr__(self) -> str:
        return (
            f"HotKeyCache(capacity={self.capacity}, filled={self.filled}, "
            f"hit_rate={self.hit_rate():.3f})"
        )
