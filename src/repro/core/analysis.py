"""Analytical underpinnings of SetSep (paper §4.1–§4.2).

The paper derives SetSep's space bound from the geometric distribution of
the successful hash-function index — Eq. (1): storing a binary separator
for n keys costs ~n bits on average, independent of key size.  This module
provides those closed forms so benchmarks and tests can overlay analytic
curves on the empirical ones:

* success probability of one candidate function, with and without the
  m-slot bit array;
* expected iterations (the Fig. 3a curve, analytically);
* the index entropy of Eq. (1);
* balls-into-bins bounds for the §4.4 load-balancing discussion.
"""

from __future__ import annotations

import math
from functools import lru_cache


def success_probability_direct(n: int) -> float:
    """P[a candidate separates n keys] without a bit array: (1/2)^n.

    Each key must map directly to its own binary value.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return 0.5**n


@lru_cache(maxsize=None)
def success_probability_array(n: int, m: int) -> float:
    """P[a candidate separates n keys] with an m-slot bit array.

    Keys land uniformly on m slots; the candidate works iff no slot
    receives two keys with different values.  With each key's value an
    independent fair bit, a slot of k >= 1 keys is consistent with
    probability 2^(1-k), so conditioning on the occupancy profile:

        P = sum over compositions of n into m slots of
            multinomial(n; k_1..k_m) / m^n * prod_j 2^(1-k_j) for k_j>0

    computed here by dynamic programming over slots.
    """
    if n < 0 or m < 1:
        raise ValueError("need n >= 0 and m >= 1")
    if n == 0:
        return 1.0
    # dp[j] = sum over ways to place j keys into the slots processed so
    # far of (multinomial weight) * (consistency probability).
    dp = [0.0] * (n + 1)
    dp[0] = 1.0
    for _ in range(m):
        new = [0.0] * (n + 1)
        for placed in range(n + 1):
            if dp[placed] == 0.0:
                continue
            remaining = n - placed
            for k in range(remaining + 1):
                weight = math.comb(remaining, k)
                consistency = 1.0 if k == 0 else 2.0 ** (1 - k)
                new[placed + k] += dp[placed] * weight * consistency
        dp = new
    return dp[n] / float(m) ** n


def expected_iterations_analytic(n: int, m: int) -> float:
    """Mean candidates tried until success: 1/p (geometric)."""
    p = success_probability_array(n, m)
    if p <= 0.0:
        return math.inf
    return 1.0 / p


def failure_probability(n: int, m: int, max_index: int) -> float:
    """P[no candidate below ``max_index`` works] = (1-p)^max_index.

    The analytic fallback rate per group (Table 1's fallback column).
    """
    p = success_probability_array(n, m)
    return (1.0 - p) ** max_index


def index_entropy_eq1(n: int) -> float:
    """Eq. (1): entropy of the geometric index for direct separation.

    ``-((1-p) log2(1-p) + p log2 p) / p ~ -log2 p = n`` bits.
    """
    p = success_probability_direct(n)
    if p in (0.0, 1.0):
        return 0.0
    return (-(1 - p) * math.log2(1 - p) - p * math.log2(p)) / p


def index_entropy_bits_analytic(n: int, m: int) -> float:
    """Entropy of the geometric index with an m-slot array."""
    p = success_probability_array(n, m)
    if p in (0.0, 1.0):
        return 0.0
    return (-(1 - p) * math.log2(1 - p) - p * math.log2(p)) / p


def direct_hash_max_load(num_keys: int, num_groups: int) -> float:
    """Expected maximum group size under direct hashing (§4.4 strawman).

    Classic balls-into-bins estimate for the heavily-loaded regime
    (mean load mu = n/m >> log m):

        max ~ mu + sqrt(2 * mu * ln m)
    """
    if num_keys < 0 or num_groups < 1:
        raise ValueError("need num_keys >= 0 and num_groups >= 1")
    if num_keys == 0:
        return 0.0
    mu = num_keys / num_groups
    return mu + math.sqrt(2.0 * mu * math.log(max(2, num_groups)))


def bits_per_key_breakdown(
    n_per_group: float, index_bits: int, array_bits: int, value_bits: int
) -> dict:
    """Decompose the storage cost the way Table 1 accounts for it."""
    per_group = (index_bits + array_bits) * value_bits
    return {
        "group_bits_per_key": per_group / n_per_group,
        "mapping_bits_per_key": 0.5,
        "total_bits_per_key": per_group / n_per_group + 0.5,
    }
