"""Binary snapshots of separator structures (SetSep and Othello).

The paper's construction/exchange step (§4.5) ships whole separator slices
between nodes, and a production appliance wants to persist the GPT across
restarts instead of rebuilding from the RIB.  This module defines a small
versioned binary format for SetSep:

    magic "SSEP" | version u16 | header | arrays

Header fields (little-endian): index_bits, array_bits, value_bits u8;
num_blocks u32; fallback count u32.  Arrays follow in fixed order:
choices (u8), indices (u16), arrays (u32), failed bitmap (packed u8),
fallback entries (u64 key + u16 value each).  Integrity is guarded by a
trailing CRC32.

This module is also the front door for every separator backend: dumping
dispatches on the instance's ``backend`` attribute and loading on the
snapshot magic, so runtime daemons, the replica-divergence audits, and the
CLI handle either payload kind ("SSEP" here, "OTHL" in
:mod:`repro.othello.codec`) without backend knowledge.  Both kinds share
the trailing-CRC32 convention, which keeps :func:`fingerprint` uniform.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO

import numpy as np

from repro.core.fallback import FallbackTable
from repro.core.params import BUCKETS_PER_BLOCK, GROUPS_PER_BLOCK, SetSepParams
from repro.core.setsep import SetSep

MAGIC = b"SSEP"
VERSION = 1

_HEADER = struct.Struct("<4sHBBBBII")


class SnapshotError(ValueError):
    """Raised when a snapshot is malformed or fails integrity checks."""


def dump_bytes(setsep) -> bytes:
    """Serialise a separator to a self-describing byte string.

    Accepts any registered backend; non-SetSep instances are routed to
    their own codec by the ``backend`` attribute.
    """
    if getattr(setsep, "backend", "setsep") == "othello":
        from repro.othello import codec as othello_codec

        return othello_codec.dump_bytes(setsep)
    params = setsep.params
    fallback_items = sorted(setsep.fallback.items())
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        params.index_bits,
        params.array_bits,
        params.value_bits,
        0,  # reserved
        setsep.num_blocks,
        len(fallback_items),
    )
    failed_packed = np.packbits(setsep.failed_groups.astype(np.uint8))
    body = b"".join(
        [
            header,
            setsep.choices.astype("<u1").tobytes(),
            setsep.indices.astype("<u2").tobytes(),
            setsep.arrays.astype("<u4").tobytes(),
            failed_packed.tobytes(),
            b"".join(
                struct.pack("<QH", key, value)
                for key, value in fallback_items
            ),
        ]
    )
    return body + struct.pack("<I", zlib.crc32(body))


def load_bytes(data: bytes):
    """Reconstruct a separator from :func:`dump_bytes` output.

    Dispatches on the snapshot magic ("SSEP" -> SetSep, "OTHL" ->
    Othello), so callers bootstrapping from a byte payload need no
    out-of-band backend agreement.

    Raises:
        SnapshotError: on bad magic, version, truncation or CRC mismatch.
    """
    from repro.othello import codec as othello_codec

    if data[:4] == othello_codec.MAGIC:
        return othello_codec.load_bytes(data)
    if len(data) < _HEADER.size + 4:
        raise SnapshotError("snapshot truncated")
    body, crc_raw = data[:-4], data[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_raw)[0]:
        raise SnapshotError("snapshot CRC mismatch")

    (
        magic,
        version,
        index_bits,
        array_bits,
        value_bits,
        _reserved,
        num_blocks,
        fallback_count,
    ) = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise SnapshotError("not a SetSep snapshot")
    if version != VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")

    params = SetSepParams(
        index_bits=index_bits, array_bits=array_bits, value_bits=value_bits
    )
    num_buckets = num_blocks * BUCKETS_PER_BLOCK
    num_groups = num_blocks * GROUPS_PER_BLOCK

    offset = _HEADER.size
    sections = [
        ("choices", num_buckets, np.dtype("<u1"), (num_buckets,)),
        ("indices", num_groups * value_bits * 2, np.dtype("<u2"),
         (num_groups, value_bits)),
        ("arrays", num_groups * value_bits * 4, np.dtype("<u4"),
         (num_groups, value_bits)),
        ("failed", (num_groups + 7) // 8, np.dtype("<u1"),
         ((num_groups + 7) // 8,)),
    ]
    arrays = {}
    for name, nbytes, dtype, shape in sections:
        end = offset + nbytes
        if end > len(body):
            raise SnapshotError(f"snapshot truncated in {name}")
        arrays[name] = np.frombuffer(
            body[offset:end], dtype=dtype
        ).reshape(shape).copy()
        offset = end

    fallback = FallbackTable()
    entry = struct.Struct("<QH")
    for _ in range(fallback_count):
        end = offset + entry.size
        if end > len(body):
            raise SnapshotError("snapshot truncated in fallback entries")
        key, value = entry.unpack_from(body, offset)
        fallback.insert(key, value)
        offset = end
    if offset != len(body):
        raise SnapshotError("trailing bytes after fallback entries")

    failed = np.unpackbits(arrays["failed"])[:num_groups].astype(bool)
    return SetSep(
        params=params,
        num_blocks=num_blocks,
        choices=arrays["choices"].astype(np.uint8),
        indices=arrays["indices"].astype(np.uint16),
        arrays=arrays["arrays"].astype(np.uint32),
        failed_groups=failed,
        fallback=fallback,
    )


def load_view(buf, verify: bool = False):
    """Reconstruct a separator whose big arrays are *views* into ``buf``.

    This is the attach path for shared-memory snapshots
    (:mod:`repro.core.shm`): ``buf`` is typically a copy-on-write ``mmap``
    of a published segment, and the returned separator's ``choices`` /
    ``indices`` / ``arrays`` sections alias it directly instead of being
    copied onto the heap.  In-place delta writes then privatise only the
    touched pages.  Small sections (failed bitmap, fallback entries) are
    still materialised — they are rebuilt into Python-side structures
    anyway.

    The CRC is *not* recomputed unless ``verify=True``: a cold attach must
    not fault in (and checksum) the whole mapping.  Callers that need
    integrity without the full pass compare :func:`fingerprint_bytes` of
    the buffer against an expected fingerprint carried out of band.

    Dispatches on magic like :func:`load_bytes`.
    """
    from repro.othello import codec as othello_codec

    mv = memoryview(buf)
    if len(mv) < 8:
        raise SnapshotError("snapshot truncated")
    if bytes(mv[:4]) == othello_codec.MAGIC:
        return othello_codec.load_view(mv, verify=verify)
    if verify and zlib.crc32(mv[:-4]) != struct.unpack("<I", mv[-4:])[0]:
        raise SnapshotError("snapshot CRC mismatch")
    body = mv[:-4]
    if len(body) < _HEADER.size:
        raise SnapshotError("snapshot truncated")
    (
        magic,
        version,
        index_bits,
        array_bits,
        value_bits,
        _reserved,
        num_blocks,
        fallback_count,
    ) = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise SnapshotError("not a SetSep snapshot")
    if version != VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")

    params = SetSepParams(
        index_bits=index_bits, array_bits=array_bits, value_bits=value_bits
    )
    num_buckets = num_blocks * BUCKETS_PER_BLOCK
    num_groups = num_blocks * GROUPS_PER_BLOCK

    offset = _HEADER.size
    sections = [
        ("choices", num_buckets, np.dtype("<u1"), (num_buckets,)),
        ("indices", num_groups * value_bits * 2, np.dtype("<u2"),
         (num_groups, value_bits)),
        ("arrays", num_groups * value_bits * 4, np.dtype("<u4"),
         (num_groups, value_bits)),
        ("failed", (num_groups + 7) // 8, np.dtype("<u1"),
         ((num_groups + 7) // 8,)),
    ]
    arrays = {}
    for name, nbytes, dtype, shape in sections:
        end = offset + nbytes
        if end > len(body):
            raise SnapshotError(f"snapshot truncated in {name}")
        # No .copy(): the array aliases the caller's buffer.
        arrays[name] = np.frombuffer(body[offset:end], dtype=dtype).reshape(shape)
        offset = end

    fallback = FallbackTable()
    if fallback_count:
        entry_dtype = np.dtype([("key", "<u8"), ("value", "<u2")])
        end = offset + fallback_count * entry_dtype.itemsize
        if end > len(body):
            raise SnapshotError("snapshot truncated in fallback entries")
        entries = np.frombuffer(body[offset:end], dtype=entry_dtype)
        fallback.insert_many(
            (int(k), int(v)) for k, v in zip(entries["key"], entries["value"])
        )
        offset = end
    if offset != len(body):
        raise SnapshotError("trailing bytes after fallback entries")

    failed = np.unpackbits(np.asarray(arrays["failed"]))[:num_groups].astype(bool)
    return SetSep(
        params=params,
        num_blocks=num_blocks,
        choices=arrays["choices"],
        indices=arrays["indices"],
        arrays=arrays["arrays"],
        failed_groups=failed,
        fallback=fallback,
    )


def fingerprint(setsep) -> int:
    """CRC32 identifying a separator's exact state (replica comparison).

    Works for every backend — both payload kinds end in their body CRC.

    This is the snapshot's own integrity CRC — crc32 over the snapshot
    *body*.  Never take crc32 of a whole :func:`dumps` string to compare
    replicas: a CRC-trailed message is its own checksum's fixed point,
    so crc32(body ‖ crc32(body)) is the same constant (0x2144DF1C) for
    every valid snapshot and such a comparison always "passes".
    """
    return fingerprint_bytes(dump_bytes(setsep))


def fingerprint_bytes(data) -> int:
    """Fingerprint of an already-serialised snapshot: its trailing CRC32.

    Both payload kinds end in crc32(body), so the last four bytes *are*
    the replica fingerprint — callers holding the snapshot bytes (status
    reports, shared-memory attaches) read it instead of re-serialising
    or re-checksumming the body.
    """
    mv = memoryview(data)
    if len(mv) < 4:
        raise SnapshotError("snapshot truncated")
    return struct.unpack("<I", mv[-4:])[0]


def dumps(setsep) -> bytes:
    """Serialise a separator to bytes (wire-caller convenience name).

    Alias of :func:`dump_bytes`, mirroring the ``json``/``pickle``
    naming so callers shipping snapshots over sockets don't reach for
    the stream API and a throwaway buffer.
    """
    return dump_bytes(setsep)


def loads(data: bytes):
    """Reconstruct a separator from :func:`dumps` output.

    Alias of :func:`load_bytes`; raises :class:`SnapshotError` on bad
    magic, version, truncation or CRC mismatch.
    """
    return load_bytes(data)


def dump(setsep, stream: BinaryIO) -> None:
    """Write a snapshot to a binary stream."""
    stream.write(dump_bytes(setsep))


def load(stream: BinaryIO):
    """Read a snapshot from a binary stream."""
    return load_bytes(stream.read())
