"""Two-level hashing: balanced key-to-group assignment (paper §4.4, Fig. 5).

Brute-force group search is exponential in group size, so SetSep cannot
tolerate the load variance of hashing keys directly into 16-key groups
(direct hashing puts >40 keys in the worst group when the average is 16).
Instead:

1. Keys hash into small *buckets* — 256 per block, average size 4.
2. Each consecutive run of 256 buckets forms a *1024-key block* that feeds
   64 groups (average size 16).
3. Every bucket has 4 pre-assigned candidate groups; a greedy, randomised
   algorithm picks one candidate per bucket to minimise the maximum group
   load, storing only the 2-bit choice — 0.5 bits per key.

The candidate table is a fixed constant shared by writers and readers: each
group is a candidate of exactly ``256 * 4 / 64 = 16`` buckets, and the four
candidates of any bucket are distinct.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core import hashfamily
from repro.core.params import (
    BUCKETS_PER_BLOCK,
    CANDIDATES_PER_BUCKET,
    GROUPS_PER_BLOCK,
    KEYS_PER_BLOCK,
)


def _build_candidate_table(seed: int = 0xB10C) -> np.ndarray:
    """Build the fixed (256, 4) bucket-to-candidate-group table.

    Constraints: every group appears exactly ``256 * 4 / 64 = 16`` times in
    the table, and each bucket's four candidates are distinct.  The
    bucket-to-group graph must also be well mixed — a structured table whose
    candidate sets form closed cliques traps load inside a heavy clique and
    defeats the balancing.

    Construction: shuffle the balanced multiset (each group 16 times) into a
    256 x 4 table, then repair rows containing duplicates by swapping a
    duplicated entry with an entry from another row whenever the swap leaves
    both rows duplicate-free.  Deterministic given the seed, so every node
    derives the same table.
    """
    rng = np.random.default_rng(seed)
    table = rng.permutation(
        np.repeat(
            np.arange(GROUPS_PER_BLOCK, dtype=np.int16),
            BUCKETS_PER_BLOCK * CANDIDATES_PER_BUCKET // GROUPS_PER_BLOCK,
        )
    ).reshape(BUCKETS_PER_BLOCK, CANDIDATES_PER_BUCKET)

    def row_has_duplicate(row: np.ndarray) -> bool:
        return len(np.unique(row)) != CANDIDATES_PER_BUCKET

    for _ in range(100_000):
        bad_rows = [r for r in range(BUCKETS_PER_BLOCK) if row_has_duplicate(table[r])]
        if not bad_rows:
            return table
        r = bad_rows[0]
        row = table[r]
        # Locate one duplicated entry in the bad row.
        seen = set()
        dup_col = next(
            c
            for c in range(CANDIDATES_PER_BUCKET)
            if row[c] in seen or seen.add(row[c])
        )
        # Swap with a random entry elsewhere if both rows stay clean.
        for _ in range(1_000):
            other = int(rng.integers(BUCKETS_PER_BLOCK))
            col = int(rng.integers(CANDIDATES_PER_BUCKET))
            if other == r:
                continue
            a, b = int(table[r, dup_col]), int(table[other, col])
            if a == b:
                continue
            if b in table[r] or a in table[other]:
                continue
            table[r, dup_col], table[other, col] = b, a
            break
        else:
            raise RuntimeError("candidate-table repair failed to converge")
    raise RuntimeError("candidate-table repair failed to converge")


#: The shared bucket-to-candidate-group table (256 buckets x 4 candidates).
CANDIDATE_TABLE: np.ndarray = _build_candidate_table()


def num_blocks_for(num_keys: int) -> int:
    """Blocks needed so the average group holds ~16 keys."""
    return max(1, (num_keys + KEYS_PER_BLOCK - 1) // KEYS_PER_BLOCK)


def bucket_ids(keys: np.ndarray, num_blocks: int) -> np.ndarray:
    """First-level mapping: each key's global bucket in ``[0, blocks*256)``.

    Keys in the same block stay together under RIB partitioning (§4.5), so
    the block id is simply ``bucket_id // 256``.
    """
    hashes = hashfamily.bucket_hash(keys)
    return hashfamily.reduce_range(hashes, num_blocks * BUCKETS_PER_BLOCK)


def block_of_buckets(buckets: np.ndarray) -> np.ndarray:
    """Block id of each global bucket id."""
    return np.asarray(buckets) // BUCKETS_PER_BLOCK


def assign_block(
    bucket_sizes: np.ndarray,
    rng: np.random.Generator,
    trials: int = 1,
    target_max: int = 18,
) -> Tuple[np.ndarray, int]:
    """Greedy bucket-to-group assignment for one block (paper §4.4).

    Buckets are processed in descending size order; each takes the candidate
    group with the fewest keys so far, breaking ties at random.  The
    randomised run repeats ``trials`` times and the assignment with the
    smallest maximum group load wins.

    Args:
        bucket_sizes: length-256 array of key counts per local bucket.
        rng: random generator for tie-breaking.
        trials: independent greedy runs to attempt.
        target_max: refinement stops once the maximum group load reaches
            this value (and further greedy trials are skipped).  The default
            of 18 sits safely below the brute-force feasibility cliff at
            ~21 keys per group for the production m=8 configuration; pass 0
            to minimise outright.

    Returns:
        ``(choices, max_load)``: a length-256 uint8 array of candidate
        choices in [0, 4) and the winning assignment's maximum group load.
    """
    if len(bucket_sizes) != BUCKETS_PER_BLOCK:
        raise ValueError(f"expected {BUCKETS_PER_BLOCK} bucket sizes")
    order = np.argsort(bucket_sizes, kind="stable")[::-1]
    best_choices: np.ndarray = np.zeros(BUCKETS_PER_BLOCK, dtype=np.uint8)
    best_max = np.iinfo(np.int64).max

    for _ in range(trials):
        loads = np.zeros(GROUPS_PER_BLOCK, dtype=np.int64)
        choices = np.zeros(BUCKETS_PER_BLOCK, dtype=np.uint8)
        for bucket in order:
            size = int(bucket_sizes[bucket])
            candidates = CANDIDATE_TABLE[bucket]
            candidate_loads = loads[candidates]
            least = candidate_loads.min()
            tied = np.nonzero(candidate_loads == least)[0]
            pick = int(tied[0]) if len(tied) == 1 else int(rng.choice(tied))
            choices[bucket] = pick
            loads[candidates[pick]] += size
        _refine(bucket_sizes, choices, loads, target_max=target_max)
        max_load = int(loads.max())
        if max_load < best_max:
            best_max = max_load
            best_choices = choices
        if best_max <= target_max:
            break

    return best_choices, best_max


def _refine(
    bucket_sizes: np.ndarray,
    choices: np.ndarray,
    loads: np.ndarray,
    target_max: int = 0,
    move_budget: int = 512,
) -> None:
    """Local search after the greedy pass: shrink the heaviest groups.

    Greedy alone leaves a few keys of headroom on the worst group of heavy
    blocks, and the brute-force search cost explodes past ~21 keys per group
    (the paper's balance target, §4.4).  Two move types are tried for every
    group at the current maximum load:

    * *shift*: reassign one of its buckets to another candidate group when
      that strictly lowers the block maximum;
    * *swap*: push a bucket into a fuller candidate group while evicting one
      of that group's buckets to a third group, when the chain lowers the
      maximum.

    Refinement stops when the maximum reaches ``target_max``, the move
    budget runs out, or no move helps.  ``choices`` and ``loads`` are
    updated in place.
    """
    assignment = CANDIDATE_TABLE[np.arange(BUCKETS_PER_BLOCK), choices]
    occupied = [b for b in range(BUCKETS_PER_BLOCK) if bucket_sizes[b] > 0]

    def members_of(group: int) -> list:
        found = [b for b in occupied if assignment[b] == group]
        found.sort(key=lambda b: -int(bucket_sizes[b]))
        return found

    def reassign(bucket: int, cand: int) -> None:
        size = int(bucket_sizes[bucket])
        loads[assignment[bucket]] -= size
        choices[bucket] = cand
        assignment[bucket] = CANDIDATE_TABLE[bucket, cand]
        loads[assignment[bucket]] += size

    for _ in range(move_budget):
        worst = int(loads.max())
        if worst <= target_max:
            return
        improved = False
        for group in np.nonzero(loads == worst)[0]:
            for bucket in members_of(int(group)):
                size = int(bucket_sizes[bucket])
                # Shift: direct move to a lighter candidate group.
                for cand in range(CANDIDATES_PER_BUCKET):
                    target = int(CANDIDATE_TABLE[bucket, cand])
                    if target != group and loads[target] + size < worst:
                        reassign(bucket, cand)
                        improved = True
                        break
                if improved:
                    break
                # Swap: move into a candidate group while evicting one of
                # its buckets to that bucket's own lighter alternative.
                for cand in range(CANDIDATES_PER_BUCKET):
                    target = int(CANDIDATE_TABLE[bucket, cand])
                    if target == group:
                        continue
                    for other in members_of(target):
                        other_size = int(bucket_sizes[other])
                        if loads[target] + size - other_size >= worst:
                            continue
                        for other_cand in range(CANDIDATES_PER_BUCKET):
                            third = int(CANDIDATE_TABLE[other, other_cand])
                            if third in (target, group):
                                continue
                            if loads[third] + other_size < worst:
                                reassign(other, other_cand)
                                reassign(bucket, cand)
                                improved = True
                                break
                        if improved:
                            break
                    if improved:
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            return


def groups_from_choices(buckets: np.ndarray, choices: np.ndarray) -> np.ndarray:
    """Second-level mapping: global group id for each key's bucket.

    ``choices`` is the concatenated per-bucket choice array over all blocks.
    """
    buckets = np.asarray(buckets)
    local_bucket = buckets % BUCKETS_PER_BLOCK
    block = buckets // BUCKETS_PER_BLOCK
    local_group = CANDIDATE_TABLE[local_bucket, choices[buckets]]
    return block * GROUPS_PER_BLOCK + local_group


def direct_group_ids(keys: np.ndarray, num_groups: int) -> np.ndarray:
    """The §4.4 strawman: hash keys straight into groups (no balancing).

    Exists to reproduce the paper's comparison (worst group >40 keys with
    direct hashing vs ~21 with two-level hashing, at average load 16).
    """
    hashes = hashfamily.bucket_hash(keys)
    return hashfamily.reduce_range(hashes, num_groups)


def max_group_load(group_ids: np.ndarray, num_groups: int) -> int:
    """Largest group size under an assignment (the Fig. 5 balance metric)."""
    counts = np.bincount(np.asarray(group_ids), minlength=num_groups)
    return int(counts.max())
