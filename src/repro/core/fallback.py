"""Fallback table for groups the brute-force search could not separate.

The paper (§4.1): if no hash function with index below the limit succeeds,
"a fallback mechanism is triggered to handle this set (e.g., store the keys
explicitly in a separate, small hash table)".  With the production "16+8"
configuration fewer than one group in a million falls back, so a plain exact
dictionary is the right tool; its storage is charged at full key+value width
by the size accounting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np


class FallbackTable:
    """Exact key-to-value store for failed groups."""

    #: Bits charged per resident entry (64-bit key + 16-bit value slot).
    ENTRY_BITS = 64 + 16

    def __init__(self) -> None:
        self._entries: Dict[int, int] = {}
        self._sorted: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite an entry."""
        self._entries[int(key)] = int(value)
        self._sorted = None

    def remove(self, key: int) -> None:
        """Remove an entry; removing an absent key is a no-op."""
        if self._entries.pop(int(key), None) is not None:
            self._sorted = None

    def get(self, key: int) -> Optional[int]:
        """Exact lookup; ``None`` when the key is absent."""
        return self._entries.get(int(key))

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (key, value) pairs."""
        return iter(self._entries.items())

    def insert_many(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Bulk insert."""
        for key, value in pairs:
            self.insert(key, value)

    def sorted_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The table as parallel (keys, values) arrays sorted by key.

        Backs the vectorised fallback probe in
        :meth:`repro.core.setsep.SetSep.lookup_batch`: a batch of keys is
        resolved with one ``np.searchsorted`` instead of a dict access per
        key.  The arrays are cached and rebuilt lazily after any mutation,
        so steady-state lookups pay nothing for the materialisation.
        """
        if self._sorted is None:
            count = len(self._entries)
            keys = np.fromiter(
                self._entries.keys(), dtype=np.uint64, count=count
            )
            values = np.fromiter(
                self._entries.values(), dtype=np.uint32, count=count
            )
            order = np.argsort(keys)
            self._sorted = (keys[order], values[order])
        return self._sorted

    def size_bits(self) -> int:
        """Storage charged to the fallback table."""
        return len(self._entries) * self.ENTRY_BITS

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
        self._sorted = None
