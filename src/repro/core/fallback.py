"""Fallback table for groups the brute-force search could not separate.

The paper (§4.1): if no hash function with index below the limit succeeds,
"a fallback mechanism is triggered to handle this set (e.g., store the keys
explicitly in a separate, small hash table)".  With the production "16+8"
configuration fewer than one group in a million falls back, so a plain exact
dictionary is the right tool; its storage is charged at full key+value width
by the size accounting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple


class FallbackTable:
    """Exact key-to-value store for failed groups."""

    #: Bits charged per resident entry (64-bit key + 16-bit value slot).
    ENTRY_BITS = 64 + 16

    def __init__(self) -> None:
        self._entries: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite an entry."""
        self._entries[int(key)] = int(value)

    def remove(self, key: int) -> None:
        """Remove an entry; removing an absent key is a no-op."""
        self._entries.pop(int(key), None)

    def get(self, key: int) -> Optional[int]:
        """Exact lookup; ``None`` when the key is absent."""
        return self._entries.get(int(key))

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (key, value) pairs."""
        return iter(self._entries.items())

    def insert_many(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Bulk insert."""
        for key, value in pairs:
            self.insert(key, value)

    def size_bits(self) -> int:
        """Storage charged to the fallback table."""
        return len(self._entries) * self.ENTRY_BITS

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
