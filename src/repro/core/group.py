"""Brute-force search for per-group hash functions (paper §4.1–§4.3).

A group holds ~16 keys.  For every bit of the output value, SetSep searches
the family ``H_i(x) = G1(x) + i*G2(x)`` for an index ``i`` such that writing
each key's value bit into slot ``H_i(x)`` of an m-bit array never conflicts:
two keys may share a slot only if their value bits agree.  The array is then
stored alongside ``i``, and lookup is simply ``array[H_i(x)]``.

The search is vectorised: a chunk of candidate indices is evaluated as an
``(n_keys, chunk)`` position matrix, and a candidate column is accepted iff
the OR-reduced slot bitmasks of the value-0 keys and the value-1 keys are
disjoint — exactly the paper's "taken" bit-array semantics, without the
per-key Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import hashfamily
from repro.core.params import SetSepParams

_U64 = np.uint64


@dataclass(frozen=True)
class GroupFunction:
    """A found separator for one value bit of one group.

    Attributes:
        index: the hash-family index ``i`` that worked.
        array: the m-bit array packed into a uint32 (bit ``p`` of ``array``
            is the value stored in slot ``p``; untaken slots are 0).
        iterations: how many candidate functions were tested, including the
            winner (the paper's construction-speed metric, Figures 3a / 4).
    """

    index: int
    array: int
    iterations: int


class GroupSearchFailure(Exception):
    """Raised internally when no index below the limit separates a group."""


def search_bit(
    g1: np.ndarray,
    g2: np.ndarray,
    bits: np.ndarray,
    m: int,
    max_index: int,
    chunk: int = 256,
) -> Optional[GroupFunction]:
    """Find one hash function separating ``bits`` over an m-slot array.

    Args:
        g1, g2: per-key base hashes (uint64 arrays of equal length n).
        bits: per-key target bit (0/1 array of length n).
        m: bit-array size.
        max_index: exclusive upper bound on the family index.
        chunk: candidate indices evaluated per vectorised step.

    Returns:
        The winning :class:`GroupFunction`, or ``None`` if no index below
        ``max_index`` works (the caller then falls back to an exact table).
    """
    n = len(g1)
    if n == 0:
        return GroupFunction(index=0, array=0, iterations=0)

    bits = np.asarray(bits)
    ones = bits.astype(bool)
    zeros = ~ones

    start = 0
    while start < max_index:
        count = min(chunk, max_index - start)
        indices = np.arange(start, start + count, dtype=_U64)
        pos = hashfamily.positions_many(g1, g2, indices, m)
        slot_masks = (np.uint64(1) << pos.astype(_U64))
        mask0 = _or_reduce(slot_masks, zeros, count)
        mask1 = _or_reduce(slot_masks, ones, count)
        good = (mask0 & mask1) == 0
        hits = np.nonzero(good)[0]
        if hits.size:
            col = int(hits[0])
            array = int(mask1[col])  # slots taken by value-1 keys hold 1
            return GroupFunction(
                index=start + col,
                array=array,
                iterations=start + col + 1,
            )
        start += count
    return None


def _or_reduce(slot_masks: np.ndarray, rows: np.ndarray, count: int) -> np.ndarray:
    """OR-reduce the per-key slot masks over a subset of keys."""
    if not rows.any():
        return np.zeros(count, dtype=_U64)
    return np.bitwise_or.reduce(slot_masks[rows], axis=0)


def search_group(
    g1: np.ndarray,
    g2: np.ndarray,
    values: np.ndarray,
    params: SetSepParams,
) -> Optional[List[GroupFunction]]:
    """Find the per-value-bit functions for one group (paper §4.3).

    A V-valued mapping is decomposed into ``value_bits`` independent binary
    separations, one per bit — searching ``log2 V`` binary functions instead
    of one V-ary function, which is exponentially faster (Figure 4).

    Returns a list of ``value_bits`` :class:`GroupFunction`, or ``None`` if
    any bit fails (the whole group then goes to the fallback table).
    """
    values = np.asarray(values, dtype=np.uint32)
    functions: List[GroupFunction] = []
    for bit in range(params.value_bits):
        target = (values >> bit) & 1
        found = search_bit(
            g1,
            g2,
            target,
            params.array_bits,
            params.max_index,
            params.search_chunk,
        )
        if found is None:
            return None
        functions.append(found)
    return functions


def search_joint(
    g1: np.ndarray,
    g2: np.ndarray,
    values: np.ndarray,
    value_bits: int,
    m: int,
    max_index: int,
    chunk: int = 256,
) -> Optional[GroupFunction]:
    """The *rejected* §4.3 alternative: one function to multi-bit values.

    Searches a single index whose array of ``value_bits``-wide cells maps
    every key to its full value.  Expected cost is ``O(V^n)`` trials, which
    is why the paper splits values into bits; this implementation exists to
    reproduce Figure 4's comparison.

    The array packs ``m`` cells of ``value_bits`` bits into the returned
    integer (cell ``p`` occupies bits ``[p*value_bits, (p+1)*value_bits)``).
    """
    n = len(g1)
    if n == 0:
        return GroupFunction(index=0, array=0, iterations=0)
    values = np.asarray(values, dtype=np.uint64)
    cell_mask = int((1 << value_bits) - 1)
    distinct = np.unique(values)

    start = 0
    while start < max_index:
        count = min(chunk, max_index - start)
        indices = np.arange(start, start + count, dtype=_U64)
        pos = hashfamily.positions_many(g1, g2, indices, m)
        slot_masks = np.uint64(1) << pos.astype(_U64)
        # Two keys sharing a slot must share the *whole* value, so a column
        # is good iff the per-value-class slot masks are pairwise disjoint.
        class_masks = [
            _or_reduce(slot_masks, values == v, count) for v in distinct
        ]
        good = np.ones(count, dtype=bool)
        for a in range(len(class_masks)):
            for b in range(a + 1, len(class_masks)):
                good &= (class_masks[a] & class_masks[b]) == 0
        hits = np.nonzero(good)[0]
        if hits.size:
            col = int(hits[0])
            array = 0
            slots = pos[:, col]
            for slot, value in zip(slots.tolist(), values.tolist()):
                array |= (int(value) & cell_mask) << (int(slot) * value_bits)
            return GroupFunction(
                index=start + col,
                array=array,
                iterations=start + col + 1,
            )
        start += count
    return None


def lookup_bit(g1: int, g2: int, function_index: int, array: int, m: int) -> int:
    """Scalar lookup of one value bit: ``array[H_index(x)]``."""
    h = (g1 + function_index * g2) & 0xFFFFFFFFFFFFFFFF
    slot = ((h >> 32) * m) >> 32
    return (array >> slot) & 1


def expected_iterations(n: int, m: int, trials: int = 200, seed: int = 1) -> float:
    """Empirical mean trials to separate ``n`` random keys over ``m`` slots.

    Drives the Figure 3a / 4 reproductions: for each trial a fresh random
    group of n keys with random bits is searched and the winner's iteration
    count recorded.
    """
    rng = np.random.default_rng(seed)
    total = 0
    done = 0
    for _ in range(trials):
        keys = rng.integers(0, 2**63, size=n, dtype=np.uint64)
        bits = rng.integers(0, 2, size=n)
        g1, g2 = hashfamily.base_hashes(keys)
        found = search_bit(g1, g2, bits, m, max_index=1 << 24, chunk=1024)
        if found is not None:
            total += found.iterations
            done += 1
    if done == 0:
        raise GroupSearchFailure(f"no group of {n} keys separable with m={m}")
    return total / done


def index_entropy_bits(n: int, m: int, trials: int = 200, seed: int = 1) -> float:
    """Empirical bits needed for a variable-length index encoding.

    Approximated as ``log2(mean iterations)`` + 1 (geometric-like index
    distribution), used by the Figure 3b space-breakdown reproduction.
    """
    mean = expected_iterations(n, m, trials=trials, seed=seed)
    return float(np.log2(max(mean, 1.0))) + 1.0
