"""The parameterised hash-function family at the heart of SetSep (paper §4.1).

SetSep needs, per group of keys, a family ``{H_i(x)}`` that can be iterated
cheaply during the brute-force search.  Following Kirsch & Mitzenmacher
("less hashing, same performance"), the paper derives the whole family from
two base hashes::

    H_i(x) = G1(x) + i * G2(x)        (mod 2**64)

and uses only the *most significant* bits of the sum, because the family has
a short period in its low bits.  This module provides:

* ``splitmix64`` — a vectorised 64-bit finaliser used as the "strong hash"
  building block (keys are already 64-bit flat identifiers in ScaleBricks);
* ``canonical_key`` / ``canonical_keys`` — canonicalisation of ints, bytes
  and strings into the uint64 key space;
* ``base_hashes`` — the (G1, G2) pair per key, with G2 forced odd so that
  ``i -> G1 + i*G2`` walks a full-period sequence mod 2**64;
* ``positions`` / ``positions_many`` — map ``H_i`` values onto ``[0, m)``
  bit-array slots using the multiply-shift range reduction on the top 32
  bits (respecting the paper's use-the-MSBs rule);
* independent hash streams for the two-level bucket mapping and the cuckoo
  FIB, derived from distinct mixing constants.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, Union

import numpy as np

Key = Union[int, bytes, str]

_U64 = np.uint64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)

# Distinct stream constants.  Each derived hash XORs the key with one of
# these before mixing, giving approximately independent hash functions from
# one mixer (the G1/G2 trick from the paper applied once more).
_STREAM_G1 = np.uint64(0x9E3779B97F4A7C15)
_STREAM_G2 = np.uint64(0xC2B2AE3D27D4EB4F)
_STREAM_BUCKET = np.uint64(0x165667B19E3779F9)
_STREAM_FIB = np.uint64(0x27D4EB2F165667C5)
_STREAM_TAG = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a uint64 array.

    This is the standard avalanche mixer from Steele et al.'s SplitMix; it is
    a bijection on 64-bit integers with full avalanche, which is all SetSep
    requires of its "standard hashing methods".
    """
    x = x.astype(_U64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


def canonical_key(key: Key) -> int:
    """Map an int / bytes / str key into the canonical uint64 key space.

    Integers are taken mod 2**64 (ScaleBricks keys are flat 64-bit flow IDs);
    byte strings and text are digested with BLAKE2b-64 so that arbitrary
    identifiers (5-tuples, MAC addresses, URLs) can be used as keys.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFFFFFFFFFF
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray, memoryview)):
        digest = hashlib.blake2b(bytes(key), digest_size=8).digest()
        return int.from_bytes(digest, "little")
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def canonical_keys(keys: Iterable[Key]) -> np.ndarray:
    """Vector version of :func:`canonical_key` returning a uint64 array."""
    if isinstance(keys, np.ndarray) and keys.dtype == _U64:
        return keys
    return np.fromiter(
        (canonical_key(k) for k in keys), dtype=_U64, count=_length_hint(keys)
    )


def _length_hint(keys: Iterable[Key]) -> int:
    try:
        return len(keys)  # type: ignore[arg-type]
    except TypeError:
        return -1


def base_hashes(keys: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Compute the (G1, G2) base hash pair for each key.

    G2 is forced odd: ``G1 + i*G2`` then enumerates all 2**64 residues as
    ``i`` increases, so no candidate index is wasted on a repeated function.
    """
    keys = np.asarray(keys, dtype=_U64)
    g1 = splitmix64(keys ^ _STREAM_G1)
    g2 = splitmix64(keys ^ _STREAM_G2) | np.uint64(1)
    return g1, g2


def family_values(
    g1: np.ndarray, g2: np.ndarray, index: int
) -> np.ndarray:
    """Evaluate ``H_index = G1 + index*G2`` (mod 2**64) for each key."""
    with np.errstate(over="ignore"):
        return g1 + np.uint64(index) * g2


def positions(hashes: np.ndarray, m: int) -> np.ndarray:
    """Reduce 64-bit hash values onto bit-array slots in ``[0, m)``.

    Uses the multiply-shift ("fastrange") reduction on the *top* 32 bits,
    honouring the paper's observation that only the most significant bits of
    ``G1 + i*G2`` behave well.
    """
    if m <= 0:
        raise ValueError("m must be positive")
    top = hashes >> np.uint64(32)
    with np.errstate(over="ignore"):
        return ((top * np.uint64(m)) >> np.uint64(32)).astype(np.int64)


def positions_many(
    g1: np.ndarray, g2: np.ndarray, indices: np.ndarray, m: int
) -> np.ndarray:
    """Slot positions for *every* (key, candidate index) pair at once.

    Returns an ``(n_keys, n_indices)`` int64 matrix: entry ``[j, c]`` is the
    bit-array slot that ``H_{indices[c]}`` assigns to key ``j``.  This is the
    vectorised core of the brute-force search — one call evaluates a whole
    chunk of the hash family.
    """
    indices = np.asarray(indices, dtype=_U64)
    with np.errstate(over="ignore"):
        h = g1[:, None] + indices[None, :] * g2[:, None]
    return positions(h, m)


def bucket_hash(keys: np.ndarray) -> np.ndarray:
    """Independent hash stream for the first-level key-to-bucket mapping."""
    keys = np.asarray(keys, dtype=_U64)
    return splitmix64(keys ^ _STREAM_BUCKET)


def fib_hash(keys: np.ndarray) -> np.ndarray:
    """Independent hash stream used by the cuckoo FIB's primary bucket."""
    keys = np.asarray(keys, dtype=_U64)
    return splitmix64(keys ^ _STREAM_FIB)


def tag_hash(keys: np.ndarray) -> np.ndarray:
    """Independent hash stream used for cuckoo partial-key tags."""
    keys = np.asarray(keys, dtype=_U64)
    return splitmix64(keys ^ _STREAM_TAG)


def reduce_range(hashes: np.ndarray, n: int) -> np.ndarray:
    """Map 64-bit hashes uniformly onto ``[0, n)`` (multiply-shift)."""
    if n <= 0:
        raise ValueError("range size must be positive")
    top = np.asarray(hashes, dtype=_U64) >> np.uint64(32)
    with np.errstate(over="ignore"):
        return ((top * np.uint64(n)) >> np.uint64(32)).astype(np.int64)


def derive_stream(name: str) -> np.uint64:
    """Derive a new stream constant from a label (for baselines and tests)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return np.uint64(int.from_bytes(digest, "little") | 1)


def keyed_hash(keys: np.ndarray, stream: np.uint64) -> np.ndarray:
    """Hash ``keys`` under the stream constant from :func:`derive_stream`."""
    keys = np.asarray(keys, dtype=_U64)
    return splitmix64(keys ^ stream)
