"""Separator backend selection: SetSep vs Othello behind one protocol.

The paper's GPT is "any compact key -> node separator" (§3.2); this repo
implements two — SetSep (the paper's choice) and Othello hashing
(arXiv:1608.05699).  This module names the implicit surface the rest of
the system relies on (:class:`Separator`), registers the concrete
backends, and holds the process-wide default that the CLI's ``--backend``
flag and the ``REPRO_GPT_BACKEND`` environment variable select.

A process-wide default (rather than threading a parameter through every
constructor) is what lets the gateway, launcher, membership resize, and
chaos harness build clusters on either backend without signature changes;
explicit ``backend=`` arguments on ``GlobalPartitionTable.build`` and
``Cluster.build`` override it per call.  Runtime daemons never consult the
default: they infer the backend from the snapshot magic and from the
update records themselves, both of which are self-describing.

Imports of :mod:`repro.othello` are lazy so ``repro.core`` stays free of
import cycles and SetSep-only workloads never pay for the extra module.
"""

from __future__ import annotations

import os
from typing import (
    TYPE_CHECKING,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.core.builder import ConstructionStats
from repro.core.hashfamily import Key
from repro.core.params import SetSepParams

if TYPE_CHECKING:
    from repro.othello.params import OthelloParams

#: Names of the available separator backends.
BACKENDS = ("setsep", "othello")

#: Environment variable consulted for the initial default backend.
BACKEND_ENV = "REPRO_GPT_BACKEND"

#: Union of the two parameter dataclasses.
SeparatorParams = Union[SetSepParams, "OthelloParams"]


@runtime_checkable
class Separator(Protocol):
    """The surface a GPT backend must provide.

    Extracted from the implicit SetSep contract: compact key -> value
    lookup with one-sided error, block/group bookkeeping matching the
    two-level RIB partitioning, the §4.5 owner-recomputes/replicas-apply
    update cycle with a self-framing wire record, size accounting, and
    replication/serialisation support.  ``repro.core.serialize`` handles
    the snapshot round-trip for every registered backend, dispatching on
    the instance type when dumping and the snapshot magic when loading.
    """

    #: Registry name of the backend ("setsep", "othello", ...).
    backend: str

    params: SeparatorParams
    num_blocks: int

    def lookup(self, key: Key) -> int: ...

    def lookup_batch(
        self, keys: Union[Sequence[Key], np.ndarray]
    ) -> np.ndarray: ...

    def groups_of(self, keys: np.ndarray) -> np.ndarray: ...

    def group_of(self, key: Key) -> int: ...

    def block_of(self, key: Key) -> int: ...

    def rebuild_group(
        self,
        group_id: int,
        keys: Union[Sequence[Key], np.ndarray],
        values: Sequence[int],
        removed_keys: Iterable[Key] = (),
    ): ...

    def apply_delta(self, delta) -> None: ...

    def size_bits(self) -> int: ...

    def size_bytes(self) -> int: ...

    def bits_per_key(self, num_keys: int) -> float: ...

    def copy(self) -> "Separator": ...

    def bind_registry(self, registry) -> None: ...


_default_backend: Optional[str] = None


def _validate(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown separator backend {backend!r}; "
            f"expected one of {', '.join(BACKENDS)}"
        )
    return backend


def default_backend() -> str:
    """The process-wide default backend (env override, else "setsep")."""
    global _default_backend
    if _default_backend is None:
        _default_backend = _validate(
            os.environ.get(BACKEND_ENV, "setsep").strip().lower() or "setsep"
        )
    return _default_backend


def set_default_backend(backend: str) -> None:
    """Select the backend used when callers don't pass one explicitly."""
    global _default_backend
    _default_backend = _validate(backend)


def resolve_backend(backend: Optional[str] = None) -> str:
    """An explicit backend name, or the process default when ``None``."""
    if backend is None:
        return default_backend()
    return _validate(backend)


def backend_of(separator) -> str:
    """Registry name of a separator instance's backend."""
    return getattr(separator, "backend", "setsep")


def params_for_cluster(
    num_nodes: int, backend: Optional[str] = None, **overrides
) -> SeparatorParams:
    """Backend-appropriate parameters for a GPT over ``num_nodes`` nodes."""
    backend = resolve_backend(backend)
    if backend == "othello":
        from repro.othello.params import OthelloParams

        return OthelloParams.for_cluster(num_nodes, **overrides)
    return SetSepParams.for_cluster(num_nodes, **overrides)


def coerce_params(
    params: Optional[SeparatorParams], backend: Optional[str] = None
) -> Optional[SeparatorParams]:
    """Convert parameters to the backend's dataclass, preserving width.

    Lets callers that default to ``SetSepParams.for_cluster`` (the
    historical behaviour) run under an Othello default: only
    ``value_bits`` — the one field with cross-backend meaning — survives
    the conversion.
    """
    if params is None:
        return None
    backend = resolve_backend(backend)
    from repro.othello.params import OthelloParams

    if backend == "othello" and isinstance(params, SetSepParams):
        return OthelloParams(value_bits=params.value_bits)
    if backend == "setsep" and isinstance(params, OthelloParams):
        return SetSepParams(value_bits=params.value_bits)
    return params


def build(
    keys: Union[Sequence[Key], np.ndarray],
    values: Sequence[int],
    params: Optional[SeparatorParams] = None,
    backend: Optional[str] = None,
    workers: int = 1,
    num_blocks: Optional[int] = None,
) -> Tuple[Separator, ConstructionStats]:
    """Build a separator on the chosen backend (front door for both)."""
    backend = resolve_backend(backend)
    params = coerce_params(params, backend)
    if backend == "othello":
        from repro.othello import builder as othello_builder

        return othello_builder.build(
            keys, values, params, workers=workers, num_blocks=num_blocks
        )
    from repro.core import builder as setsep_builder

    return setsep_builder.build(
        keys, values, params, workers=workers, num_blocks=num_blocks
    )


def update_record_type(backend: str):
    """The wire update-record class for a backend (GroupDelta's peers)."""
    if _validate(backend) == "othello":
        from repro.othello.update import OthelloUpdate

        return OthelloUpdate
    from repro.core.delta import GroupDelta

    return GroupDelta


def parse_update_stream(data: bytes, backend: str):
    """Frame every update record out of a concatenated wire payload.

    Yields ``(record, params)`` pairs; both record types are
    self-delimiting, so one loop serves the daemons' batched delta
    broadcasts for either backend.
    """
    record_type = update_record_type(backend)
    offset = 0
    while offset < len(data):
        record, params, offset = record_type.from_wire_bytes(data, offset)
        yield record, params
