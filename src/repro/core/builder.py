"""SetSep construction: serial, multi-process, and per-partition (paper §4.4–§5.1).

Construction is embarrassingly parallel across 1024-key blocks: each block's
bucket-to-group assignment and group searches touch only that block's keys.
The same property drives both the multi-process builder here (the paper's
multi-threaded construction, Table 1) and the distributed construction in
:mod:`repro.cluster.rib`, where each RIB node builds only its blocks and the
slices are exchanged (§4.5).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import group as group_search
from repro.core import hashfamily, twolevel
from repro.core.fallback import FallbackTable
from repro.core.params import (
    BUCKETS_PER_BLOCK,
    GROUPS_PER_BLOCK,
    SetSepParams,
)
from repro.core.setsep import Key, SetSep


class DuplicateKeyError(ValueError):
    """Raised when the input contains the same key twice."""


@dataclass(frozen=True)
class ConstructionStats:
    """Measurements the paper reports for construction (Table 1)."""

    num_keys: int
    num_blocks: int
    num_groups: int
    failed_groups: int
    fallback_keys: int
    total_iterations: int
    max_group_load: int
    elapsed_seconds: float
    workers: int

    @property
    def fallback_ratio(self) -> float:
        """Fraction of keys stored in the fallback table."""
        return self.fallback_keys / self.num_keys if self.num_keys else 0.0

    @property
    def keys_per_second(self) -> float:
        """Construction throughput (the Table 1 headline column)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.num_keys / self.elapsed_seconds

    @property
    def mean_iterations(self) -> float:
        """Average brute-force trials per (group, value bit)."""
        searched = max(1, self.num_groups)
        return self.total_iterations / searched


@dataclass
class _PartitionResult:
    """Builder output for a contiguous range of blocks."""

    block_lo: int
    block_hi: int
    choices: np.ndarray
    indices: np.ndarray
    arrays: np.ndarray
    failed: np.ndarray
    fallback_pairs: List[Tuple[int, int]]
    total_iterations: int
    max_group_load: int


def build(
    keys: Union[Sequence[Key], np.ndarray],
    values: Sequence[int],
    params: Optional[SetSepParams] = None,
    workers: int = 1,
    num_blocks: Optional[int] = None,
) -> Tuple[SetSep, ConstructionStats]:
    """Build a SetSep from key/value pairs.

    Args:
        keys: unique keys (ints, bytes, strings, or a uint64 array).
        values: one value per key, each below ``2**params.value_bits``.
        params: structure configuration; defaults to the paper's 16+8.
        workers: worker processes; 1 builds in-process.
        num_blocks: override the block count (testing / load experiments).

    Returns:
        ``(setsep, stats)`` — the queryable structure and its
        construction measurements.

    Raises:
        DuplicateKeyError: if two inputs canonicalise to the same key.
        ValueError: if a value does not fit in ``value_bits``.
    """
    params = params or SetSepParams()
    started = time.perf_counter()

    keys_arr = hashfamily.canonical_keys(keys)
    values_arr = np.asarray(values, dtype=np.uint32)
    if keys_arr.shape != values_arr.shape:
        raise ValueError("keys and values must have equal length")
    if len(keys_arr) and int(values_arr.max()) >= (1 << params.value_bits):
        raise ValueError(
            f"values must fit in {params.value_bits} bits; "
            f"got {int(values_arr.max())}"
        )
    if len(np.unique(keys_arr)) != len(keys_arr):
        raise DuplicateKeyError("input contains duplicate keys")

    if num_blocks is None:
        num_blocks = twolevel.num_blocks_for(len(keys_arr))
    buckets = twolevel.bucket_ids(keys_arr, num_blocks)

    if workers <= 1:
        results = [
            build_partition(
                keys_arr, values_arr, buckets, params, 0, num_blocks
            )
        ]
    else:
        results = _build_parallel(
            keys_arr, values_arr, buckets, params, num_blocks, workers
        )

    setsep = assemble(params, num_blocks, results)
    elapsed = time.perf_counter() - started
    stats = ConstructionStats(
        num_keys=len(keys_arr),
        num_blocks=num_blocks,
        num_groups=setsep.num_groups,
        failed_groups=int(setsep.failed_groups.sum()),
        fallback_keys=len(setsep.fallback),
        total_iterations=sum(r.total_iterations for r in results),
        max_group_load=max(r.max_group_load for r in results),
        elapsed_seconds=elapsed,
        workers=max(1, workers),
    )
    return setsep, stats


def build_partition(
    keys: np.ndarray,
    values: np.ndarray,
    buckets: np.ndarray,
    params: SetSepParams,
    block_lo: int,
    block_hi: int,
) -> _PartitionResult:
    """Build the state slice for blocks ``[block_lo, block_hi)``.

    ``keys``/``values``/``buckets`` may contain entries outside the range;
    they are filtered here so the multi-process and distributed builders can
    hand each worker the full input without pre-splitting.
    """
    blocks = buckets // BUCKETS_PER_BLOCK
    in_range = (blocks >= block_lo) & (blocks < block_hi)
    keys = keys[in_range]
    values = values[in_range]
    buckets = buckets[in_range]

    n_blocks = block_hi - block_lo
    local_buckets = buckets - block_lo * BUCKETS_PER_BLOCK
    bucket_sizes = np.bincount(
        local_buckets, minlength=n_blocks * BUCKETS_PER_BLOCK
    )

    # Per-block randomised greedy assignment (deterministic per block id, so
    # serial / parallel / distributed builds produce identical structures).
    choices = np.zeros(n_blocks * BUCKETS_PER_BLOCK, dtype=np.uint8)
    max_load = 0
    for b in range(n_blocks):
        rng = np.random.default_rng((params.seed, block_lo + b))
        lo = b * BUCKETS_PER_BLOCK
        block_choices, block_max = twolevel.assign_block(
            bucket_sizes[lo : lo + BUCKETS_PER_BLOCK],
            rng,
            trials=params.assignment_trials,
        )
        choices[lo : lo + BUCKETS_PER_BLOCK] = block_choices
        max_load = max(max_load, block_max)

    groups = twolevel.groups_from_choices(local_buckets, choices)

    n_groups = n_blocks * GROUPS_PER_BLOCK
    indices = np.zeros((n_groups, params.value_bits), dtype=np.uint16)
    arrays = np.zeros((n_groups, params.value_bits), dtype=np.uint32)
    failed = np.zeros(n_groups, dtype=bool)
    fallback_pairs: List[Tuple[int, int]] = []
    total_iterations = 0

    g1, g2 = hashfamily.base_hashes(keys)
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    boundaries = np.nonzero(np.diff(sorted_groups))[0] + 1
    segments = np.split(order, boundaries)
    for segment in segments:
        if len(segment) == 0:
            continue
        gid = int(groups[segment[0]])
        functions = group_search.search_group(
            g1[segment], g2[segment], values[segment], params
        )
        if functions is None:
            failed[gid] = True
            fallback_pairs.extend(
                (int(k), int(v))
                for k, v in zip(keys[segment], values[segment])
            )
            total_iterations += params.max_index * params.value_bits
        else:
            for bit, fn in enumerate(functions):
                indices[gid, bit] = fn.index
                arrays[gid, bit] = fn.array
                total_iterations += fn.iterations

    return _PartitionResult(
        block_lo=block_lo,
        block_hi=block_hi,
        choices=choices,
        indices=indices,
        arrays=arrays,
        failed=failed,
        fallback_pairs=fallback_pairs,
        total_iterations=total_iterations,
        max_group_load=max_load,
    )


def assemble(
    params: SetSepParams,
    num_blocks: int,
    results: Sequence[_PartitionResult],
) -> SetSep:
    """Stitch partition slices into a full SetSep.

    Used by the serial builder (one slice), the process-parallel builder
    (one slice per worker) and the cluster, where each RIB node contributes
    the slice it built before the exchange step (§4.5).
    """
    choices = np.zeros(num_blocks * BUCKETS_PER_BLOCK, dtype=np.uint8)
    indices = np.zeros(
        (num_blocks * GROUPS_PER_BLOCK, params.value_bits), dtype=np.uint16
    )
    arrays = np.zeros_like(indices, dtype=np.uint32)
    failed = np.zeros(num_blocks * GROUPS_PER_BLOCK, dtype=bool)
    fallback = FallbackTable()

    covered = np.zeros(num_blocks, dtype=bool)
    for result in results:
        if covered[result.block_lo : result.block_hi].any():
            raise ValueError("overlapping partition slices")
        covered[result.block_lo : result.block_hi] = True
        b_lo = result.block_lo * BUCKETS_PER_BLOCK
        b_hi = result.block_hi * BUCKETS_PER_BLOCK
        g_lo = result.block_lo * GROUPS_PER_BLOCK
        g_hi = result.block_hi * GROUPS_PER_BLOCK
        choices[b_lo:b_hi] = result.choices
        indices[g_lo:g_hi] = result.indices
        arrays[g_lo:g_hi] = result.arrays
        failed[g_lo:g_hi] = result.failed
        fallback.insert_many(result.fallback_pairs)
    if not covered.all():
        raise ValueError("partition slices do not cover every block")

    return SetSep(
        params=params,
        num_blocks=num_blocks,
        choices=choices,
        indices=indices,
        arrays=arrays,
        failed_groups=failed,
        fallback=fallback,
    )


def _worker_build(
    args: Tuple[np.ndarray, np.ndarray, np.ndarray, SetSepParams, int, int],
) -> _PartitionResult:
    """Top-level worker entry point (must be picklable)."""
    keys, values, buckets, params, lo, hi = args
    return build_partition(keys, values, buckets, params, lo, hi)


def _build_parallel(
    keys: np.ndarray,
    values: np.ndarray,
    buckets: np.ndarray,
    params: SetSepParams,
    num_blocks: int,
    workers: int,
) -> List[_PartitionResult]:
    """Fan block ranges out to worker processes.

    Each worker receives only its partition's keys to bound pickling cost.
    ``workers`` is clamped by the block count but *not* by ``cpu_count``:
    the slicing (and thus the output) must depend only on the requested
    worker count, and oversubscribing cores is the caller's trade-off.
    """
    workers = min(workers, num_blocks)
    bounds = np.linspace(0, num_blocks, workers + 1).astype(int)
    blocks = buckets // BUCKETS_PER_BLOCK
    tasks = []
    for w in range(workers):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        if lo == hi:
            continue
        mask = (blocks >= lo) & (blocks < hi)
        tasks.append((keys[mask], values[mask], buckets[mask], params, lo, hi))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_worker_build, tasks))
