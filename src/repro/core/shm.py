"""Shared-memory GPT snapshots: publish once, attach N times (scale tier).

The paper's Fig. 11 regime (16M+ TEIDs) breaks the one-heap-per-daemon
snapshot model: N local daemons each deserialising the same multi-megabyte
separator costs O(N x keys) resident bytes and O(snapshot) cold-start time
per daemon.  This module gives the controller a way to *publish* one
serialised snapshot (:func:`repro.core.serialize.dumps` output, either
payload kind) into a POSIX shared-memory segment, and daemons a way to
*attach* that segment as a copy-on-write mapping parsed with the zero-copy
:func:`repro.core.serialize.load_view` loader:

* all attachers share one physical copy of the bit/value arrays;
* in-place delta writes (``apply_delta``) privatise only the touched 4 KiB
  pages, so replicas stay independently updatable;
* attach cost is an ``open`` + ``mmap`` + header parse — no body copy and
  no CRC pass (the segment's trailing CRC is compared against the
  fingerprint carried in the ``MSG_STATE_REF`` message instead).

Attachers deliberately bypass :class:`multiprocessing.shared_memory
.SharedMemory`: attaching through it registers the segment with the
process's ``resource_tracker``, which would unlink live segments when any
daemon exits.  They open ``/dev/shm/<name>`` directly instead (Python
3.13's ``track=False`` would do the same, but the floor here is 3.9).
Only the publishing side uses ``SharedMemory`` — it owns the name and
unlinks explicitly, refcounted by :class:`SegmentPublisher`.

Linux-only by construction (``/dev/shm``); :func:`available` gates every
caller, and the runtime falls back to the full-snapshot wire path when it
returns ``False``.
"""

from __future__ import annotations

import mmap
import os
import struct
from typing import Dict, List, Optional

from repro.core import serialize

#: Directory backing POSIX shared memory on Linux.
SHM_DIR = "/dev/shm"

#: Every segment name this module creates starts with this.
SEGMENT_PREFIX = "repro-gpt-"

#: Segment framing: shm sizes are page-rounded, so the payload length is
#: recorded explicitly.  magic "GPTS" | payload length u64 | payload.
FRAME_MAGIC = b"GPTS"
_FRAME = struct.Struct("<4sQ")


class ShmError(RuntimeError):
    """Raised when a segment cannot be published or attached."""


class AttachError(ShmError):
    """Raised when attaching a segment fails (missing, malformed, stale)."""


def available() -> bool:
    """Whether shared-memory snapshots can be used on this host."""
    return os.path.isdir(SHM_DIR) and os.access(SHM_DIR, os.W_OK)


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live segments starting with ``prefix`` (leak audits)."""
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(n for n in os.listdir(SHM_DIR) if n.startswith(prefix))


class AttachedSegment:
    """One daemon's view of a published snapshot segment.

    ``separator`` is the live structure; its big arrays alias the mapping
    (``mode="cow"``) or a private copy of it (``mode="copy"``).  Keep the
    handle for the separator's lifetime and :meth:`close` it after the
    replica swaps to newer state.
    """

    def __init__(
        self, name: str, mode: str, separator, payload_len: int, fingerprint: int, mm
    ) -> None:
        self.name = name
        self.mode = mode
        self.separator = separator
        self.payload_len = payload_len
        self.fingerprint = fingerprint
        self._mm = mm

    def close(self) -> None:
        """Drop the mapping.

        The munmap itself may be deferred: live array views exported from
        the mapping keep it pinned until they are garbage collected, which
        is exactly the make-before-break order the daemons want.
        """
        self.separator = None
        mm, self._mm = self._mm, None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                # Views still alias the mapping; GC releases it later.
                pass

    def __repr__(self) -> str:
        return f"AttachedSegment(name={self.name!r}, mode={self.mode!r})"


def _read_frame(view) -> int:
    """Validate the segment frame; return the payload length."""
    if len(view) < _FRAME.size:
        raise AttachError("segment too small for frame header")
    magic, payload_len = _FRAME.unpack_from(view)
    if magic != FRAME_MAGIC:
        raise AttachError("segment frame magic mismatch")
    if _FRAME.size + payload_len > len(view):
        raise AttachError("segment frame length exceeds segment size")
    return payload_len


def attach(
    name: str,
    expected_fingerprint: Optional[int] = None,
    mode: str = "cow",
    verify: bool = False,
):
    """Attach a published segment and parse the snapshot inside it.

    ``mode="cow"`` (the fast path) maps ``/dev/shm/<name>`` MAP_PRIVATE
    with read+write protection: reads share physical pages with every
    other attacher, writes privatise pages lazily.  ``mode="copy"`` reads
    the segment into a private heap buffer — same semantics as the wire
    snapshot path, useful where COW mappings are unavailable.

    ``expected_fingerprint`` (from ``MSG_STATE_REF``) is compared against
    the snapshot's trailing CRC *bytes* — an O(1) staleness check that
    avoids faulting in the whole mapping.  ``verify=True`` additionally
    recomputes the CRC over the full body.

    Returns an :class:`AttachedSegment`; raises :class:`AttachError`.
    """
    path = os.path.join(SHM_DIR, name)
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError as exc:
        raise AttachError(f"segment {name!r} not attachable: {exc}") from exc
    try:
        size = os.fstat(fd).st_size
        if mode == "cow":
            # MAP_PRIVATE needs only a readable fd; writes go to private
            # pages, never back to the segment.
            mm = mmap.mmap(
                fd,
                size,
                flags=mmap.MAP_PRIVATE,
                prot=mmap.PROT_READ | mmap.PROT_WRITE,
            )
            buf, keep = memoryview(mm), mm
        elif mode == "copy":
            data = bytearray()
            while True:
                chunk = os.read(fd, 1 << 24)
                if not chunk:
                    break
                data.extend(chunk)
            buf, keep = memoryview(data), None
        else:
            raise ValueError(f"unknown attach mode {mode!r}")
    finally:
        os.close(fd)
    try:
        payload_len = _read_frame(buf)
        payload = buf[_FRAME.size:_FRAME.size + payload_len]
        got = serialize.fingerprint_bytes(payload)
        if expected_fingerprint is not None and got != expected_fingerprint:
            raise AttachError(
                f"segment {name!r} fingerprint {got:#010x} != "
                f"expected {expected_fingerprint:#010x}"
            )
        separator = serialize.load_view(payload, verify=verify)
    except ShmError:
        _best_effort_close(keep)
        raise
    except serialize.SnapshotError as exc:
        _best_effort_close(keep)
        raise AttachError(f"segment {name!r} malformed: {exc}") from exc
    return AttachedSegment(name, mode, separator, payload_len, got, keep)


def _best_effort_close(mm) -> None:
    """Close a mapping on the attach error path.

    The in-flight exception's traceback can pin views into the mapping;
    munmap then happens at GC instead of here.
    """
    if mm is None:
        return
    try:
        mm.close()
    except BufferError:
        pass


class PublishedSegment:
    """A segment the publisher owns (created, later unlinked)."""

    def __init__(self, name: str, payload: bytes) -> None:
        from multiprocessing import shared_memory

        self.name = name
        self.payload_len = len(payload)
        self.fingerprint = serialize.fingerprint_bytes(payload)
        size = _FRAME.size + len(payload)
        try:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except (OSError, ValueError) as exc:
            raise ShmError(f"cannot publish segment {name!r}: {exc}") from exc
        _FRAME.pack_into(self._shm.buf, 0, FRAME_MAGIC, len(payload))
        self._shm.buf[_FRAME.size:size] = payload

    def unlink(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"PublishedSegment(name={self.name!r}, "
            f"payload_len={self.payload_len})"
        )


class SegmentPublisher:
    """Controller-side segment lifecycle: publish, refcount, unlink.

    One *current* segment holds the newest published snapshot (the epoch
    floor); older generations are retired but stay linked while any daemon
    still references them (``acquire``/``release`` track that).  POSIX
    unlink-on-retirement is safe — existing mappings outlive the name.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        if prefix is None:
            prefix = f"{SEGMENT_PREFIX}{os.getpid():x}-"
        self.prefix = prefix
        self._seq = 0
        self._segments: Dict[str, PublishedSegment] = {}
        self._refcounts: Dict[str, int] = {}
        self.current: Optional[PublishedSegment] = None

    def publish(self, payload: bytes) -> PublishedSegment:
        """Publish a new generation; retire (and maybe unlink) the old one."""
        name = f"{self.prefix}{self._seq:06d}"
        self._seq += 1
        segment = PublishedSegment(name, payload)
        previous, self.current = self.current, segment
        self._segments[name] = segment
        self._refcounts.setdefault(name, 0)
        if previous is not None and self._refcounts.get(previous.name, 0) == 0:
            self._unlink(previous.name)
        return segment

    def acquire(self, name: str) -> None:
        """Record one daemon now referencing ``name``."""
        if name in self._segments:
            self._refcounts[name] = self._refcounts.get(name, 0) + 1

    def release(self, name: Optional[str]) -> None:
        """Record one daemon no longer referencing ``name``.

        A retired segment (no longer current) is unlinked once its count
        reaches zero.
        """
        if name is None or name not in self._segments:
            return
        count = max(0, self._refcounts.get(name, 0) - 1)
        self._refcounts[name] = count
        current_name = self.current.name if self.current is not None else None
        if count == 0 and name != current_name:
            self._unlink(name)

    def _unlink(self, name: str) -> None:
        segment = self._segments.pop(name, None)
        self._refcounts.pop(name, None)
        if segment is not None:
            segment.unlink()

    def live_segments(self) -> List[str]:
        """Names still linked (current + referenced retirees)."""
        return sorted(self._segments)

    def close(self) -> None:
        """Unlink every segment this publisher created."""
        for name in list(self._segments):
            self._unlink(name)
        self.current = None
