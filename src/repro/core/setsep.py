"""SetSep: compact set separation over billions of keys (paper §4).

SetSep stores a mapping from arbitrary 64-bit keys to small values (cluster
node ids) *without storing the keys*.  Keys flow through two levels of
hashing into ~16-key groups; each group stores, per value bit, a brute-force
found hash-function index plus an m-bit array (see :mod:`repro.core.group`).
Storage is ~1.5 bits/key/value-bit + 0.5 bits/key for the group mapping.

The price of compactness is one-sided error: a lookup for a key that was
never inserted returns an arbitrary value — SetSep cannot say "not found".
ScaleBricks tolerates this because the handling node's exact FIB rejects
unknown keys (§3.2).

Construction lives in :mod:`repro.core.builder`; this module is the queryable
structure plus in-place delta updates (§4.5).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import group as group_search
from repro.core import hashfamily, twolevel
from repro.core.delta import GroupDelta
from repro.core.fallback import FallbackTable
from repro.core.hashfamily import Key
from repro.core.params import (
    BUCKETS_PER_BLOCK,
    CHOICE_BITS,
    GROUPS_PER_BLOCK,
    SetSepParams,
)
from repro.obs.metrics import MetricsRegistry, resolve_registry


class SetSep:
    """The queryable set-separation structure.

    Instances are normally created with :func:`repro.core.builder.build`.
    The constructor takes pre-assembled state so that builders (serial,
    parallel, distributed across RIB nodes) can produce slices independently.
    """

    #: Registry name under :mod:`repro.core.separator`.
    backend = "setsep"

    def __init__(
        self,
        params: SetSepParams,
        num_blocks: int,
        choices: np.ndarray,
        indices: np.ndarray,
        arrays: np.ndarray,
        failed_groups: np.ndarray,
        fallback: Optional[FallbackTable] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        num_buckets = num_blocks * BUCKETS_PER_BLOCK
        num_groups = num_blocks * GROUPS_PER_BLOCK
        if choices.shape != (num_buckets,):
            raise ValueError("choices shape does not match num_blocks")
        if indices.shape != (num_groups, params.value_bits):
            raise ValueError("indices shape does not match num_blocks/params")
        if arrays.shape != (num_groups, params.value_bits):
            raise ValueError("arrays shape does not match num_blocks/params")
        if failed_groups.shape != (num_groups,):
            raise ValueError("failed_groups shape does not match num_blocks")
        self.params = params
        self.num_blocks = num_blocks
        self.choices = choices
        self.indices = indices
        self.arrays = arrays
        self.failed_groups = failed_groups
        self.fallback = fallback if fallback is not None else FallbackTable()
        self.bind_registry(registry)

    def bind_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry (``None`` selects the null registry).

        Instrument handles are cached here so the lookup path pays one
        method call per *batch*, a no-op under the null registry.
        """
        self.registry = resolve_registry(registry)
        self._m_lookups = self.registry.counter(
            "setsep.lookups", "keys looked up (batch or scalar)"
        )
        self._m_fallback_hits = self.registry.counter(
            "setsep.fallback_hits", "lookups answered by the exact fallback"
        )
        self._m_rebuilds = self.registry.counter(
            "setsep.group_rebuilds", "groups recomputed by the update path"
        )
        self._m_rebuild_failures = self.registry.counter(
            "setsep.group_rebuild_failures",
            "group recomputes that spilled to the fallback",
        )
        self._m_deltas_applied = self.registry.counter(
            "setsep.deltas_applied", "broadcast group deltas applied"
        )

    # ------------------------------------------------------------------
    # Shape properties
    # ------------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """First-level buckets (256 per block)."""
        return self.num_blocks * BUCKETS_PER_BLOCK

    @property
    def num_groups(self) -> int:
        """Second-level groups (64 per block)."""
        return self.num_blocks * GROUPS_PER_BLOCK

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: Key) -> int:
        """Map one key to its value.

        Never raises for unknown keys — it returns an arbitrary value
        instead (the structure's defining one-sided error).
        """
        return int(self.lookup_batch([key])[0])

    def lookup_batch(
        self,
        keys: Union[Sequence[Key], np.ndarray],
        with_groups: bool = False,
    ) -> Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """Vectorised lookup of many keys at once (paper Alg. 1).

        The three stages of the paper's batched lookup (bucket id, bucket to
        group, array probe) appear here as three vectorised passes; NumPy
        plays the role of the explicit prefetch pipeline.  All value bits of
        a key are probed in one fused ``(keys, value_bits)`` broadcast
        gather — the per-bit Python loop this replaced cost one full pass
        over the batch per value bit.

        ``with_groups=True`` additionally returns each key's group id as a
        second array — the hot-key cache fills entries with group tags and
        would otherwise recompute the bucket/group stage per miss batch.
        """
        keys = hashfamily.canonical_keys(keys)
        if keys.size == 0:
            empty = np.zeros(0, dtype=np.uint32)
            return (empty, empty.copy()) if with_groups else empty
        self._m_lookups.inc(keys.size)
        groups = self.groups_of(keys)
        g1, g2 = hashfamily.base_hashes(keys)
        m = self.params.array_bits
        vb = self.params.value_bits
        # (n, value_bits) gathers: every group row at once.
        idx = self.indices[groups].astype(np.uint64)
        cells = self.arrays[groups].astype(np.uint64)
        with np.errstate(over="ignore"):
            h = g1[:, None] + idx * g2[:, None]
        pos = hashfamily.positions(h, m).astype(np.uint64)
        bits = ((cells >> pos) & np.uint64(1)).astype(np.uint32)
        values = np.bitwise_or.reduce(
            bits << np.arange(vb, dtype=np.uint32)[None, :], axis=1
        )
        self._apply_fallback(keys, groups, values)
        if with_groups:
            return values, groups.astype(np.uint32)
        return values

    def _apply_fallback(
        self, keys: np.ndarray, groups: np.ndarray, values: np.ndarray
    ) -> None:
        """Overwrite results for keys whose group lives in the fallback."""
        if not len(self.fallback):
            return
        failed_idx = np.nonzero(self.failed_groups[groups])[0]
        if failed_idx.size == 0:
            return
        fkeys, fvalues = self.fallback.sorted_arrays()
        probes = keys[failed_idx]
        pos = np.searchsorted(fkeys, probes)
        in_range = pos < fkeys.size
        hit = np.zeros(failed_idx.size, dtype=bool)
        hit[in_range] = fkeys[pos[in_range]] == probes[in_range]
        hits = int(hit.sum())
        if hits:
            values[failed_idx[hit]] = fvalues[pos[hit]]
            self._m_fallback_hits.inc(hits)

    def buckets_of(self, keys: np.ndarray) -> np.ndarray:
        """Global bucket id of each (canonical) key."""
        return twolevel.bucket_ids(keys, self.num_blocks)

    def groups_of(self, keys: np.ndarray) -> np.ndarray:
        """Global group id of each (canonical) key."""
        buckets = self.buckets_of(keys)
        return twolevel.groups_from_choices(buckets, self.choices)

    def group_of(self, key: Key) -> int:
        """Global group id of a single key."""
        keys = hashfamily.canonical_keys([key])
        return int(self.groups_of(keys)[0])

    def block_of(self, key: Key) -> int:
        """Block id of a single key — the RIB partitioning unit (§4.5)."""
        return self.group_of(key) // GROUPS_PER_BLOCK

    # ------------------------------------------------------------------
    # Updates (paper §4.5)
    # ------------------------------------------------------------------

    def rebuild_group(
        self,
        group_id: int,
        keys: Union[Sequence[Key], np.ndarray],
        values: Sequence[int],
        removed_keys: Iterable[Key] = (),
    ) -> GroupDelta:
        """Recompute one group and return the delta to broadcast.

        Called by the RIB node that owns the group's block.  ``keys`` and
        ``values`` are the group's *complete* new contents; ``removed_keys``
        are keys that left the group (deletions) so stale fallback entries
        can be dropped cluster-wide.

        The delta is applied locally before being returned, so the owning
        node and its peers converge on identical state.
        """
        keys_arr = hashfamily.canonical_keys(keys)
        values_arr = np.asarray(list(values), dtype=np.uint32)
        if keys_arr.shape != values_arr.shape:
            raise ValueError("keys and values must have equal length")
        was_failed = bool(self.failed_groups[group_id])
        self._m_rebuilds.inc()
        g1, g2 = hashfamily.base_hashes(keys_arr)
        functions = group_search.search_group(g1, g2, values_arr, self.params)
        if functions is None:
            self._m_rebuild_failures.inc()

        removals: List[int] = [
            hashfamily.canonical_key(k) for k in removed_keys
        ]
        if functions is not None:
            if was_failed:
                removals.extend(int(k) for k in keys_arr)
            delta = GroupDelta(
                group_id=group_id,
                failed=False,
                indices=tuple(f.index for f in functions),
                arrays=tuple(f.array for f in functions),
                fallback_removals=tuple(removals),
            )
        else:
            upserts = tuple(
                (int(k), int(v)) for k, v in zip(keys_arr, values_arr)
            )
            delta = GroupDelta(
                group_id=group_id,
                failed=True,
                indices=(0,) * self.params.value_bits,
                arrays=(0,) * self.params.value_bits,
                fallback_upserts=upserts,
                fallback_removals=tuple(removals),
            )
        self.apply_delta(delta)
        return delta

    def apply_delta(self, delta: GroupDelta) -> None:
        """Apply a broadcast delta: a few memory writes, no recomputation."""
        g = delta.group_id
        if not 0 <= g < self.num_groups:
            raise ValueError(f"group id {g} out of range")
        self._m_deltas_applied.inc()
        self.indices[g, :] = delta.indices
        self.arrays[g, :] = delta.arrays
        self.failed_groups[g] = delta.failed
        for key in delta.fallback_removals:
            self.fallback.remove(key)
        for key, value in delta.fallback_upserts:
            self.fallback.insert(key, value)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size_bits(self, include_fallback: bool = True) -> int:
        """Logical structure size in bits.

        Charges 2 bits per bucket choice and (index_bits + array_bits) per
        value bit per group — the paper's accounting, independent of NumPy's
        in-memory padding.
        """
        bits = self.num_buckets * CHOICE_BITS
        bits += self.num_groups * self.params.group_bits
        if include_fallback:
            bits += self.fallback.size_bits()
        return bits

    def size_bytes(self) -> int:
        """Logical size rounded up to bytes (used by the cache model)."""
        return (self.size_bits() + 7) // 8

    def bits_per_key(self, num_keys: int) -> float:
        """Measured bits/key for a structure holding ``num_keys`` keys."""
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        return self.size_bits() / num_keys

    # ------------------------------------------------------------------
    # Introspection / (de)serialisation
    # ------------------------------------------------------------------

    def state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Raw state arrays (choices, indices, arrays, failed_groups)."""
        return self.choices, self.indices, self.arrays, self.failed_groups

    def copy(self) -> "SetSep":
        """Deep copy — used to replicate the GPT to every cluster node."""
        clone = SetSep(
            params=self.params,
            num_blocks=self.num_blocks,
            choices=self.choices.copy(),
            indices=self.indices.copy(),
            arrays=self.arrays.copy(),
            failed_groups=self.failed_groups.copy(),
            registry=self.registry,
        )
        clone.fallback.insert_many(self.fallback.items())
        return clone

    def __repr__(self) -> str:
        return (
            f"SetSep(config={self.params.name}, value_bits="
            f"{self.params.value_bits}, blocks={self.num_blocks}, "
            f"groups={self.num_groups}, fallback={len(self.fallback)})"
        )
