"""Delta updates for SetSep groups (paper §4.5).

When a key is inserted, changed or removed, only the owning RIB node
recomputes the affected group and broadcasts the result; every other node
applies it with a memory copy.  A delta carries the group id plus, per value
bit, the new hash index and m-bit array — "usually tens of bits".  The
encoding here is the literal bit-level wire format, so tests can assert the
paper's size claim and the update-rate benchmark measures realistic payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.params import SetSepParams
from repro.utils.bits import BitReader, BitWriter

#: Bits used for the group id on the wire.
GROUP_ID_BITS = 32

#: Bits used for the fallback entry counters.
COUNT_BITS = 8

#: Bits per fallback key / value on the wire.
FALLBACK_KEY_BITS = 64
FALLBACK_VALUE_BITS = 16


@dataclass(frozen=True)
class GroupDelta:
    """Replacement state for one group, broadcast cluster-wide.

    Attributes:
        group_id: global group index.
        failed: whether the group now lives in the fallback table.
        indices: per-value-bit hash-function index (all zero when failed).
        arrays: per-value-bit packed m-bit arrays.
        fallback_upserts: exact entries to add to the fallback table
            (non-empty only when the group's search failed).
        fallback_removals: keys to drop from the fallback table (the group
            used to be failed and now separates, or a key was deleted).
    """

    group_id: int
    failed: bool
    indices: Tuple[int, ...]
    arrays: Tuple[int, ...]
    fallback_upserts: Tuple[Tuple[int, int], ...] = field(default=())
    fallback_removals: Tuple[int, ...] = field(default=())

    def size_bits(self, params: SetSepParams) -> int:
        """Exact encoded size in bits (the paper's "tens of bits")."""
        body = GROUP_ID_BITS + 1 + params.value_bits * (
            params.index_bits + params.array_bits
        )
        body += 2 * COUNT_BITS
        body += len(self.fallback_upserts) * (
            FALLBACK_KEY_BITS + FALLBACK_VALUE_BITS
        )
        body += len(self.fallback_removals) * FALLBACK_KEY_BITS
        return body

    def encode(self, params: SetSepParams) -> bytes:
        """Serialise to the bit-level wire format."""
        if len(self.indices) != params.value_bits:
            raise ValueError("delta does not match params.value_bits")
        writer = BitWriter()
        writer.write(self.group_id, GROUP_ID_BITS)
        writer.write(int(self.failed), 1)
        for index, array in zip(self.indices, self.arrays):
            writer.write(index, params.index_bits)
            writer.write(array, params.array_bits)
        writer.write(len(self.fallback_upserts), COUNT_BITS)
        writer.write(len(self.fallback_removals), COUNT_BITS)
        for key, value in self.fallback_upserts:
            writer.write(key, FALLBACK_KEY_BITS)
            writer.write(value, FALLBACK_VALUE_BITS)
        for key in self.fallback_removals:
            writer.write(key, FALLBACK_KEY_BITS)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes, params: SetSepParams) -> "GroupDelta":
        """Parse a delta from its wire format."""
        reader = BitReader(data)
        group_id = reader.read(GROUP_ID_BITS)
        failed = bool(reader.read(1))
        indices: List[int] = []
        arrays: List[int] = []
        for _ in range(params.value_bits):
            indices.append(reader.read(params.index_bits))
            arrays.append(reader.read(params.array_bits))
        n_upserts = reader.read(COUNT_BITS)
        n_removals = reader.read(COUNT_BITS)
        upserts = tuple(
            (reader.read(FALLBACK_KEY_BITS), reader.read(FALLBACK_VALUE_BITS))
            for _ in range(n_upserts)
        )
        removals = tuple(
            reader.read(FALLBACK_KEY_BITS) for _ in range(n_removals)
        )
        return cls(
            group_id=group_id,
            failed=failed,
            indices=tuple(indices),
            arrays=tuple(arrays),
            fallback_upserts=upserts,
            fallback_removals=removals,
        )
