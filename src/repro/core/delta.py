"""Delta updates for SetSep groups (paper §4.5).

When a key is inserted, changed or removed, only the owning RIB node
recomputes the affected group and broadcasts the result; every other node
applies it with a memory copy.  A delta carries the group id plus, per value
bit, the new hash index and m-bit array — "usually tens of bits".  The
encoding here is the literal bit-level wire format, so tests can assert the
paper's size claim and the update-rate benchmark measures realistic payloads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.params import SetSepParams
from repro.utils.bits import BitReader, BitWriter

#: Bits used for the group id on the wire.
GROUP_ID_BITS = 32

#: Self-describing wire header: payload length u16, then the three
#: SetSep bit-widths (index, array, value) as u8 each.  The length
#: header lets a receiver frame deltas out of a byte stream, and the
#: bit-widths let it decode without knowing the sender's
#: :class:`SetSepParams` up front.
WIRE_HEADER = struct.Struct("<HBBB")


class DeltaWireError(ValueError):
    """A framed delta failed to parse (truncated or inconsistent)."""

#: Bits used for the fallback entry counters.
COUNT_BITS = 8

#: Bits per fallback key / value on the wire.
FALLBACK_KEY_BITS = 64
FALLBACK_VALUE_BITS = 16


@dataclass(frozen=True)
class GroupDelta:
    """Replacement state for one group, broadcast cluster-wide.

    Attributes:
        group_id: global group index.
        failed: whether the group now lives in the fallback table.
        indices: per-value-bit hash-function index (all zero when failed).
        arrays: per-value-bit packed m-bit arrays.
        fallback_upserts: exact entries to add to the fallback table
            (non-empty only when the group's search failed).
        fallback_removals: keys to drop from the fallback table (the group
            used to be failed and now separates, or a key was deleted).
    """

    group_id: int
    failed: bool
    indices: Tuple[int, ...]
    arrays: Tuple[int, ...]
    fallback_upserts: Tuple[Tuple[int, int], ...] = field(default=())
    fallback_removals: Tuple[int, ...] = field(default=())

    def size_bits(self, params: SetSepParams) -> int:
        """Exact encoded size in bits (the paper's "tens of bits")."""
        body = GROUP_ID_BITS + 1 + params.value_bits * (
            params.index_bits + params.array_bits
        )
        body += 2 * COUNT_BITS
        body += len(self.fallback_upserts) * (
            FALLBACK_KEY_BITS + FALLBACK_VALUE_BITS
        )
        body += len(self.fallback_removals) * FALLBACK_KEY_BITS
        return body

    def encode(self, params: SetSepParams) -> bytes:
        """Serialise to the bit-level wire format."""
        if len(self.indices) != params.value_bits:
            raise ValueError("delta does not match params.value_bits")
        writer = BitWriter()
        writer.write(self.group_id, GROUP_ID_BITS)
        writer.write(int(self.failed), 1)
        for index, array in zip(self.indices, self.arrays):
            writer.write(index, params.index_bits)
            writer.write(array, params.array_bits)
        writer.write(len(self.fallback_upserts), COUNT_BITS)
        writer.write(len(self.fallback_removals), COUNT_BITS)
        for key, value in self.fallback_upserts:
            writer.write(key, FALLBACK_KEY_BITS)
            writer.write(value, FALLBACK_VALUE_BITS)
        for key in self.fallback_removals:
            writer.write(key, FALLBACK_KEY_BITS)
        return writer.getvalue()

    def wire_bytes(self, params: SetSepParams) -> bytes:
        """Frame the delta for a byte stream: length + bit-widths + body.

        The body is exactly :meth:`encode`'s bit-level format; the
        5-byte header prepends the body length and the three
        ``SetSepParams`` widths so :meth:`from_wire_bytes` needs no
        out-of-band parameter agreement and multiple deltas can be
        concatenated back to back.
        """
        body = self.encode(params)
        if len(body) > 0xFFFF:
            raise ValueError("delta body too large for the wire header")
        return WIRE_HEADER.pack(
            len(body), params.index_bits, params.array_bits, params.value_bits
        ) + body

    @classmethod
    def from_wire_bytes(
        cls, data: bytes, offset: int = 0
    ) -> "Tuple[GroupDelta, SetSepParams, int]":
        """Parse one framed delta starting at ``offset``.

        Returns ``(delta, params, next_offset)`` where ``next_offset``
        points just past this delta — ready to parse the next one out of
        a concatenated stream.

        Raises:
            DeltaWireError: on truncation or an impossible header.
        """
        if offset + WIRE_HEADER.size > len(data):
            raise DeltaWireError("delta frame truncated in header")
        body_len, index_bits, array_bits, value_bits = WIRE_HEADER.unpack_from(
            data, offset
        )
        body_start = offset + WIRE_HEADER.size
        if body_start + body_len > len(data):
            raise DeltaWireError("delta frame truncated in body")
        try:
            params = SetSepParams(
                index_bits=index_bits,
                array_bits=array_bits,
                value_bits=value_bits,
            )
        except ValueError as exc:
            raise DeltaWireError(f"impossible delta header: {exc}") from exc
        body = data[body_start:body_start + body_len]
        try:
            delta = cls.decode(body, params)
        except EOFError as exc:
            raise DeltaWireError(f"delta body exhausted: {exc}") from exc
        if (delta.size_bits(params) + 7) // 8 != body_len:
            raise DeltaWireError("delta body length disagrees with content")
        return delta, params, body_start + body_len

    @classmethod
    def decode(cls, data: bytes, params: SetSepParams) -> "GroupDelta":
        """Parse a delta from its wire format."""
        reader = BitReader(data)
        group_id = reader.read(GROUP_ID_BITS)
        failed = bool(reader.read(1))
        indices: List[int] = []
        arrays: List[int] = []
        for _ in range(params.value_bits):
            indices.append(reader.read(params.index_bits))
            arrays.append(reader.read(params.array_bits))
        n_upserts = reader.read(COUNT_BITS)
        n_removals = reader.read(COUNT_BITS)
        upserts = tuple(
            (reader.read(FALLBACK_KEY_BITS), reader.read(FALLBACK_VALUE_BITS))
            for _ in range(n_upserts)
        )
        removals = tuple(
            reader.read(FALLBACK_KEY_BITS) for _ in range(n_removals)
        )
        return cls(
            group_id=group_id,
            failed=failed,
            indices=tuple(indices),
            arrays=tuple(arrays),
            fallback_upserts=upserts,
            fallback_removals=removals,
        )
