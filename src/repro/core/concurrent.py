"""Concurrent reads with safe in-place delta application (paper §4.5).

The paper closes §4.5 with explicit future work: "To allow
high-performance reads with safe in-place updates, techniques analogous to
those proposed in CuckooSwitch and MemC3 could be applied, although we
have not designed such a mechanism yet."  This module designs and
implements that mechanism for SetSep:

* every group gets a *seqlock* — an even/odd version counter.  A writer
  bumps it to odd, patches the group's (index, array) words and any
  fallback entries, then bumps it to even;
* a reader snapshots the version before and after reading the group's
  words; an odd version or a changed version means a torn read, and the
  reader retries;
* readers never block writers and vice versa — the delta application
  remains the plain memory copy that makes the update rate scale.

Python's GIL would hide real tearing, so the writer exposes deliberate
interruption points (:class:`SteppedWriter`) that tests use to interleave
a reader at every intermediate state and prove the protocol masks all of
them.  The protocol itself is exactly what a C implementation would run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.core.delta import GroupDelta
from repro.core.setsep import Key, SetSep


class RetryLimitExceeded(RuntimeError):
    """A reader observed an in-flight writer for too many attempts."""


@dataclass
class ReadStats:
    """Reader-side accounting."""

    reads: int = 0
    retries: int = 0


class SeqlockSetSep:
    """SetSep wrapper adding per-group seqlock versioning.

    Args:
        setsep: the structure to guard (wrapped, not copied; deltas must
            flow through :meth:`apply_delta` / :meth:`stepped_apply`).
        max_retries: reader retry budget before giving up.
    """

    def __init__(self, setsep: SetSep, max_retries: int = 64) -> None:
        self.setsep = setsep
        self.max_retries = max_retries
        self._versions = np.zeros(setsep.num_groups, dtype=np.uint64)
        self.stats = ReadStats()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def apply_delta(self, delta: GroupDelta) -> None:
        """Apply a delta under the seqlock (the non-interruptible path)."""
        for _ in self.stepped_apply(delta):
            pass

    def stepped_apply(self, delta: GroupDelta) -> Iterator[str]:
        """Apply a delta, yielding after every intermediate memory write.

        Yields stage labels (``"locked"``, ``"indices"``, ``"arrays"``,
        ``"fallback"``) so tests can interleave readers at each point.
        The final version bump happens after the last yield.
        """
        group = delta.group_id
        if not 0 <= group < self.setsep.num_groups:
            raise ValueError(f"group id {group} out of range")
        # Enter: odd version = write in progress.
        self._versions[group] += 1
        yield "locked"
        self.setsep.indices[group, :] = delta.indices
        yield "indices"
        self.setsep.arrays[group, :] = delta.arrays
        self.setsep.failed_groups[group] = delta.failed
        yield "arrays"
        for key in delta.fallback_removals:
            self.setsep.fallback.remove(key)
        for key, value in delta.fallback_upserts:
            self.setsep.fallback.insert(key, value)
        yield "fallback"
        # Exit: even version = consistent.
        self._versions[group] += 1

    def version_of(self, group: int) -> int:
        """Current version counter (odd while a write is in flight)."""
        return int(self._versions[group])

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def lookup(self, key: Key) -> int:
        """Seqlock-protected lookup.

        Raises:
            RetryLimitExceeded: if a writer stays in flight for more than
                ``max_retries`` observation attempts.
        """
        self.stats.reads += 1
        group = self.setsep.group_of(key)
        for _ in range(self.max_retries):
            before = int(self._versions[group])
            if before & 1:
                self.stats.retries += 1
                continue
            value = self.setsep.lookup(key)
            after = int(self._versions[group])
            if after == before:
                return value
            self.stats.retries += 1
        raise RetryLimitExceeded(
            f"group {group} stayed write-locked for {self.max_retries} "
            "attempts"
        )

    def lookup_batch(self, keys) -> np.ndarray:
        """Batched seqlock-protected lookup.

        Validates versions for the whole batch and re-reads only the keys
        whose groups changed mid-read.
        """
        from repro.core.hashfamily import canonical_keys

        keys_arr = canonical_keys(keys)
        self.stats.reads += len(keys_arr)
        groups = self.setsep.groups_of(keys_arr)
        out = np.zeros(len(keys_arr), dtype=np.uint32)
        pending = np.arange(len(keys_arr))
        for _ in range(self.max_retries):
            if len(pending) == 0:
                return out
            before = self._versions[groups[pending]].copy()
            values = self.setsep.lookup_batch(keys_arr[pending])
            after = self._versions[groups[pending]]
            clean = ((before & np.uint64(1)) == 0) & (after == before)
            out[pending[clean]] = values[clean]
            retried = pending[~clean]
            self.stats.retries += len(retried)
            pending = retried
        raise RetryLimitExceeded(
            f"{len(pending)} keys stayed write-locked for "
            f"{self.max_retries} attempts"
        )
