"""The staged batched-lookup pipeline of Algorithm 1 (paper §5.1).

The paper's batched lookup splits each query into three dependent stages —
bucket id, bucket-to-group indirection, group-info fetch — and issues a
prefetch for the *next* stage's address across the whole batch before
touching any of them, so DRAM misses overlap instead of serialising.

``SetSep.lookup_batch`` gets the same effect implicitly from NumPy
vectorisation; this module implements the algorithm *explicitly*, with a
stage-by-stage execution trace, for three reasons:

* it documents the paper's Algorithm 1 as runnable code;
* its :class:`PipelineTrace` counts the memory touches per stage, which
  the Figure 7 model's "2 dependent accesses per lookup" parameter is
  derived from — the trace keeps that calibration honest;
* tests assert it is bit-for-bit equivalent to the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

import numpy as np

from repro.core import hashfamily, twolevel
from repro.core.params import BUCKETS_PER_BLOCK, GROUPS_PER_BLOCK
from repro.core.setsep import Key, SetSep


@dataclass
class PipelineTrace:
    """Memory-touch accounting for one batched lookup."""

    batch_size: int = 0
    stage1_hash_ops: int = 0
    stage2_choice_reads: int = 0
    stage3_group_reads: int = 0
    prefetches_issued: int = 0
    fallback_probes: int = 0

    @property
    def dependent_reads_per_lookup(self) -> float:
        """The cache-model parameter: serialised reads per query."""
        if not self.batch_size:
            return 0.0
        return (
            self.stage2_choice_reads + self.stage3_group_reads
        ) / self.batch_size


def batched_lookup(
    setsep: SetSep,
    keys: Union[Sequence[Key], np.ndarray],
    trace: Union[PipelineTrace, None] = None,
) -> np.ndarray:
    """Algorithm 1, staged explicitly.

    Stage 1 computes every key's bucket id and "prefetches" the
    bucket-to-group choice; stage 2 reads the choices and prefetches each
    group's info word; stage 3 reads the group info and evaluates the
    stored hash function.  Returns exactly what ``SetSep.lookup_batch``
    returns.
    """
    keys_arr = hashfamily.canonical_keys(keys)
    n = len(keys_arr)
    if trace is None:
        trace = PipelineTrace()
    trace.batch_size += n
    if n == 0:
        return np.zeros(0, dtype=np.uint32)

    # ---- Stage 1: bucket ids; prefetch bucketIDToGroupID[bucket]. ----
    buckets = twolevel.bucket_ids(keys_arr, setsep.num_blocks)
    trace.stage1_hash_ops += n
    trace.prefetches_issued += n  # choices array lines

    # ---- Stage 2: read choices; prefetch groupInfoArray[group]. ----
    choices = setsep.choices[buckets]
    trace.stage2_choice_reads += n
    local_bucket = buckets % BUCKETS_PER_BLOCK
    block = buckets // BUCKETS_PER_BLOCK
    local_group = twolevel.CANDIDATE_TABLE[local_bucket, choices]
    groups = block * GROUPS_PER_BLOCK + local_group
    trace.prefetches_issued += n  # group info lines

    # ---- Stage 3: read group info; evaluate the stored function. ----
    g1, g2 = hashfamily.base_hashes(keys_arr)
    values = np.zeros(n, dtype=np.uint32)
    m = setsep.params.array_bits
    for bit in range(setsep.params.value_bits):
        indices = setsep.indices[groups, bit].astype(np.uint64)
        arrays = setsep.arrays[groups, bit].astype(np.uint64)
        with np.errstate(over="ignore"):
            h = g1 + indices * g2
        pos = hashfamily.positions(h, m).astype(np.uint64)
        values |= ((arrays >> pos) & np.uint64(1)).astype(np.uint32) << bit
    # Index + array live in one 24-bit word per (group, bit): one read.
    trace.stage3_group_reads += n

    failed = setsep.failed_groups[groups]
    for i in np.nonzero(failed)[0]:
        trace.fallback_probes += 1
        exact = setsep.fallback.get(int(keys_arr[i]))
        if exact is not None:
            values[i] = exact
    return values


def chunked_lookup(
    setsep: SetSep,
    keys: Union[Sequence[Key], np.ndarray],
    batch_size: int = 17,
) -> "tuple[np.ndarray, List[PipelineTrace]]":
    """Run the pipeline in fixed-size batches (the DPDK burst pattern).

    CuckooSwitch's *dynamic batching* sizes each batch by however many
    packets the NIC delivered; here the caller picks the burst size, and
    one trace per burst is returned so tests can see the batching.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    keys_arr = hashfamily.canonical_keys(keys)
    outputs = []
    traces: List[PipelineTrace] = []
    for start in range(0, len(keys_arr), batch_size):
        trace = PipelineTrace()
        outputs.append(
            batched_lookup(setsep, keys_arr[start : start + batch_size], trace)
        )
        traces.append(trace)
    if not outputs:
        return np.zeros(0, dtype=np.uint32), traces
    return np.concatenate(outputs), traces
