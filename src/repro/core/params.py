"""Configuration of the SetSep data structure (paper §4.2–§4.4).

The paper names configurations "x+y": ``x`` bits store the hash-function
index and ``y = m`` bits store the per-group bit array.  The defaults here
are the paper's production choice, "16+8" with 16-key groups, which costs
24 bits per group per value bit = 1.5 bits/key, plus the constant 0.5
bits/key for the two-level bucket-to-group mapping.
"""

from __future__ import annotations

from dataclasses import dataclass


#: First-level buckets per 1024-key block (average bucket size 4).
BUCKETS_PER_BLOCK = 256

#: Groups per block (average group size 16).
GROUPS_PER_BLOCK = 64

#: Expected keys per block (BUCKETS_PER_BLOCK * average bucket size).
KEYS_PER_BLOCK = 1024

#: Candidate groups per bucket; the stored choice is log2(4) = 2 bits.
CANDIDATES_PER_BUCKET = 4

#: Bits used to store the chosen candidate per bucket.
CHOICE_BITS = 2

#: Sentinel hash index marking a group whose search failed (fallback used).
FAILED_GROUP = 0xFFFF


@dataclass(frozen=True)
class SetSepParams:
    """Tunable parameters of a SetSep instance.

    Attributes:
        index_bits: bits allocated to the per-group hash-function index
            ("x" in the paper's "x+y" notation).  The search tries indices
            ``0 .. 2**index_bits - 2``; the all-ones index is the failure
            sentinel that routes a group to the fallback table.
        array_bits: size m of the per-group bit array ("y").  Must be
            between 1 and 32 so the array packs into a uint32.
        value_bits: bits per stored value; a cluster of N nodes needs
            ``ceil(log2 N)``.  One hash function is searched per value bit
            (paper §4.3).
        assignment_trials: how many runs of the randomised greedy
            bucket-to-group assignment to attempt per block, keeping the
            most balanced (paper §4.4 "run this randomized algorithm
            several times per block").
        search_chunk: how many candidate indices the vectorised search
            evaluates per NumPy call; purely a performance knob.
        seed: seed for the randomised greedy assignment tie-breaking.
    """

    index_bits: int = 16
    array_bits: int = 8
    value_bits: int = 1
    assignment_trials: int = 3
    search_chunk: int = 256
    seed: int = 0x5CA1EB

    def __post_init__(self) -> None:
        if not 1 <= self.index_bits <= 16:
            raise ValueError("index_bits must be in [1, 16]")
        if not 1 <= self.array_bits <= 32:
            raise ValueError("array_bits (m) must be in [1, 32]")
        if not 1 <= self.value_bits <= 16:
            raise ValueError("value_bits must be in [1, 16]")
        if self.assignment_trials < 1:
            raise ValueError("assignment_trials must be >= 1")
        if self.search_chunk < 1:
            raise ValueError("search_chunk must be >= 1")

    @property
    def max_index(self) -> int:
        """Largest usable hash-function index (one below the sentinel)."""
        return (1 << self.index_bits) - 1

    @property
    def group_bits(self) -> int:
        """Storage per group: (index + array) bits for each value bit."""
        return (self.index_bits + self.array_bits) * self.value_bits

    @property
    def name(self) -> str:
        """The paper's "x+y" configuration label."""
        return f"{self.index_bits}+{self.array_bits}"

    def bits_per_key(self) -> float:
        """Expected storage in bits/key, including the two-level mapping.

        16-key groups at ``group_bits`` bits each contribute
        ``group_bits / 16`` and the 2-bit choice per 4-key bucket adds the
        constant 0.5 — e.g. 3.5 bits/key for the 16+8, 2-bit-value GPT the
        paper quotes in its conclusion.
        """
        avg_group = KEYS_PER_BLOCK / GROUPS_PER_BLOCK
        avg_bucket = KEYS_PER_BLOCK / BUCKETS_PER_BLOCK
        return self.group_bits / avg_group + CHOICE_BITS / avg_bucket

    @staticmethod
    def for_cluster(num_nodes: int, **overrides) -> "SetSepParams":
        """Parameters sized for a GPT mapping keys to ``num_nodes`` nodes."""
        if num_nodes < 1:
            raise ValueError("cluster must have at least one node")
        value_bits = max(1, (num_nodes - 1).bit_length())
        return SetSepParams(value_bits=value_bits, **overrides)
