"""The performance lab: persisted benchmark trajectory + regression gates.

The paper's §6 results are measured trade-off curves; this subsystem
makes the reproduction's own measurements first-class artifacts instead
of transient pytest output:

* :mod:`repro.perflab.registry` — ``@perflab.benchmark`` registration,
  the ``BenchSpec``/``BenchResult`` schema, min-of-K timing, and ops
  counters pulled from the :mod:`repro.obs` registry;
* :mod:`repro.perflab.runner` — suite discovery over
  ``benchmarks/bench_*.py`` and execution into a canonical, sorted-key
  ``BENCH_<gitsha>.json`` stamped with the environment fingerprint;
* :mod:`repro.perflab.compare` — noise-aware regression verdicts
  (relative bands + MAD-derived sigma thresholds) as a human table and a
  machine decision;
* CLI: ``repro bench run|compare|list`` (see :mod:`repro.cli`).

Quick use::

    from repro import perflab

    perflab.discover()
    artifact = perflab.run_suite("smoke", scale=1)
    path = perflab.write_artifact(artifact)
    report = perflab.compare_artifacts(perflab.load_artifact(old), artifact)
    print(report.table())
"""

from repro.perflab.artifact import (
    Artifact,
    ArtifactError,
    artifact_filename,
    canonical_json,
    deterministic_view,
    load_artifact,
    select_baseline,
    write_artifact,
)
from repro.perflab.compare import (
    BenchDelta,
    CompareReport,
    compare_artifacts,
    noise_sigma,
)
from repro.perflab.registry import (
    KNOWN_SUITES,
    SCHEMA_VERSION,
    BenchContext,
    BenchResult,
    BenchSpec,
    BenchmarkError,
    all_specs,
    benchmark,
    clear,
    get,
    specs_for_suite,
)
from repro.perflab.runner import DiscoveryError, discover, run_suite

__all__ = [
    "Artifact",
    "ArtifactError",
    "BenchContext",
    "BenchDelta",
    "BenchResult",
    "BenchSpec",
    "BenchmarkError",
    "CompareReport",
    "DiscoveryError",
    "KNOWN_SUITES",
    "SCHEMA_VERSION",
    "all_specs",
    "artifact_filename",
    "benchmark",
    "canonical_json",
    "clear",
    "compare_artifacts",
    "deterministic_view",
    "discover",
    "get",
    "load_artifact",
    "noise_sigma",
    "run_suite",
    "select_baseline",
    "specs_for_suite",
    "write_artifact",
]
