"""The perf-lab benchmark registry: specs, results and the run context.

The paper's §6 is a set of measured trade-off curves; this module is the
substrate that lets the reproduction *keep* such measurements rather than
print and forget them.  A benchmark module registers its measured path
once::

    from repro import perflab

    @perflab.benchmark("table1.construction.16+8", figure="Table 1")
    def construction(ctx):
        keys = make_keys(50_000 * ctx.scale)
        ctx.set_params(n_keys=len(keys), config="16+8")
        _, stats = ctx.timeit(lambda: build(keys, values))
        ctx.record(keys_per_second=stats.keys_per_second)

and the runner (:mod:`repro.perflab.runner`) turns every registered spec
into a :class:`BenchResult` inside a persisted ``BENCH_<gitsha>.json``
artifact (:mod:`repro.perflab.artifact`).

The schema splits each result into *deterministic* content (workload
``params`` and ops ``counters`` read from the :mod:`repro.obs` registry)
and *timing-dependent* content (``samples``/``best`` and ``derived``
metrics such as rates), so artifacts can be byte-compared outside their
timing fields and diffed with noise awareness
(:mod:`repro.perflab.compare`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry

#: Suites a benchmark may belong to.  ``smoke`` is the fast, CI-friendly
#: subset; ``full`` is everything worth a trajectory point.  The runner
#: also accepts the pseudo-suite ``all``.
KNOWN_SUITES: Tuple[str, ...] = ("smoke", "full")

#: Schema version stamped into every artifact; bump on breaking changes.
SCHEMA_VERSION = 1


class BenchmarkError(RuntimeError):
    """A benchmark misbehaved (bad registration, bad result content)."""


def _check_jsonable(mapping: Mapping[str, Any], what: str) -> Dict[str, Any]:
    """Restrict recorded values to JSON scalars (keeps artifacts diffable)."""
    out: Dict[str, Any] = {}
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise BenchmarkError(f"{what} keys must be strings, got {key!r}")
        if isinstance(value, bool) or value is None or isinstance(value, str):
            out[key] = value
        elif isinstance(value, (int, float)):
            out[key] = value if isinstance(value, int) else float(value)
        else:
            try:  # NumPy scalars: keep artifacts free of np types.
                out[key] = value.item()
            except AttributeError:
                raise BenchmarkError(
                    f"{what}[{key!r}] must be a JSON scalar, got "
                    f"{type(value).__name__}"
                ) from None
    return out


@dataclass(frozen=True)
class BenchSpec:
    """A registered benchmark: the measured path plus its metadata."""

    name: str
    fn: Callable[["BenchContext"], None]
    figure: str
    suites: Tuple[str, ...]
    repeats: int
    module: str
    description: str

    def to_row(self) -> Dict[str, object]:
        """JSON-ready listing row (``repro bench list --json``)."""
        return {
            "name": self.name,
            "figure": self.figure,
            "suites": list(self.suites),
            "repeats": self.repeats,
            "module": self.module,
            "description": self.description,
        }


@dataclass
class BenchResult:
    """One benchmark's measurements, split deterministic vs timing."""

    name: str
    figure: str
    module: str
    suites: Tuple[str, ...]
    params: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    derived: Dict[str, Any] = field(default_factory=dict)
    samples: List[float] = field(default_factory=list)
    repeats: int = 1

    @property
    def best(self) -> Optional[float]:
        """Min-of-K wall time in seconds (``None`` if nothing was timed)."""
        return min(self.samples) if self.samples else None

    def to_dict(self) -> Dict[str, Any]:
        """The artifact entry for this result.

        ``timing`` and ``derived`` hold everything wall-clock-dependent;
        every other key is deterministic for a fixed scale and checkout
        (see :func:`repro.perflab.artifact.deterministic_view`).
        """
        return {
            "name": self.name,
            "figure": self.figure,
            "module": self.module,
            "suites": list(self.suites),
            "params": dict(self.params),
            "counters": dict(self.counters),
            "derived": dict(self.derived),
            "timing": {
                "repeats": self.repeats,
                "samples": list(self.samples),
                "best": self.best,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchResult":
        """Parse an artifact entry (inverse of :meth:`to_dict`)."""
        timing = data.get("timing", {})
        return cls(
            name=data["name"],
            figure=data.get("figure", ""),
            module=data.get("module", ""),
            suites=tuple(data.get("suites", ())),
            params=dict(data.get("params", {})),
            counters=dict(data.get("counters", {})),
            derived=dict(data.get("derived", {})),
            samples=[float(s) for s in timing.get("samples", [])],
            repeats=int(timing.get("repeats", 1)),
        )


class BenchContext:
    """What a benchmark function receives: scale, timing, and recording.

    ``registry`` is a fresh :class:`repro.obs.MetricsRegistry` per run;
    bind instrumented components to it and the runner snapshots its
    counters into the result's deterministic ``counters`` section.
    """

    def __init__(self, spec: BenchSpec, scale: int, repeats: int) -> None:
        self.spec = spec
        self.scale = max(1, int(scale))
        self.repeats = max(1, int(repeats))
        self.registry = MetricsRegistry()
        self._params: Dict[str, Any] = {}
        self._derived: Dict[str, Any] = {}
        self._samples: List[float] = []

    @property
    def samples(self) -> Tuple[float, ...]:
        """Wall-time samples recorded so far (seconds, read-only)."""
        return tuple(self._samples)

    def set_params(self, **params: Any) -> None:
        """Record workload facts (sizes, configs) — deterministic content."""
        self._params.update(_check_jsonable(params, "params"))

    def record(self, **metrics: Any) -> None:
        """Record derived metrics (rates, ratios) — timing-dependent."""
        self._derived.update(_check_jsonable(metrics, "derived"))

    def timeit(
        self,
        fn: Callable[[], Any],
        repeats: Optional[int] = None,
    ) -> Any:
        """Run ``fn`` K times, record each wall time, return the last value.

        The artifact keeps every sample; comparisons use the min (the
        classic low-noise estimator) with the sample spread feeding the
        MAD-based noise threshold.
        """
        reps = self.repeats if repeats is None else max(1, int(repeats))
        result = None
        for _ in range(reps):
            started = time.perf_counter()
            result = fn()
            self._samples.append(time.perf_counter() - started)
        return result

    def finish(self) -> BenchResult:
        """Assemble the result (runner-internal)."""
        return BenchResult(
            name=self.spec.name,
            figure=self.spec.figure,
            module=self.spec.module,
            suites=self.spec.suites,
            params=dict(self._params),
            counters=dict(self.registry.counters()),
            derived=dict(self._derived),
            samples=list(self._samples),
            repeats=self.repeats,
        )


#: The process-wide registry of benchmark specs, keyed by name.
_REGISTRY: Dict[str, BenchSpec] = {}


def benchmark(
    name: str,
    figure: str = "",
    suites: Sequence[str] = ("smoke", "full"),
    repeats: int = 3,
) -> Callable[[Callable[[BenchContext], None]], Callable[[BenchContext], None]]:
    """Register a measured path with the perf lab.

    Args:
        name: stable dotted identifier (``table1.construction.16+8``);
            artifact comparison matches on it.
        figure: the paper figure/table this measurement reproduces.
        suites: which suites include it (``smoke`` must stay fast).
        repeats: default min-of-K count for :meth:`BenchContext.timeit`.

    Re-registering the same name from the same module replaces the spec
    (so re-imports are harmless); registering it from a different module
    is an error.
    """
    unknown = set(suites) - set(KNOWN_SUITES)
    if unknown or not suites:
        raise BenchmarkError(
            f"benchmark {name!r}: suites must be a non-empty subset of "
            f"{KNOWN_SUITES}, got {tuple(suites)}"
        )

    def decorate(fn: Callable[[BenchContext], None]) -> Callable[[BenchContext], None]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.module != fn.__module__:
            raise BenchmarkError(
                f"benchmark name {name!r} already registered by "
                f"{existing.module}"
            )
        doc = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = BenchSpec(
            name=name,
            fn=fn,
            figure=figure,
            suites=tuple(suites),
            repeats=max(1, int(repeats)),
            module=fn.__module__,
            description=doc[0] if doc else "",
        )
        return fn

    return decorate


def get(name: str) -> BenchSpec:
    """The spec registered under ``name`` (KeyError if absent)."""
    return _REGISTRY[name]


def all_specs() -> List[BenchSpec]:
    """Every registered spec, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def specs_for_suite(suite: str) -> List[BenchSpec]:
    """Specs belonging to ``suite`` (``all`` selects everything)."""
    if suite == "all":
        return all_specs()
    if suite not in KNOWN_SUITES:
        raise BenchmarkError(
            f"unknown suite {suite!r}; choose from {KNOWN_SUITES + ('all',)}"
        )
    return [spec for spec in all_specs() if suite in spec.suites]


def clear() -> None:
    """Drop every registration (test isolation helper)."""
    _REGISTRY.clear()
