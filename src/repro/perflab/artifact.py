"""``BENCH_*.json`` artifacts: canonical serialisation and parsing.

One artifact is one point on the repository's performance trajectory:
the environment fingerprint, the suite/scale that ran, and every
benchmark's :class:`~repro.perflab.registry.BenchResult`.  Artifacts are
written as *canonical JSON* — sorted keys, two-space indent, trailing
newline — so that byte comparison is meaningful and diffs are small.

Determinism contract: for a fixed checkout, machine and scale, two runs
produce artifacts whose :func:`deterministic_view` is byte-identical;
only each result's ``timing`` and ``derived`` sections may differ.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.perflab.registry import SCHEMA_VERSION, BenchResult

PathLike = Union[str, Path]


class ArtifactError(ValueError):
    """An artifact file or document failed validation."""


@dataclass
class Artifact:
    """One persisted perf-lab run."""

    suite: str
    scale: int
    environment: Dict[str, Any]
    results: List[BenchResult] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready document; results are sorted by benchmark name."""
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "scale": self.scale,
            "environment": dict(self.environment),
            "results": [
                r.to_dict() for r in sorted(self.results, key=lambda r: r.name)
            ],
        }

    def to_json(self) -> str:
        """The canonical JSON document."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Artifact":
        """Parse a document (inverse of :meth:`to_dict`)."""
        try:
            version = int(data["schema_version"])
            if version != SCHEMA_VERSION:
                raise ArtifactError(
                    f"unsupported schema_version {version} "
                    f"(this build reads {SCHEMA_VERSION})"
                )
            return cls(
                suite=str(data["suite"]),
                scale=int(data["scale"]),
                environment=dict(data["environment"]),
                results=[BenchResult.from_dict(r) for r in data["results"]],
                schema_version=version,
            )
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed artifact: {exc}") from exc

    def results_by_name(self) -> Dict[str, BenchResult]:
        """Results keyed by benchmark name."""
        return {r.name: r for r in self.results}


def canonical_json(document: Mapping[str, Any]) -> str:
    """Sorted-key, indented JSON with a trailing newline.

    The one serialisation every artifact writer uses, so serialize →
    parse → serialize is byte-identical and ``cmp a.json b.json`` is a
    valid equality check.
    """
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def deterministic_view(document: Mapping[str, Any]) -> Dict[str, Any]:
    """The document with every timing-dependent field removed.

    Drops each result's ``timing`` and ``derived`` sections; what remains
    (schema, suite, scale, environment, params, counters) must be
    byte-identical across runs on the same checkout and machine.
    """
    out = json.loads(json.dumps(document))  # deep copy via JSON
    for result in out.get("results", []):
        result.pop("timing", None)
        result.pop("derived", None)
    return out


def load_artifact(path: PathLike) -> Artifact:
    """Read and validate a ``BENCH_*.json`` file."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ArtifactError(f"cannot read {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ArtifactError(f"{path}: artifact root must be an object")
    return Artifact.from_dict(data)


def artifact_filename(git_sha: str) -> str:
    """``BENCH_<shortsha>.json`` (``nogit`` outside a repository)."""
    sha = (git_sha or "nogit")[:12]
    safe = "".join(c for c in sha if c.isalnum()) or "nogit"
    return f"BENCH_{safe}.json"


def select_baseline(
    paths: Sequence[PathLike],
    current_sha: Optional[str] = None,
    warn: Optional[Callable[[str], None]] = None,
) -> Path:
    """Pick one baseline out of several candidate ``BENCH_*.json`` files.

    CI checkouts accumulate committed baselines (one per refresh), and a
    shell glob hands all of them to ``repro bench compare``.  Selection
    is deterministic:

    1. a candidate named exactly ``BENCH_<current git sha>.json`` wins
       (the baseline measured on this very revision);
    2. otherwise the newest by mtime wins and ``warn`` is told which
       candidates lost (ties broken by filename, so equal-mtime
       checkouts — fresh clones — still pick deterministically).

    Raises:
        ArtifactError: when ``paths`` is empty.
    """
    candidates = [Path(p) for p in paths]
    if not candidates:
        raise ArtifactError("no baseline artifacts given")
    if len(candidates) == 1:
        return candidates[0]
    if current_sha:
        wanted = artifact_filename(current_sha)
        for path in candidates:
            if path.name == wanted:
                return path
    def mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return float("-inf")
    ranked = sorted(candidates, key=lambda p: (mtime(p), p.name), reverse=True)
    chosen = ranked[0]
    if warn is not None:
        losers = ", ".join(str(p) for p in ranked[1:])
        warn(
            f"multiple baselines given; no exact git-sha match, using "
            f"newest by mtime: {chosen} (ignored: {losers})"
        )
    return chosen


def write_artifact(artifact: Artifact, out_dir: PathLike = ".") -> Path:
    """Write the canonical artifact file; returns its path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    sha = str(artifact.environment.get("git_sha", "nogit"))
    path = directory / artifact_filename(sha)
    path.write_text(artifact.to_json(), encoding="utf-8")
    return path
