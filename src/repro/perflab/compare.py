"""Noise-aware artifact comparison: the perf-lab regression gate.

Timings are noisy; naive "is B slower than A" gates either miss real
regressions or cry wolf.  The gate here follows the CRAM-lens discipline:
a benchmark only *fails* when its best time worsened by more than both

* a relative band (default 25% fail / 10% warn of the baseline best), and
* ``mad_k`` × the *baseline* run's noise sigma estimated from its own
  samples (median absolute deviation, scaled to sigma by 1.4826),

so a micro-benchmark whose baseline samples scatter by 30% cannot fail
on a 25% swing, while a stable benchmark that genuinely slowed 25% does.
The noise term is anchored on the baseline alone on purpose: a genuinely
regressed run usually scatters *more*, and pooling would let it raise
its own gate.
Improvements beyond the warn threshold are reported as ``improved``;
benchmarks present on only one side are ``new``/``missing`` (warnings,
never failures — adding a benchmark must not break the gate).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.perflab.artifact import Artifact

#: sigma ≈ 1.4826 × MAD for normally distributed noise.
MAD_TO_SIGMA = 1.4826

#: Ordered most-severe-first; the table sorts by this.
_STATUS_ORDER = ("fail", "warn", "missing", "new", "improved", "ok", "untimed")


def noise_sigma(samples: Sequence[float]) -> float:
    """Robust per-benchmark noise estimate from one run's samples."""
    if len(samples) < 2:
        return 0.0
    med = statistics.median(samples)
    mad = statistics.median(abs(s - med) for s in samples)
    return MAD_TO_SIGMA * mad


@dataclass
class BenchDelta:
    """One benchmark's verdict in a comparison."""

    name: str
    status: str
    baseline_best: Optional[float] = None
    current_best: Optional[float] = None
    delta_seconds: Optional[float] = None
    ratio: Optional[float] = None
    noise_sigma: Optional[float] = None
    fail_threshold: Optional[float] = None
    warn_threshold: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "baseline_best": self.baseline_best,
            "current_best": self.current_best,
            "delta_seconds": self.delta_seconds,
            "ratio": self.ratio,
            "noise_sigma": self.noise_sigma,
            "fail_threshold": self.fail_threshold,
            "warn_threshold": self.warn_threshold,
        }


@dataclass
class CompareReport:
    """The full comparison: per-benchmark deltas plus the gate verdict."""

    deltas: List[BenchDelta] = field(default_factory=list)
    fail_band: float = 0.25
    warn_band: float = 0.10
    mad_k: float = 4.0

    def _with_status(self, status: str) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status == status]

    @property
    def failures(self) -> List[BenchDelta]:
        """Regressions beyond both the fail band and the noise threshold."""
        return self._with_status("fail")

    @property
    def warnings(self) -> List[BenchDelta]:
        """Soft findings: warn-band regressions, new/missing benchmarks."""
        return [
            d for d in self.deltas if d.status in ("warn", "new", "missing")
        ]

    @property
    def ok(self) -> bool:
        """True when no benchmark fails the gate."""
        return not self.failures

    @property
    def verdict(self) -> str:
        """``pass`` / ``warn`` / ``fail`` for the whole comparison."""
        if self.failures:
            return "fail"
        return "warn" if self.warnings else "pass"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "ok": self.ok,
            "thresholds": {
                "fail_band": self.fail_band,
                "warn_band": self.warn_band,
                "mad_k": self.mad_k,
            },
            "counts": {
                status: len(self._with_status(status))
                for status in _STATUS_ORDER
            },
            "benchmarks": [d.to_dict() for d in self.deltas],
        }

    def table(self) -> str:
        """The human-readable comparison table."""
        lines = [
            f"{'benchmark':<40} {'baseline':>10} {'current':>10} "
            f"{'change':>8} {'noise':>9}  status"
        ]
        ordered = sorted(
            self.deltas,
            key=lambda d: (_STATUS_ORDER.index(d.status), d.name),
        )
        for d in ordered:
            base = f"{d.baseline_best * 1e3:.2f}ms" if d.baseline_best else "-"
            cur = f"{d.current_best * 1e3:.2f}ms" if d.current_best else "-"
            change = (
                f"{(d.ratio - 1) * 100:+.1f}%" if d.ratio is not None else "-"
            )
            noise = (
                f"{d.noise_sigma * 1e3:.2f}ms"
                if d.noise_sigma is not None
                else "-"
            )
            lines.append(
                f"{d.name:<40} {base:>10} {cur:>10} {change:>8} {noise:>9}  "
                f"{d.status}"
            )
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def compare_artifacts(
    baseline: Artifact,
    current: Artifact,
    fail_band: float = 0.25,
    warn_band: float = 0.10,
    mad_k: float = 4.0,
) -> CompareReport:
    """Compare two artifacts benchmark-by-benchmark.

    A matched benchmark fails when ``current.best - baseline.best`` exceeds
    ``max(fail_band * baseline.best, mad_k * sigma)``; the warn rule
    substitutes ``warn_band``.  Sigma is the baseline run's
    :func:`noise_sigma` (see the module docstring for why the current
    run's scatter does not feed the threshold).
    """
    if not 0 < warn_band <= fail_band:
        raise ValueError("need 0 < warn_band <= fail_band")
    base_results = baseline.results_by_name()
    cur_results = current.results_by_name()
    deltas: List[BenchDelta] = []

    for name in sorted(set(base_results) | set(cur_results)):
        base = base_results.get(name)
        cur = cur_results.get(name)
        if base is None:
            deltas.append(BenchDelta(name=name, status="new",
                                     current_best=cur.best))
            continue
        if cur is None:
            deltas.append(BenchDelta(name=name, status="missing",
                                     baseline_best=base.best))
            continue
        if base.best is None or cur.best is None:
            deltas.append(BenchDelta(name=name, status="untimed",
                                     baseline_best=base.best,
                                     current_best=cur.best))
            continue

        sigma = noise_sigma(base.samples)
        delta = cur.best - base.best
        fail_at = max(fail_band * base.best, mad_k * sigma)
        warn_at = max(warn_band * base.best, mad_k * sigma)
        if delta > fail_at:
            status = "fail"
        elif delta > warn_at:
            status = "warn"
        elif delta < -warn_at:
            status = "improved"
        else:
            status = "ok"
        deltas.append(
            BenchDelta(
                name=name,
                status=status,
                baseline_best=base.best,
                current_best=cur.best,
                delta_seconds=delta,
                ratio=cur.best / base.best if base.best > 0 else None,
                noise_sigma=sigma,
                fail_threshold=fail_at,
                warn_threshold=warn_at,
            )
        )

    return CompareReport(
        deltas=deltas,
        fail_band=fail_band,
        warn_band=warn_band,
        mad_k=mad_k,
    )
