"""Suite discovery and execution: registered specs → a persisted artifact.

Discovery imports every ``benchmarks/bench_*.py`` module so their
``@perflab.benchmark`` registrations execute; running walks the selected
suite in name order, gives each benchmark a fresh
:class:`~repro.perflab.registry.BenchContext`, and stamps the
:func:`repro.utils.env.environment_fingerprint` into the artifact.

The runner is decoupled from pytest on purpose: ``repro bench run`` works
anywhere the ``benchmarks`` package is importable (the repository root,
or any process that already imported it), and the pytest benchmarks stay
usable as before.
"""

from __future__ import annotations

import fnmatch
import importlib
import sys
from pathlib import Path
from typing import Callable, List, Optional

from repro.perflab import registry as reg
from repro.perflab.artifact import Artifact
from repro.utils.env import environment_fingerprint

#: Default workload multiplier source, mirroring ``benchmarks/conftest``.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


class DiscoveryError(RuntimeError):
    """The ``benchmarks`` package could not be located or imported."""


def _benchmark_package():
    """Import the repository's ``benchmarks`` package, extending sys.path.

    Tries a plain import first (works under pytest and in-repo scripts);
    falls back to the current directory and the repository root inferred
    from the installed ``repro`` package (``src/repro`` → repo root).
    """
    candidates = [Path.cwd()]
    try:
        import repro

        candidates.append(Path(repro.__file__).resolve().parents[2])
    except Exception:  # pragma: no cover - repro is always importable here
        pass

    try:
        return importlib.import_module("benchmarks")
    except ImportError:
        pass
    for root in candidates:
        if (root / "benchmarks" / "__init__.py").is_file():
            if str(root) not in sys.path:
                sys.path.insert(0, str(root))
            try:
                return importlib.import_module("benchmarks")
            except ImportError:
                continue
    raise DiscoveryError(
        "cannot import the 'benchmarks' package; run from the repository "
        "root or add it to PYTHONPATH"
    )


def discover() -> List[str]:
    """Import every ``benchmarks/bench_*.py`` module; returns their names.

    Idempotent: registrations replace themselves on re-import.
    """
    package = _benchmark_package()
    package_dir = Path(package.__file__).parent
    imported = []
    for path in sorted(package_dir.glob("bench_*.py")):
        module = f"benchmarks.{path.stem}"
        importlib.import_module(module)
        imported.append(module)
    if not imported:
        raise DiscoveryError(f"no bench_*.py modules under {package_dir}")
    return imported


def run_suite(
    suite: str = "smoke",
    scale: int = 1,
    repeats: Optional[int] = None,
    name_filter: Optional[str] = None,
    emit: Optional[Callable[[str], None]] = None,
) -> Artifact:
    """Run the selected suite and return the in-memory artifact.

    Args:
        suite: ``smoke``, ``full`` or ``all``.
        scale: workload multiplier (the benchmarks' ``REPRO_BENCH_SCALE``).
        repeats: override every spec's min-of-K count (None keeps each
            spec's own default).
        name_filter: ``fnmatch`` pattern (or plain substring) selecting a
            subset of benchmark names.
        emit: optional progress sink (one line per benchmark).

    The selected specs run in name order; an exception in any benchmark
    aborts the run (a broken measurement must not produce an artifact).
    """
    say = emit or (lambda _line: None)
    specs = reg.specs_for_suite(suite)
    if name_filter:
        pattern = (
            name_filter if any(c in name_filter for c in "*?[")
            else f"*{name_filter}*"
        )
        specs = [s for s in specs if fnmatch.fnmatch(s.name, pattern)]
    results = []
    for index, spec in enumerate(specs, 1):
        say(f"[{index}/{len(specs)}] {spec.name} ...")
        ctx = reg.BenchContext(
            spec,
            scale=scale,
            repeats=spec.repeats if repeats is None else repeats,
        )
        spec.fn(ctx)
        result = ctx.finish()
        best = result.best
        say(
            f"[{index}/{len(specs)}] {spec.name}: "
            + (f"best {best * 1e3:.2f}ms "
               f"over {len(result.samples)} samples" if best is not None
               else "recorded (untimed)")
        )
        results.append(result)
    return Artifact(
        suite=suite,
        scale=max(1, int(scale)),
        environment=environment_fingerprint(),
        results=results,
    )
