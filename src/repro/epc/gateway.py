"""The LTE-to-Internet gateway: PFE + DPE over a cluster (paper §2, §6.2).

The gateway is the red box of Figure 1: downstream Internet frames enter at
any cluster node (ECMP), the Packet Forwarding Engine delivers them to
their flow's handling node, and the Data Plane Engine there charges the
flow, enforces access control, and re-encapsulates the packet into its
GTP-U tunnel toward the right base station.  Upstream packets are
decapsulated and forwarded to the peering routers.

ScaleBricks changes only the PFE (the ``architecture`` argument); the DPE
here is functional — real byte counters, a real ACL, real encapsulation —
so the PFE swap is exercised end to end at byte level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.architectures import Architecture
from repro.cluster.cluster import Cluster, FibFactory, RouteResult
from repro.cluster.update import UpdateEngine
from repro.core.params import SetSepParams
from repro.epc import fastpath
from repro.epc.controller import AssignmentPolicy, EpcController, FlowRecord
from repro.epc.dpe import DataPlaneEngine
from repro.epc.packets import FlowTuple, extract_flow, parse_frame
from repro.epc.tunnels import GtpTunnelEndpoint
from repro.obs.metrics import LATENCY_BUCKETS_US, MetricsRegistry

class ChargingLedger:
    """Per-bearer byte accounting (the gateway's ``stats`` attribute).

    ``bytes_charged`` maps TEID to total bytes — real state the audits
    compare, not a metrics view; the registry tracks only the
    cluster-wide total as ``gateway.bytes_charged``.  Packet and drop
    counts live exclusively in the gateway's metrics registry
    (``gateway.downstream.packets_in``, ``gateway.drops.acl``, ...).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.bytes_charged: Dict[int, int] = {}
        self._c_bytes = self._registry.counter(
            "gateway.bytes_charged", "bytes charged across all bearers"
        )

    def charge(self, teid: int, size: int) -> None:
        """DPE charging function: account bytes to a bearer."""
        self.bytes_charged[teid] = self.bytes_charged.get(teid, 0) + size
        self._c_bytes.inc(size)

    def charge_many(self, teids: np.ndarray, sizes: np.ndarray) -> None:
        """Batched :meth:`charge`: one dict update per distinct bearer."""
        teids = np.asarray(teids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if teids.size == 0:
            return
        unique, inverse = np.unique(teids, return_inverse=True)
        sums = np.bincount(inverse, weights=sizes).astype(np.int64)
        for teid, total in zip(unique, sums):
            self.bytes_charged[int(teid)] = (
                self.bytes_charged.get(int(teid), 0) + int(total)
            )
        self._c_bytes.inc(int(sums.sum()))

    def __repr__(self) -> str:
        return (
            f"ChargingLedger(bearers={len(self.bytes_charged)}, "
            f"total={self._c_bytes.value})"
        )


class AggregateDpeView:
    """Read-only union over the per-node Data Plane Engines.

    Bearer state is sharded across nodes; operators (and tests) often want
    cluster-wide views — all CDRs, any bearer's context, total policed
    drops — without caring where a flow is homed.
    """

    def __init__(self, dpes) -> None:
        self._dpes = dpes

    @property
    def records(self):
        """All emitted CDRs, across every node."""
        out = []
        for dpe in self._dpes:
            out.extend(dpe.records)
        return out

    @property
    def policed_drops(self) -> int:
        """Total policer drops, across every node."""
        return sum(dpe.policed_drops for dpe in self._dpes)

    def context(self, teid: int):
        """The bearer's context, wherever it is homed."""
        for dpe in self._dpes:
            found = dpe.context(teid)
            if found is not None:
                return found
        return None

    def __len__(self) -> int:
        return sum(len(dpe) for dpe in self._dpes)

    def total_bytes(self) -> int:
        """All accounted bytes, across every node."""
        return sum(dpe.total_bytes() for dpe in self._dpes)


class EpcGateway:
    """A clustered LTE-to-Internet gateway.

    Args:
        architecture: the PFE's FIB architecture (the paper's variable).
        num_nodes: cluster size.
        gateway_ip: the gateway's tunnel-endpoint IPv4 address.
        policy: controller flow-assignment policy.
        gpt_params: SetSep configuration (ScaleBricks only).
        fib_factory: FIB table constructor (defaults to extended cuckoo).
        rate_limit_bytes_per_s: optional per-bearer token-bucket policing
            applied by the DPE (None disables policing).
        registry: metrics registry for packet/byte/drop counters and
            per-stage latency spans.  Unlike the pure lookup hot paths,
            the gateway defaults to a *live* private registry — the
            :class:`ChargingLedger` totals must keep counting — and
            shares it with the cluster and update engine it builds; pass
            :data:`repro.obs.NULL_REGISTRY` to disable instrumentation.

    The gateway keeps a simple logical clock (``now``, seconds) advanced
    by ``tick`` per processed packet so the DPE's state machine and
    policers behave deterministically; tests may set ``now`` directly.
    """

    def __init__(
        self,
        architecture: Architecture,
        num_nodes: int,
        gateway_ip: int,
        policy: AssignmentPolicy = AssignmentPolicy.ROUND_ROBIN,
        gpt_params: Optional[SetSepParams] = None,
        fib_factory: Optional[FibFactory] = None,
        rate_limit_bytes_per_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        fabric_backend: Optional[str] = None,
        ingress_policy: str = "random",
    ) -> None:
        self.architecture = architecture
        self.num_nodes = num_nodes
        self.gateway_ip = gateway_ip
        self.controller = EpcController(num_nodes, policy)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = ChargingLedger(self.registry)
        r = self.registry
        self._c_down_in = r.counter("gateway.downstream.packets_in")
        self._c_down_tunnelled = r.counter("gateway.downstream.tunnelled")
        self._c_down_bytes = r.counter(
            "gateway.downstream.bytes", "L3 bytes accepted downstream"
        )
        self._c_up_in = r.counter("gateway.upstream.packets_in")
        self._c_up_forwarded = r.counter("gateway.upstream.forwarded")
        self._c_up_bytes = r.counter(
            "gateway.upstream.bytes", "inner L3 bytes forwarded upstream"
        )
        self._c_drop_unknown = r.counter("gateway.drops.unknown_flow")
        self._c_drop_tunnel = r.counter("gateway.drops.bad_tunnel")
        self._c_drop_acl = r.counter("gateway.drops.acl")
        self._c_drop_malformed = r.counter("gateway.drops.malformed")
        self._c_drop_policed = r.counter(
            "gateway.drops.policed", "packets rejected by a bearer policer"
        )
        self._h_fabric_hop = r.histogram(
            "gateway.fabric_hop_us", buckets=LATENCY_BUCKETS_US,
            description="modelled switch-fabric latency per routed packet",
        )
        self._c_fp_batches = r.counter(
            "gateway.fastpath.batches",
            "downstream batches routed through the vectorised fast path",
        )
        self._c_fp_frames = r.counter(
            "gateway.fastpath.frames",
            "frames processed by the vectorised fast path",
        )
        self._c_fp_spilled = r.counter(
            "gateway.fastpath.spilled_frames",
            "frames that fell back to the scalar codec "
            "(IPv4 options, degenerate batches)",
        )
        # One Data Plane Engine per node: bearer state lives where the
        # flow is handled (the pinning the whole paper exists to serve).
        self.dpes = [DataPlaneEngine() for _ in range(num_nodes)]
        self.dpe = AggregateDpeView(self.dpes)
        self.acl_blocked_sources: Set[int] = set()
        #: Nodes currently considered dead (liveness, not state loss):
        #: packets whose path touches one are dropped with reason
        #: ``node_down`` *before* any charging.  Maintained by failover /
        #: chaos tooling; empty in normal operation.
        self.down_nodes: Set[int] = set()
        self._c_drop_node_down = r.counter(
            "gateway.drops.node_down",
            "packets lost because their path crossed a dead node",
        )
        self.rate_limit_bytes_per_s = rate_limit_bytes_per_s
        self.now = 0.0
        self.tick = 1e-5
        self._gpt_params = gpt_params
        self._fib_factory = fib_factory
        self._fabric_backend = fabric_backend
        self._ingress_policy = ingress_policy
        self.cluster: Optional[Cluster] = None
        self.updates: Optional[UpdateEngine] = None

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def connect(
        self, flow: FlowTuple, base_station_ip: int, region: int = 0
    ) -> FlowRecord:
        """Establish a bearer; if the data plane is live, push the update."""
        record = self.controller.establish_bearer(flow, base_station_ip, region)
        self.dpes[record.handling_node].open_bearer(
            record.teid,
            now=self.now,
            rate_limit_bytes_per_s=self.rate_limit_bytes_per_s,
        )
        if self.updates is not None:
            self.updates.insert_flow(
                record.key, record.handling_node, record.teid
            )
        return record

    def disconnect(self, flow: FlowTuple) -> bool:
        """Tear a bearer down (control + data plane); emits its CDR."""
        record = self.controller.teardown_bearer(flow)
        if record is None:
            return False
        self.dpes[record.handling_node].close_bearer(record.teid, now=self.now)
        if self.updates is not None:
            self.updates.remove_flow(record.key)
        return True

    def rehome_flow(self, flow: FlowTuple, new_node: int) -> FlowRecord:
        """Move a live bearer to another handling node (§7 mobility).

        The three pieces that pin a flow move together: the controller
        record, the FIB entry (+ GPT delta, via the §4.5 update path) and
        the DPE context with its charging counters — billing continues
        seamlessly on the new node.
        """
        if not 0 <= new_node < self.num_nodes:
            raise ValueError("new_node out of range")
        record = self.controller.record_for_key(flow.key())
        if record is None:
            raise KeyError(f"no bearer for flow {flow}")
        if record.handling_node == new_node:
            return record
        context = self.dpes[record.handling_node].export_context(record.teid)
        self.dpes[new_node].import_context(context)
        moved = self.controller.rehome(flow, new_node)
        if self.updates is not None:
            self.updates.insert_flow(moved.key, new_node, moved.teid)
        return moved

    def start(self) -> None:
        """Build the forwarding plane from the controller's flow table."""
        records = list(self.controller.flows.values())
        keys = [r.key for r in records]
        nodes = [r.handling_node for r in records]
        teids = [r.teid for r in records]
        self.cluster = Cluster.build(
            self.architecture,
            self.num_nodes,
            np.asarray(keys, dtype=np.uint64),
            nodes,
            teids,
            fib_factory=self._fib_factory,
            gpt_params=self._gpt_params,
            registry=self.registry,
            fabric_backend=self._fabric_backend,
            ingress_policy=self._ingress_policy,
        )
        self.updates = UpdateEngine(self.cluster)

    def _require_cluster(self) -> Cluster:
        if self.cluster is None:
            raise RuntimeError("gateway not started; call start() first")
        return self.cluster

    # ------------------------------------------------------------------
    # Data plane: downstream (Internet -> mobile)
    # ------------------------------------------------------------------

    def process_downstream(
        self, frame: bytes, ingress: Optional[int] = None
    ) -> Tuple[RouteResult, Optional[bytes]]:
        """Forward one downstream frame.

        Returns the PFE routing outcome and, when the packet was accepted,
        the GTP-U-encapsulated packet headed for the base station.
        """
        cluster = self._require_cluster()
        self._c_down_in.inc()
        with self.registry.span("downstream"):
            with self.registry.span("ingress"):
                try:
                    _eth, l3 = parse_frame(frame)
                    flow, ip_header, _l4 = extract_flow(l3)
                except ValueError:
                    # A production PFE drops garbage at line rate; it
                    # never dies.
                    self._c_drop_malformed.inc()
                    return RouteResult(
                        key=0,
                        ingress=ingress if ingress is not None else -1,
                        path=(),
                        internal_hops=0,
                        latency_us=0.0,
                        handled_by=None,
                        value=None,
                        dropped=True,
                        reason="malformed",
                    ), None

                if flow.src_ip in self.acl_blocked_sources:
                    self._c_drop_acl.inc()
                    result = RouteResult(
                        key=flow.key(),
                        ingress=ingress if ingress is not None else -1,
                        path=(),
                        internal_hops=0,
                        latency_us=0.0,
                        handled_by=None,
                        value=None,
                        dropped=True,
                        reason="acl",
                    )
                    return result, None

            with self.registry.span("pfe_lookup"):
                result = cluster.route(flow.key(), ingress)
            if self.down_nodes and any(
                node in self.down_nodes for node in result.path
            ):
                self._c_drop_node_down.inc()
                return RouteResult(
                    key=result.key,
                    ingress=result.ingress,
                    path=result.path,
                    internal_hops=result.internal_hops,
                    latency_us=result.latency_us,
                    handled_by=None,
                    value=None,
                    dropped=True,
                    reason="node_down",
                ), None
            if result.dropped:
                self._c_drop_unknown.inc()
                return result, None
            self._h_fabric_hop.observe(result.latency_us)

            # DPE at the handling node: state/policing, charge, decrement
            # TTL, re-encapsulate.
            with self.registry.span("dpe"):
                record = self.controller.record_for_key(flow.key())
                assert record is not None and result.value == record.teid
                self.now += self.tick
                if not self.dpes[record.handling_node].process(
                    record.teid, len(l3), downlink=True, now=self.now
                ):
                    self._c_drop_acl.inc()
                    self._c_drop_policed.inc()
                    return RouteResult(
                        key=flow.key(),
                        ingress=result.ingress,
                        path=result.path,
                        internal_hops=result.internal_hops,
                        latency_us=result.latency_us,
                        handled_by=None,
                        value=None,
                        dropped=True,
                        reason="policed",
                    ), None
                self.stats.charge(record.teid, len(l3))
                self._c_down_bytes.inc(len(l3))

            with self.registry.span("egress"):
                forwarded_inner = (
                    ip_header.decrement_ttl().pack() + l3[ip_header.SIZE:]
                )
                endpoint = GtpTunnelEndpoint(
                    local_ip=self.gateway_ip, peer_ip=record.base_station_ip
                )
                tunnelled = endpoint.encapsulate(record.teid, forwarded_inner)
            self._c_down_tunnelled.inc()
            return result, tunnelled

    def process_downstream_batch(
        self,
        frames: Sequence[bytes],
        ingress: Optional[Sequence[Optional[int]]] = None,
    ) -> List[Tuple[RouteResult, Optional[bytes]]]:
        """Forward many downstream frames (batch query surface).

        Each element of the result is exactly what
        :meth:`process_downstream` returns for the matching frame — same
        output bytes, charging, counters and RNG trajectory — but the
        whole batch flows through the vectorised codec
        (:mod:`repro.epc.fastpath`), one batched cluster lookup, and
        per-node grouped DPE charging.  The optional ``ingress`` sequence
        pins per-frame ingress nodes.  Batches containing a frame the
        scalar path would *raise* on (TTL 0, oversized inner packet) are
        replayed through :meth:`process_downstream` so the exception
        surfaces identically.
        """
        cluster = self._require_cluster()
        if ingress is not None and len(ingress) != len(frames):
            raise ValueError("frames and ingress lengths differ")
        n = len(frames)
        if n == 0:
            return []
        parsed = fastpath.parse_frames(frames)
        if parsed.degenerate:
            self._c_fp_spilled.inc(n)
            return self._process_downstream_scalar(frames, ingress)
        self._c_fp_batches.inc()
        self._c_fp_frames.inc(n)
        if parsed.scalar_spills:
            self._c_fp_spilled.inc(parsed.scalar_spills)

        self._c_down_in.inc(n)
        results: List[Optional[Tuple[RouteResult, Optional[bytes]]]] = (
            [None] * n
        )

        def early_ingress(i: int) -> int:
            if ingress is None or ingress[i] is None:
                return -1
            return int(ingress[i])  # type: ignore[arg-type]

        with self.registry.span("downstream"):
            with self.registry.span("ingress"):
                malformed_idx = np.nonzero(parsed.malformed)[0]
                if malformed_idx.size:
                    self._c_drop_malformed.inc(int(malformed_idx.size))
                    for i in malformed_idx:
                        results[int(i)] = (
                            RouteResult(
                                key=0,
                                ingress=early_ingress(int(i)),
                                path=(),
                                internal_hops=0,
                                latency_us=0.0,
                                handled_by=None,
                                value=None,
                                dropped=True,
                                reason="malformed",
                            ),
                            None,
                        )

                acl = np.zeros(n, dtype=bool)
                if self.acl_blocked_sources:
                    blocked = np.fromiter(
                        self.acl_blocked_sources,
                        dtype=np.int64,
                        count=len(self.acl_blocked_sources),
                    )
                    acl = parsed.valid & np.isin(parsed.src_ip, blocked)
                    acl_idx = np.nonzero(acl)[0]
                    if acl_idx.size:
                        self._c_drop_acl.inc(int(acl_idx.size))
                        for i in acl_idx:
                            results[int(i)] = (
                                RouteResult(
                                    key=int(parsed.keys[i]),
                                    ingress=early_ingress(int(i)),
                                    path=(),
                                    internal_hops=0,
                                    latency_us=0.0,
                                    handled_by=None,
                                    value=None,
                                    dropped=True,
                                    reason="acl",
                                ),
                                None,
                            )

            routed_idx = np.nonzero(parsed.valid & ~acl)[0]
            with self.registry.span("pfe_lookup"):
                if ingress is None:
                    ing_routed = cluster.pick_ingress_batch(routed_idx.size)
                else:
                    pinned = [ingress[int(i)] for i in routed_idx]
                    ing_routed = np.fromiter(
                        (
                            cluster.pick_ingress() if node is None
                            else int(node)
                            for node in pinned
                        ),
                        dtype=np.int64,
                        count=len(pinned),
                    )
                batch = cluster.route_batch(
                    parsed.keys[routed_idx], ing_routed
                )

            node_down = np.zeros(routed_idx.size, dtype=bool)
            if self.down_nodes:
                for j, result in enumerate(batch.results):
                    if any(node in self.down_nodes for node in result.path):
                        node_down[j] = True
                down_j = np.nonzero(node_down)[0]
                if down_j.size:
                    self._c_drop_node_down.inc(int(down_j.size))
                    for j in down_j:
                        result = batch.results[int(j)]
                        results[int(routed_idx[j])] = (
                            RouteResult(
                                key=result.key,
                                ingress=result.ingress,
                                path=result.path,
                                internal_hops=result.internal_hops,
                                latency_us=result.latency_us,
                                handled_by=None,
                                value=None,
                                dropped=True,
                                reason="node_down",
                            ),
                            None,
                        )

            unknown = batch.dropped & ~node_down
            unknown_j = np.nonzero(unknown)[0]
            if unknown_j.size:
                self._c_drop_unknown.inc(int(unknown_j.size))
                for j in unknown_j:
                    results[int(routed_idx[j])] = (
                        batch.results[int(j)], None
                    )

            accepted_j = np.nonzero(~batch.dropped & ~node_down)[0]
            self._h_fabric_hop.observe_many(batch.latencies_us[accepted_j])

            with self.registry.span("dpe"):
                record_cache: Dict[int, FlowRecord] = {}
                records: List[FlowRecord] = []
                for j in accepted_j:
                    key = int(parsed.keys[routed_idx[j]])
                    record = record_cache.get(key)
                    if record is None:
                        record = self.controller.record_for_key(key)
                        record_cache[key] = record
                    assert (
                        record is not None
                        and batch.results[int(j)].value == record.teid
                    )
                    records.append(record)
                count = len(records)
                nows = np.empty(count, dtype=np.float64)
                now = self.now
                for t in range(count):
                    # Sequential addition on purpose: float accumulation
                    # must match the scalar path tick for tick.
                    now += self.tick
                    nows[t] = now
                self.now = now
                teids = np.fromiter(
                    (r.teid for r in records), dtype=np.int64, count=count
                )
                handling = np.fromiter(
                    (r.handling_node for r in records),
                    dtype=np.int64, count=count,
                )
                sizes = parsed.l3_len[routed_idx[accepted_j]]
                ok = np.zeros(count, dtype=bool)
                for node_id in np.unique(handling):
                    mask = handling == node_id
                    ok[mask] = self.dpes[int(node_id)].process_batch(
                        teids[mask], sizes[mask], downlink=True,
                        nows=nows[mask],
                    )

                policed_t = np.nonzero(~ok)[0]
                if policed_t.size:
                    self._c_drop_acl.inc(int(policed_t.size))
                    self._c_drop_policed.inc(int(policed_t.size))
                    for t in policed_t:
                        j = int(accepted_j[t])
                        result = batch.results[j]
                        results[int(routed_idx[j])] = (
                            RouteResult(
                                key=result.key,
                                ingress=result.ingress,
                                path=result.path,
                                internal_hops=result.internal_hops,
                                latency_us=result.latency_us,
                                handled_by=None,
                                value=None,
                                dropped=True,
                                reason="policed",
                            ),
                            None,
                        )
                charged_t = np.nonzero(ok)[0]
                self.stats.charge_many(teids[charged_t], sizes[charged_t])
                self._c_down_bytes.inc(int(sizes[charged_t].sum()))

            with self.registry.span("egress"):
                frame_idx = routed_idx[accepted_j[charged_t]]
                bs_ips = np.fromiter(
                    (records[int(t)].base_station_ip for t in charged_t),
                    dtype=np.int64, count=charged_t.size,
                )
                tunnelled = fastpath.encapsulate_batch(
                    parsed, frame_idx, teids[charged_t], bs_ips,
                    self.gateway_ip,
                )
            self._c_down_tunnelled.inc(int(charged_t.size))
            for pos, t in enumerate(charged_t):
                j = int(accepted_j[t])
                results[int(routed_idx[j])] = (
                    batch.results[j], tunnelled[pos]
                )

        return results  # type: ignore[return-value]

    def _process_downstream_scalar(
        self,
        frames: Sequence[bytes],
        ingress: Optional[Sequence[Optional[int]]],
    ) -> List[Tuple[RouteResult, Optional[bytes]]]:
        """Per-frame reference path (and exception-faithful fallback)."""
        if ingress is None:
            return [self.process_downstream(frame) for frame in frames]
        return [
            self.process_downstream(frame, node)
            for frame, node in zip(frames, ingress)
        ]

    # ------------------------------------------------------------------
    # Data plane: upstream (mobile -> Internet)
    # ------------------------------------------------------------------

    def process_upstream(self, outer_packet: bytes) -> Optional[bytes]:
        """Decapsulate one upstream GTP-U packet toward the Internet.

        Upstream packets arrive at the flow's handling node directly (the
        aggregation routers honour the assignment; §2), so no cluster
        routing is involved — only tunnel validation and DPE work.
        """
        self._c_up_in.inc()
        with self.registry.span("upstream"):
            try:
                teid, inner, _outer = GtpTunnelEndpoint.decapsulate(
                    outer_packet
                )
            except ValueError:
                self._c_drop_tunnel.inc()
                return None
            if teid not in self.controller.teids:
                self._c_drop_tunnel.inc()
                return None
            try:
                flow, ip_header, _rest = extract_flow(inner)
            except ValueError:
                self._c_drop_malformed.inc()
                return None
            if flow.src_ip in self.acl_blocked_sources:
                self._c_drop_acl.inc()
                return None
            record = self.controller.record_for_teid(teid)
            if record is None:
                self._c_drop_tunnel.inc()
                return None
            if record.handling_node in self.down_nodes:
                self._c_drop_node_down.inc()
                return None
            self.now += self.tick
            if not self.dpes[record.handling_node].process(
                teid, len(inner), downlink=False, now=self.now
            ):
                self._c_drop_acl.inc()
                self._c_drop_policed.inc()
                return None
            self.stats.charge(teid, len(inner))
            self._c_up_bytes.inc(len(inner))
            self._c_up_forwarded.inc()
            return ip_header.decrement_ttl().pack() + inner[ip_header.SIZE:]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_report(self) -> List[Dict[str, int]]:
        """Per-node forwarding-state footprint."""
        return self._require_cluster().memory_report()

    def __repr__(self) -> str:
        return (
            f"EpcGateway(arch={self.architecture.value}, "
            f"nodes={self.num_nodes}, bearers={len(self.controller)})"
        )
